"""The Figure 1 / Figure 10 walkthrough: which animals are cute?

Renders a synthetic Web corpus for the paper's 20 evaluation animals
from the generative user-behaviour model (including distractors,
non-intrinsic statements, and double negations), runs the full sharded
pipeline, and compares the mined opinions against a simulated
20-worker AMT survey.

Run:  python examples/cute_animals.py
"""

from __future__ import annotations

from repro import (
    CorpusGenerator,
    Polarity,
    PropertyTypeKey,
    SubjectiveProperty,
    SurveyorPipeline,
    TrueParameters,
    curated_scenario,
    evaluation_kb,
)
from repro.crowd import SurveyRunner, combination_for
from repro.kb.seeds import FIGURE_10_ANIMALS

CUTE = PropertyTypeKey(SubjectiveProperty("cute"), "animal")

# ---------------------------------------------------------------------------
# 1. The synthetic world: curated ground truth + authoring biases.
#    People state cuteness far more often than non-cuteness (p+S >> p-S)
#    and mostly agree (pA = 0.9) — Example 2 of the paper.
# ---------------------------------------------------------------------------
kb = evaluation_kb()
combination = combination_for("animal", "cute")
truth = {
    name: name.lower() in combination.positives
    for name in FIGURE_10_ANIMALS
}
scenario = curated_scenario(
    "cute-animals",
    kb.entities_of_type("animal"),
    truths={"cute": truth},
    params_by_property={
        "cute": TrueParameters(
            agreement=0.9, rate_positive=40.0, rate_negative=6.0
        )
    },
)

# ---------------------------------------------------------------------------
# 2. Render the Web corpus and run the full pipeline.
# ---------------------------------------------------------------------------
corpus = CorpusGenerator(seed=10).generate(scenario)
print(f"Rendered corpus: {len(corpus)} documents "
      f"({corpus.size_bytes() / 1024:.0f} KiB)\n")

pipeline = SurveyorPipeline(kb=kb, occurrence_threshold=100, n_workers=4)
report = pipeline.run(corpus)
print(report.summary())

fit = report.result.fits[CUTE]
print(
    f"\nLearned parameters for 'cute animal': "
    f"pA={fit.parameters.agreement:.2f}, "
    f"n*p+S={fit.parameters.rate_positive:.1f}, "
    f"n*p-S={fit.parameters.rate_negative:.1f}"
)

# ---------------------------------------------------------------------------
# 3. Compare against a simulated AMT survey (Figure 10).
# ---------------------------------------------------------------------------
survey = SurveyRunner(n_workers=20, seed=7).run(
    combination.case_for(name) for name in FIGURE_10_ANIMALS
)
votes = survey.votes_for("animal", "cute")

print("\nanimal          workers  mined  p(cute)   counts")
agreements = 0
for name in sorted(
    FIGURE_10_ANIMALS, key=lambda n: -votes[n]
):
    entity_id = f"/animal/{name.replace(' ', '_')}"
    opinion = report.opinions.get(entity_id, CUTE)
    mined = opinion.polarity.value if opinion else "?"
    probability = opinion.probability if opinion else float("nan")
    counts = opinion.evidence if opinion else None
    workers_positive = votes[name] > 10
    agreements += (mined == "+") == workers_positive
    print(
        f"{name:14s} {votes[name]:3d}/20    {mined}    "
        f"{probability:7.3f}   "
        f"(+{counts.positive}/-{counts.negative})" if counts else ""
    )
print(f"\nSurveyor matches the worker majority on {agreements}/20 animals")

ranked = report.opinions.entities_with(CUTE, Polarity.POSITIVE)
print("Cutest first:", ", ".join(o.entity_id.split("/")[-1] for o in ranked))
