"""The Section 2 empirical study: which Californian cities are big?

Reproduces the paper's motivating exploration over 461 Californian
cities: statement counts correlate with population, majority vote
produces poor and partial decisions, and the probabilistic model
decides every city with polarity tracking population (Figure 3).

Run:  python examples/big_cities.py
"""

from __future__ import annotations

import numpy as np

from repro import CorpusGenerator, KnowledgeBase, Polarity
from repro.baselines import MajorityVote, SurveyorInterpreter
from repro.evaluation import BIG_CITIES, run_study

spec = BIG_CITIES
scenario = spec.scenario()
kb = KnowledgeBase(scenario.entities)
key = spec.key()

# ---------------------------------------------------------------------------
# 1. Gather statement counts (probe mode: the study only needs counts).
# ---------------------------------------------------------------------------
evidence = CorpusGenerator(seed=2015).probe(scenario).as_evidence()
per_entity = evidence[key]

print("City statement counts vs population (sample):")
sample = sorted(
    scenario.entities, key=lambda e: e.attribute("population")
)
for entity in sample[::60] + [sample[-1]]:
    counts = per_entity.get(entity.id)
    pos, neg = (counts.positive, counts.negative) if counts else (0, 0)
    print(
        f"  {entity.name:22s} pop={entity.attribute('population'):>10,.0f}"
        f"  +{pos:<3d} -{neg}"
    )

# ---------------------------------------------------------------------------
# 2. Majority vote vs the probabilistic model, per population bucket.
# ---------------------------------------------------------------------------
majority = MajorityVote().interpret(evidence, kb)
surveyor = SurveyorInterpreter(occurrence_threshold=1).interpret(
    evidence, kb
)

print("\npopulation bucket     majority vote        probabilistic model")
print("                      +    -    undecided   +    -    undecided")
for low in (2, 3, 4, 5, 6):
    bucket = [
        e
        for e in scenario.entities
        if 10**low <= e.attribute("population") < 10 ** (low + 1)
    ]
    if not bucket:
        continue

    def tally(table):
        marks = [table.polarity(e.id, key) for e in bucket]
        return (
            sum(1 for m in marks if m is Polarity.POSITIVE),
            sum(1 for m in marks if m is Polarity.NEGATIVE),
            sum(1 for m in marks if m is Polarity.NEUTRAL),
        )

    mv = tally(majority)
    sv = tally(surveyor)
    print(
        f"10^{low}..10^{low + 1:<12d} "
        f"{mv[0]:3d}  {mv[1]:3d}  {mv[2]:5d}     "
        f"{sv[0]:3d}  {sv[1]:3d}  {sv[2]:5d}"
    )

# ---------------------------------------------------------------------------
# 3. Figure 3(c)/(d) as ASCII scatter plots.
# ---------------------------------------------------------------------------
from repro.evaluation import polarity_points, polarity_scatter

print("\nFigure 3(c) — majority vote polarity vs population:")
print(
    polarity_scatter(
        polarity_points(majority, key, list(scenario.entities), "population"),
        label="population",
    )
)
print("\nFigure 3(d) — probabilistic model polarity vs population:")
print(
    polarity_scatter(
        polarity_points(surveyor, key, list(scenario.entities), "population"),
        label="population",
    )
)

# ---------------------------------------------------------------------------
# 4. The quantitative summary (decided fraction + AUC, Figure 3c/3d).
# ---------------------------------------------------------------------------
outcome = run_study(spec, seed=2015)
print()
print(outcome.majority.row())
print(outcome.surveyor.row())

big_cities = [
    op.entity_id.split("/")[-1]
    for op in surveyor.entities_with(key, Polarity.POSITIVE)
]
print(f"\nCities the model calls big ({len(big_cities)}):")
print("  " + ", ".join(big_cities))
