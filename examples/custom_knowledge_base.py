"""Bring-your-own data: TSV knowledge base, raw text, persistence.

The workflow a downstream user follows with their own entities and
documents:

1. load a knowledge base from a TSV dump (type, name, aliases,
   attributes);
2. mine opinions from raw text documents;
3. persist the opinion table and fitted parameters as JSON;
4. reload and query later, and inspect contested pairs.

Run:  python examples/custom_knowledge_base.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Annotator, EvidenceExtractor, Surveyor
from repro.analysis import find_controversial
from repro.core import Polarity, PropertyTypeKey, SubjectiveProperty
from repro.kb import dump_tsv, load_tsv
from repro.storage import load, save

workdir = Path(tempfile.mkdtemp(prefix="repro-example-"))

# ---------------------------------------------------------------------------
# 1. A TSV knowledge base, as a user would export from their systems.
# ---------------------------------------------------------------------------
kb_tsv = workdir / "restaurants.tsv"
kb_tsv.write_text(
    "#type\tname\taliases\tattributes\n"
    "restaurant\tLuna Bistro\tthe Luna\tseats=40\n"
    "restaurant\tHarbor Grill\t\tseats=120\n"
    "restaurant\tNoodle Barn\t\tseats=25\n"
    "restaurant\tThe Gilded Fork\tGilded Fork\tseats=60\n"
)
kb = load_tsv(kb_tsv)
print(f"loaded {len(kb)} entities from {kb_tsv.name}")

# ---------------------------------------------------------------------------
# 2. Raw review-style documents (one author each).
# ---------------------------------------------------------------------------
REVIEWS = [
    "Luna Bistro is charming. We visited it last summer.",
    "I think that Luna Bistro is really charming.",
    "The Luna is a charming restaurant.",
    "Luna Bistro is not cheap.",
    "Harbor Grill is not charming.",
    "I don't think that Harbor Grill is charming.",
    "Harbor Grill is a noisy restaurant.",
    "Harbor Grill is cheap.",
    "Honestly, Harbor Grill is cheap.",
    "Noodle Barn is cheap. It is charming.",
    "I don't think that Noodle Barn is never charming.",
    "The Gilded Fork is not cheap.",
    "The Gilded Fork is an elegant restaurant.",
    "The Gilded Fork is charming. Some people disagree though.",
    "The Gilded Fork is not charming.",
]

annotator = Annotator(kb)
extractor = EvidenceExtractor()
evidence = extractor.extract_corpus(
    annotator.annotate(f"review-{i}", text)
    for i, text in enumerate(REVIEWS)
)
print(
    f"extracted {evidence.n_statements} statements over "
    f"{evidence.n_pairs} pairs"
)

result = Surveyor(catalog=kb, occurrence_threshold=1).run(
    evidence.as_evidence()
)

# ---------------------------------------------------------------------------
# 3. Persist everything.
# ---------------------------------------------------------------------------
opinions_path = save(result.opinions, workdir / "opinions.json")
params_path = save(
    {key: fit.parameters for key, fit in result.fits.items()},
    workdir / "parameters.json",
)
dump_tsv(kb, workdir / "kb-export.tsv")
print(f"saved opinions -> {opinions_path.name}, "
      f"parameters -> {params_path.name}")

# ---------------------------------------------------------------------------
# 4. Reload in a "later session" and query.
# ---------------------------------------------------------------------------
table = load(opinions_path)
charming = PropertyTypeKey(
    SubjectiveProperty("charming"), "restaurant"
)
print("\ncharming restaurants (reloaded table):")
for opinion in table.entities_with(charming, Polarity.POSITIVE):
    print(f"  {opinion.entity_id:28s} p={opinion.probability:.3f}")
print("not charming:")
for opinion in table.entities_with(charming, Polarity.NEGATIVE):
    print(f"  {opinion.entity_id:28s} p={opinion.probability:.3f}")

print("\nmost contested pairs:")
for report in find_controversial(
    result.opinions, result.fits, min_statements=2, top=3
):
    print("  " + report.row())
