"""Subjective query answering — the paper's motivating application.

Search engines answer ``woody allen movies`` from structured data but
not ``calm cheap cities``. This example mines five subjective
properties for twenty world cities and then answers conjunctive
subjective queries from the resulting opinion table, ranking by the
product of posteriors.

Run:  python examples/subjective_search.py
"""

from __future__ import annotations

from repro import (
    CorpusGenerator,
    SurveyorPipeline,
    curated_scenario,
    evaluation_kb,
)
from repro.crowd import truths_by_property
from repro.evaluation import combination_parameters

# ---------------------------------------------------------------------------
# 1. Mine all five city properties of Table 2 from a rendered corpus.
# ---------------------------------------------------------------------------
kb = evaluation_kb()
cities = kb.entities_of_type("city")
truths = truths_by_property("city")
scenario = curated_scenario(
    "cities",
    cities,
    truths=truths,
    params_by_property={
        prop: combination_parameters("city", prop) for prop in truths
    },
)
corpus = CorpusGenerator(seed=4).generate(scenario)
report = SurveyorPipeline(kb=kb, occurrence_threshold=100).run(corpus)
opinions = report.opinions

print(f"Mined {len(opinions)} opinions over {len(truths)} properties "
      f"from {len(corpus)} documents.\n")


# ---------------------------------------------------------------------------
# 2. Answer free-text subjective queries with the query engine.
# ---------------------------------------------------------------------------
from repro.core import QueryEngine

engine = QueryEngine(opinions)


def answer(query_text: str, top: int = 5) -> None:
    print(f"?- {query_text}")
    for hit in engine.answer(query_text, top=top):
        marker = "*" if hit.confident else " "
        name = hit.entity_id.split("/")[-1]
        print(f"   {marker} {name:15s} p={hit.score:.3f}")
    print()


answer("calm cheap cities")
answer("big multicultural cities")
answer("hectic cities")
answer("not hectic multicultural cities")

# ---------------------------------------------------------------------------
# 3. Per-entity profile: everything mined about one city.
# ---------------------------------------------------------------------------
print("Profile of Istanbul:")
for opinion in sorted(
    opinions.for_entity("/city/istanbul"), key=lambda o: -o.probability
):
    print(
        f"   {opinion.key.property.text:15s} {opinion.polarity.value} "
        f"(p={opinion.probability:.3f}, "
        f"evidence +{opinion.evidence.positive}/-{opinion.evidence.negative})"
    )
