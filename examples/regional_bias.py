"""Region-specific opinions and the subjective-objective bridge.

Section 2 of the paper notes that what counts as a "big city" differs
between user groups, and that Surveyor can specialize its output by
restricting the input corpus to documents authored by one group.
Section 9 proposes connecting subjective properties to objective ones
("the population bound above which users call a city big").

This example combines the two: it simulates a region whose authors set
the "big" bar at 100k inhabitants and one that sets it at 500k, mines
each region's sub-corpus separately, and then *recovers each region's
population bound from the mined opinions alone* with the calibration
module.

Run:  python examples/regional_bias.py
"""

from __future__ import annotations

from repro import CorpusGenerator, KnowledgeBase, fit_link
from repro.baselines import SurveyorInterpreter
from repro.corpus import TrueParameters, covariate_scenario
from repro.kb import california_cities
from repro.pipeline import SurveyorPipeline

REGION_BOUNDS = {"lowrise": 100_000.0, "metro": 500_000.0}

cities = california_cities(count=461)
kb = KnowledgeBase(cities)

# ---------------------------------------------------------------------------
# 1. Author populations: same cities, different notions of "big".
# ---------------------------------------------------------------------------
corpora = {}
for region, bound in REGION_BOUNDS.items():
    scenario = covariate_scenario(
        name=f"big-cities-{region}",
        entities=cities,
        property_text="big",
        attribute="population",
        threshold=bound,
        params=TrueParameters(
            agreement=0.88, rate_positive=45.0, rate_negative=2.0
        ),
        occurrence_exponent=0.5,
        spurious_positive_rate=0.05,
    )
    corpora[region] = CorpusGenerator(
        seed=17, region=region
    ).generate(scenario)

merged = corpora["lowrise"].merged_with(corpora["metro"])
print(
    f"merged corpus: {len(merged)} documents from regions "
    f"{merged.regions()}\n"
)

# ---------------------------------------------------------------------------
# 2. Mine each region's slice of the merged corpus separately.
# ---------------------------------------------------------------------------
key = None
links = {}
for region in REGION_BOUNDS:
    sub_corpus = merged.restricted_to_region(region)
    pipeline = SurveyorPipeline(kb=kb, occurrence_threshold=100)
    report = pipeline.run(sub_corpus)
    key = next(iter(report.result.fits))
    table = report.opinions
    n_big = len(table.entities_with(key))
    print(
        f"[{region:8s}] {len(sub_corpus)} docs -> "
        f"{n_big} cities mined as big"
    )

    # 3. Recover the region's population bound (Section 9).
    links[region] = fit_link(table, key, cities, "population")
    print(f"           {links[region].describe()}")

# ---------------------------------------------------------------------------
# 4. The regional contrast, city by city.
# ---------------------------------------------------------------------------
print("\npopulation bound set by authors vs recovered from opinions:")
for region, bound in REGION_BOUNDS.items():
    recovered = links[region].threshold
    print(
        f"  {region:8s} authors' bar: {bound:>9,.0f}   "
        f"recovered: {recovered:>9,.0f}   "
        f"(x{recovered / bound:.2f})"
    )

print("\ncities big only to the lowrise region:")
lowrise_only = [
    entity.name
    for entity in cities
    if links["lowrise"].applies(entity.attribute("population"))
    and not links["metro"].applies(entity.attribute("population"))
]
print("  " + ", ".join(sorted(lowrise_only)[:12]) + ", ...")
