"""Quickstart: mine a dominant opinion from raw text in ~40 lines.

Builds a three-entity knowledge base, feeds a handful of raw Web-style
documents through annotation and extraction, fits the user-behaviour
model, and prints the mined opinions.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Annotator,
    Entity,
    EvidenceExtractor,
    KnowledgeBase,
    Surveyor,
)

# 1. A tiny knowledge base: entities with their most notable type.
kb = KnowledgeBase(
    [
        Entity.create("kitten", "animal"),
        Entity.create("snake", "animal"),
        Entity.create("axolotl", "animal"),  # never mentioned below!
    ]
)

# 2. Raw documents, one per (hypothetical) author.
DOCUMENTS = [
    "Kittens are cute.",
    "I think that kittens are really cute.",
    "The kitten is a cute animal.",
    "Honestly, kittens are adorable and cute.",
    "I don't think that snakes are cute.",
    "Snakes are not cute.",
    "Snakes are dangerous animals.",
    "I don't think that kittens are never cute.",  # double negation!
    "Kittens are bad for allergies.",  # non-intrinsic: filtered out
]

# 3. Annotate (tokenize, tag, link entities, parse) and extract
#    positive/negative statements with the paper's final patterns.
annotator = Annotator(kb)
extractor = EvidenceExtractor()
evidence = extractor.extract_corpus(
    annotator.annotate(f"doc-{i}", text)
    for i, text in enumerate(DOCUMENTS)
)
print("Extracted statements:")
for key in evidence.keys():
    for entity_id, counts in sorted(evidence.counts_for(key).items()):
        print(f"  ({entity_id}, {key}) -> +{counts.positive} / -{counts.negative}")

# 4. Fit the probabilistic model per property-type combination and
#    decide the dominant opinion for every animal — including the
#    axolotl, for which silence itself is evidence.
surveyor = Surveyor(catalog=kb, occurrence_threshold=1)
result = surveyor.run(evidence.as_evidence())

print("\nMined dominant opinions:")
for opinion in sorted(result.opinions, key=lambda o: str(o.key)):
    print(
        f"  {opinion.entity_id:18s} {str(opinion.key):18s} "
        f"{opinion.polarity.value}  (p={opinion.probability:.3f})"
    )
