"""Benchmarks for the extension features beyond the paper's tables.

* the Section 3 precision/recall tradeoff (confidence margins);
* the Section 9 subjective-to-objective calibration;
* the O(m) EM scaling claim (Section 6), measured directly;
* NLP annotation throughput (the substrate the extraction hour
  depended on).
"""

from __future__ import annotations

import random
import time

import pytest
from _report import emit, perf_counts

from repro.core import EMLearner, EvidenceCounts, Polarity, fit_link
from repro.corpus import TrueParameters, sample_statement_counts
from repro.evaluation import tradeoff_curve


def bench_tradeoff_curve(benchmark, interpreted, survey):
    """Section 3: trading coverage for precision via the margin."""
    table = interpreted["Surveyor"]
    cases = survey.without_ties()

    points = benchmark(lambda: tradeoff_curve(table, cases))
    lines = ["Confidence-margin tradeoff (Surveyor, Section 3)"]
    lines += [point.row() for point in points]
    lines.append(
        "finding: posteriors are strongly bimodal (Poisson likelihoods "
        "saturate), so the margin trades little — errors are "
        "confidently wrong (silent positive-truth entities), which a "
        "confidence threshold cannot filter."
    )
    emit("extension_tradeoff", lines)

    coverages = [point.coverage for point in points]
    assert coverages == sorted(coverages, reverse=True)
    # The most confident slice never does worse than deciding all.
    assert points[-1].precision >= points[0].precision - 1e-9


def bench_calibration_population_bound(benchmark):
    """Section 9: recover the population bound for 'big city'."""
    from repro.baselines import SurveyorInterpreter
    from repro.corpus import CorpusGenerator
    from repro.evaluation import BIG_CITIES
    from repro.kb import KnowledgeBase

    scenario = BIG_CITIES.scenario()
    kb = KnowledgeBase(scenario.entities)
    evidence = CorpusGenerator(seed=2015).probe(scenario).as_evidence()
    table = SurveyorInterpreter(occurrence_threshold=1).interpret(
        evidence, kb
    )

    link = benchmark(
        lambda: fit_link(
            table, BIG_CITIES.key(), list(scenario.entities), "population"
        )
    )
    lines = [
        "Subjective-to-objective bridge (Section 9 outlook)",
        link.describe(),
        f"generative bound: 250,000 — recovered within "
        f"x{link.threshold / 250_000:.2f}",
    ]
    emit("extension_calibration", lines)
    assert 120_000 <= link.threshold <= 500_000
    assert link.accuracy > 0.95


@pytest.mark.parametrize("n_entities", [200, 2_000, 20_000])
def bench_em_scaling(benchmark, n_entities):
    """Section 6's O(m) claim: per-entity fit cost stays flat."""
    params = TrueParameters(0.88, 30.0, 3.0)
    rng = random.Random(3)
    evidence = []
    for index in range(n_entities):
        truth = Polarity.POSITIVE if index % 3 == 0 else Polarity.NEGATIVE
        pos, neg = sample_statement_counts(truth, params, rng)
        evidence.append(EvidenceCounts(pos, neg))
    learner = EMLearner(max_iterations=10, tolerance=0.0)

    result = benchmark(lambda: learner.fit(evidence))
    perf_counts(entities=n_entities)
    assert len(result.responsibilities) == n_entities
    _SCALING.setdefault("times", {})[n_entities] = (
        benchmark.stats.stats.mean
    )
    if len(_SCALING["times"]) == 3:
        times = _SCALING["times"]
        lines = ["EM scaling (10 iterations, fixed grid)"]
        for n, seconds in sorted(times.items()):
            lines.append(
                f"entities={n:6d}  {seconds * 1e3:8.2f} ms  "
                f"({seconds / n * 1e6:6.2f} us/entity)"
            )
        emit("extension_em_scaling", lines)
        # Linear-ish: 100x entities must cost far less than 1000x time
        # (allows constant overhead and cache effects).
        assert times[20_000] < 300 * times[200]


_SCALING: dict = {}


def bench_nlp_throughput(benchmark, harness):
    """Annotation throughput over rendered Web documents."""
    from repro.corpus import CorpusGenerator
    from repro.nlp import Annotator

    corpus = CorpusGenerator(seed=5).generate(harness.scenarios()[0])
    docs = [(doc.doc_id, doc.text) for doc in corpus][:2000]
    annotator = Annotator(harness.kb)

    def annotate_all():
        return sum(
            annotator.annotate(doc_id, text).mention_count()
            for doc_id, text in docs
        )

    mentions = benchmark(annotate_all)
    perf_counts(documents=len(docs), mentions=mentions)
    seconds = benchmark.stats.stats.mean
    lines = [
        "NLP annotation throughput",
        f"documents: {len(docs)}  mentions linked: {mentions}",
        f"{len(docs) / seconds:,.0f} documents/second",
    ]
    emit("extension_nlp_throughput", lines)
    assert mentions > 0
    assert len(docs) / seconds > 500
