"""Figure 9 — extraction statistics over the full evaluation world.

Paper shapes:
* 9(a): statements per entity — near zero up to the 95th percentile,
  then exploding (few popular entities absorb most statements);
* 9(b): statements per property-type combination — skewed;
* 9(c): properties above the occurrence threshold per type — skewed.
"""

from __future__ import annotations

from _report import emit, perf_counts

from repro.evaluation import extraction_statistics


def bench_fig9_statistics(benchmark, harness, evidence):
    # Figure 9(a) is computed over the whole knowledge base: the KB is
    # far larger than the set of evidenced entities, which is why the
    # curve stays at zero until the high percentiles.
    from repro.kb import full_kb

    all_entity_ids = [entity.id for entity in full_kb()]

    def compute():
        return extraction_statistics(
            evidence, all_entity_ids, occurrence_threshold=100
        )

    stats = benchmark(compute)
    perf_counts(entities=len(all_entity_ids))
    lines = ["Figure 9 — extraction statistics", stats.report()]
    emit("fig9_extraction_stats", lines)

    per_entity = stats.per_entity.as_dict()
    # 9(a): the median entity gets (almost) nothing; the top decile a lot.
    assert per_entity[50] <= 10
    assert per_entity[100] > 10 * max(per_entity[50], 1)
    # 9(b): skew across combinations.
    per_combination = stats.per_combination.as_dict()
    assert per_combination[100] > 2 * per_combination[50]
