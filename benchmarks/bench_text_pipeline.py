"""Table 3 through the full text pipeline.

The shared fixtures use probe-mode evidence (counts drawn directly
from the generative model). This benchmark runs the identical Table 3
comparison on evidence produced the long way — rendering the corpus to
English, annotating, pattern-matching, filtering — and checks that the
headline shape survives the NLP round trip: rendering noise (broad
copulas, aspect statements, distractors) must not change who wins.
"""

from __future__ import annotations

from _report import emit, perf_counts

from repro.evaluation import evaluate_table
from repro.evaluation.harness import EvaluationHarness


def bench_table3_text_pipeline(benchmark):
    harness = EvaluationHarness(seed=2015, use_text_pipeline=True)

    def run():
        # Materializes evidence through the full text pipeline.
        return harness.table3()

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    perf_counts(methods=len(scores))
    lines = ["Table 3 via the full text pipeline (render + NLP + extract)"]
    lines += [score.row() for score in scores]
    emit("table3_text_pipeline", lines)

    by_name = {score.name: score for score in scores}
    surveyor = by_name["Surveyor"]
    assert surveyor.f1 == max(s.f1 for s in scores)
    assert surveyor.precision == max(s.precision for s in scores)
    assert surveyor.coverage > 1.2 * by_name["Majority Vote"].coverage


def bench_text_vs_probe_consistency(benchmark, harness):
    """Counts from the text path track the probe counts closely."""
    text_harness = EvaluationHarness(seed=2015, use_text_pipeline=True)

    def totals():
        probe_per_key = harness.evidence.statements_per_key()
        text_per_key = text_harness.evidence.statements_per_key()
        return probe_per_key, text_per_key

    probe_per_key, text_per_key = benchmark.pedantic(
        totals, rounds=1, iterations=1
    )
    lines = ["Text-pipeline vs probe evidence totals per combination"]
    ratios = []
    for key in sorted(probe_per_key, key=str):
        probe_total = probe_per_key[key]
        text_total = text_per_key.get(key, 0)
        ratio = text_total / probe_total if probe_total else 0.0
        ratios.append(ratio)
        lines.append(
            f"{str(key):28s} probe={probe_total:5d} "
            f"text={text_total:5d} ratio={ratio:.2f}"
        )
    emit("text_vs_probe", lines)
    # Rendering noise costs ~10% of statements (broad copulas) and
    # adds none (filters hold): ratios sit in a tight band below 1.
    assert all(0.75 <= ratio <= 1.05 for ratio in ratios)
