"""Table 3 — coverage / precision / F1 of the four interpreters.

Paper values (40 TB snapshot, real AMT):

    Majority Vote          coverage 0.483  precision 0.29  F1 0.36
    Scaled Majority Vote   coverage 0.486  precision 0.37  F1 0.42
    WebChild               coverage 0.477  precision 0.54  F1 0.51
    Surveyor               coverage 0.966  precision 0.77  F1 0.84

Expected shape on the synthetic corpus: same ordering — Surveyor wins
every column, majority vote has the worst precision, the coverage gap
between Surveyor and the counting baselines is wide.
"""

from __future__ import annotations

from _report import emit, perf_counts

from repro.evaluation import evaluate_table


def bench_table3(benchmark, harness, interpreted, survey):
    test_cases = survey.without_ties()

    def score_all():
        return [
            evaluate_table(name, table, test_cases)
            for name, table in interpreted.items()
        ]

    scores = benchmark(score_all)
    perf_counts(test_cases=len(test_cases))
    lines = ["Table 3 — method comparison (synthetic corpus)"]
    lines += [score.row() for score in scores]
    emit("table3_comparison", lines)

    by_name = {score.name: score for score in scores}
    surveyor = by_name["Surveyor"]
    assert surveyor.f1 == max(s.f1 for s in scores)
    assert surveyor.precision == max(s.precision for s in scores)
    assert surveyor.coverage == max(s.coverage for s in scores)
    assert by_name["Majority Vote"].precision <= min(
        s.precision for s in scores
    ) + 1e-9


def bench_table3_interpretation_cost(benchmark, harness):
    """Time the full four-way interpretation (the modeling stage)."""
    evidence = harness.evidence.as_evidence()

    from repro.baselines import standard_interpreters

    def interpret_all():
        return [
            interpreter.interpret(evidence, harness.kb)
            for interpreter in standard_interpreters()
        ]

    tables = benchmark(interpret_all)
    assert len(tables) == 4
