"""Figure 10 — worker votes for "cute" across the 20 animals.

Paper: strong agreement on clear-cut animals (kitten, puppy near 20/20;
scorpion, spider near 0/20) with a controversial middle.
"""

from __future__ import annotations

from _report import emit, perf_counts

from repro.kb.seeds import FIGURE_10_ANIMALS


def bench_fig10_votes(benchmark, survey):
    def collect():
        return survey.votes_for("animal", "cute")

    votes = benchmark(collect)
    perf_counts(animals=len(votes))
    lines = ["Figure 10 — 'how many of 20 workers call the animal cute?'"]
    for name in FIGURE_10_ANIMALS:
        bar = "#" * votes[name]
        lines.append(f"{name:14s} {votes[name]:2d} {bar}")
    emit("fig10_cute_animals", lines)

    assert len(votes) == 20
    assert votes["kitten"] >= 17
    assert votes["puppy"] >= 17
    assert votes["scorpion"] <= 3
    assert votes["spider"] <= 3
    # A controversial middle exists (paper: frog, octopus, ...).
    assert any(6 <= count <= 14 for count in votes.values())
