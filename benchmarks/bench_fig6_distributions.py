"""Figure 6 — the two count distributions implied by Example 3.

Paper: with pA=0.9, np+S=100, np-S=5 the joint distribution over
(C+, C-) given D=+ peaks near (90, 0.5) and given D=- near (10, 4.5);
the evidence tuple <60, 3> is far more likely under D=+.

The benchmark evaluates the model's joint log-probability over the
grid the paper plots (C+ in 0..100, C- in 0..10) and checks the modes
and the <60, 3> classification.
"""

from __future__ import annotations

import numpy as np
from _report import emit, perf_counts

from repro.core import EvidenceCounts, ModelParameters, UserBehaviorModel

PARAMS = ModelParameters(agreement=0.9, rate_positive=100.0, rate_negative=5.0)


def grid_log_probabilities(positive_dominant: bool) -> np.ndarray:
    model = UserBehaviorModel(PARAMS)
    grid = np.empty((101, 11))
    for positive in range(101):
        for negative in range(11):
            grid[positive, negative] = model.log_likelihood(
                EvidenceCounts(positive, negative), positive_dominant
            )
    return grid


def bench_fig6_grids(benchmark):
    def compute():
        return grid_log_probabilities(True), grid_log_probabilities(False)

    grid_pos, grid_neg = benchmark(compute)
    perf_counts(grid_cells=grid_pos.size + grid_neg.size)

    mode_pos = np.unravel_index(np.argmax(grid_pos), grid_pos.shape)
    mode_neg = np.unravel_index(np.argmax(grid_neg), grid_neg.shape)
    model = UserBehaviorModel(PARAMS)
    example = EvidenceCounts(60, 3)
    posterior = model.posterior_positive(example)

    lines = [
        "Figure 6 — joint count distributions (Example 3 parameters)",
        f"lambda++ = 90, lambda-+ = 0.5, lambda+- = 10, lambda-- = 4.5",
        f"mode of Pr(C+, C- | D=+): {mode_pos}",
        f"mode of Pr(C+, C- | D=-): {mode_neg}",
        f"Pr(D=+ | C=<60,3>) = {posterior:.6f}",
    ]
    emit("fig6_distributions", lines)

    # D=+ mode near (90, 0); D=- mode near (10, 4).
    assert abs(mode_pos[0] - 90) <= 2
    assert mode_pos[1] <= 1
    assert abs(mode_neg[0] - 10) <= 2
    assert abs(mode_neg[1] - 4) <= 1
    # The paper's example point is decidedly positive.
    assert posterior > 0.999
