"""Table 5 — the Appendix D random-sample comparison.

Paper values (803 combinations x 7 entities; 80 expert-labeled cases):

    Majority Vote          coverage 0.0766  precision 0.333  F1 0.125
    Scaled Majority Vote   coverage 0.0773  precision 0.417  F1 0.130
    WebChild               coverage 0.173   precision 0.615  F1 0.270
    Surveyor               coverage 0.999   precision 0.784  F1 0.879

Expected shape: the counting baselines collapse in coverage on the
long tail while Surveyor stays near-total; Surveyor's F1 *improves*
relative to Table 3 while every baseline's F1 drops hard.
"""

from __future__ import annotations

from _report import emit, perf_counts

from repro.evaluation import RandomSampleStudy


def bench_table5(benchmark):
    study = RandomSampleStudy(n_combinations=803, seed=2015)
    scores = benchmark.pedantic(study.run, rounds=1, iterations=1)
    perf_counts(combinations=803)

    lines = ["Table 5 — random sample of 803 property-type combinations"]
    lines += [score.row() for score in scores]
    emit("table5_random_sample", lines)

    by_name = {score.name: score for score in scores}
    surveyor = by_name["Surveyor"]
    majority = by_name["Majority Vote"]
    assert surveyor.coverage > 0.95
    assert majority.coverage < 0.35
    assert by_name["Scaled Majority Vote"].coverage < 0.35
    assert surveyor.f1 == max(s.f1 for s in scores)
    # The paper's headline: the coverage gap widens dramatically
    # relative to the curated test set.
    assert surveyor.coverage > 3 * majority.coverage
