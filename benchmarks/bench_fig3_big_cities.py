"""Figure 3 — the Section 2 empirical study on 461 Californian cities.

Paper: statement counts correlate with population (3a/3b); majority
vote yields polarities uncorrelated with population and leaves many
cities undecided (3c); the probabilistic model decides every city and
its polarity tracks population (3d).

Expected shape: Surveyor decided fraction 1.0 with AUC near 1; majority
vote partial coverage and visibly lower AUC.
"""

from __future__ import annotations

import numpy as np
from _report import emit, perf_counts

from repro.corpus import CorpusGenerator
from repro.evaluation import BIG_CITIES, run_study
from repro.kb import KnowledgeBase


def bench_fig3_counts_vs_population(benchmark):
    """3(a)/3(b): statement counts correlate with population."""
    spec = BIG_CITIES
    scenario = spec.scenario()

    def probe():
        return CorpusGenerator(seed=2015).probe(scenario)

    counter = benchmark(probe)
    key = spec.key()
    per_entity = counter.as_evidence()[key]
    populations = []
    totals = []
    for entity in scenario.entities:
        counts = per_entity.get(entity.id)
        populations.append(entity.attribute("population"))
        totals.append(counts.total if counts else 0)
    log_pop = np.log10(populations)
    corr = float(np.corrcoef(log_pop, totals)[0, 1])
    perf_counts(cities=len(populations))
    lines = [
        "Figure 3(a,b) — statement counts vs population",
        f"cities: {len(populations)}",
        f"pearson(log10 population, total statements) = {corr:.3f}",
        f"silent cities: {sum(1 for t in totals if t == 0)}",
    ]
    emit("fig3_counts_vs_population", lines)
    assert corr > 0.4


def bench_fig3_mv_vs_model(benchmark):
    """3(c)/3(d): majority vote vs probabilistic model polarity."""
    outcome = benchmark.pedantic(
        lambda: run_study(BIG_CITIES, seed=2015), rounds=1, iterations=1
    )
    lines = [
        "Figure 3(c,d) — polarity quality on 461 CA cities ('big')",
        outcome.majority.row(),
        outcome.surveyor.row(),
    ]
    emit("fig3_mv_vs_model", lines)
    assert outcome.surveyor.decided_fraction == 1.0
    assert outcome.majority.decided_fraction < 1.0
    assert outcome.surveyor.auc > outcome.majority.auc
    assert outcome.surveyor.auc > 0.95
