"""Benchmarks for design alternatives the paper discusses.

* **Antonym expansion** (Section 4, rejected): treating "X is small"
  as a negation of "X is big". The bench builds a world with big,
  small, and mid-size cities — mid cities are neither big nor small —
  and shows the expansion fabricates positive 'small' evidence for
  mid cities, hurting precision, exactly the paper's argument.
* **Pronoun coreference** (extension): with a corpus where 40% of the
  claims ride on pronouns, resolution recovers them; disabling it
  loses the statements.
"""

from __future__ import annotations

from _report import emit, perf_counts

from repro.baselines import SurveyorInterpreter
from repro.core import Polarity, PropertyTypeKey, SubjectiveProperty
from repro.corpus import (
    CorpusGenerator,
    NoiseProfile,
    PropertySpec,
    Scenario,
    TrueParameters,
)
from repro.extraction import (
    EvidenceCounter,
    EvidenceExtractor,
    expand_with_antonyms,
)
from repro.kb import Entity, KnowledgeBase
from repro.nlp import Annotator

BIG = PropertyTypeKey(SubjectiveProperty("big"), "city")
SMALL = PropertyTypeKey(SubjectiveProperty("small"), "city")


def _three_class_world() -> tuple[KnowledgeBase, Scenario, dict]:
    """Cities that are big, small, or neither."""
    entities = []
    truth_class: dict[str, str] = {}
    for index in range(12):
        entity = Entity.create(f"Bigton{chr(97 + index)}", "city")
        entities.append(entity)
        truth_class[entity.id] = "big"
    for index in range(12):
        entity = Entity.create(f"Midville{chr(97 + index)}", "city")
        entities.append(entity)
        truth_class[entity.id] = "mid"
    for index in range(12):
        entity = Entity.create(f"Smallbury{chr(97 + index)}", "city")
        entities.append(entity)
        truth_class[entity.id] = "small"

    def truths(positive_class: str) -> dict[str, Polarity]:
        return {
            entity.id: (
                Polarity.POSITIVE
                if truth_class[entity.id] == positive_class
                else Polarity.NEGATIVE
            )
            for entity in entities
        }

    params = TrueParameters(
        agreement=0.88, rate_positive=25.0, rate_negative=4.0
    )
    scenario = Scenario(
        name="three-class-cities",
        entity_type="city",
        entities=tuple(entities),
        specs=(
            PropertySpec(
                property=SubjectiveProperty("big"),
                params=params,
                ground_truth=truths("big"),
            ),
            PropertySpec(
                property=SubjectiveProperty("small"),
                params=params,
                ground_truth=truths("small"),
            ),
        ),
    )
    return KnowledgeBase(entities), scenario, truth_class


def bench_antonym_expansion(benchmark):
    kb, scenario, truth_class = _three_class_world()
    corpus = CorpusGenerator(
        seed=2015, noise=NoiseProfile.CLEAN
    ).generate(scenario)
    perf_counts(documents=len(corpus))
    annotator = Annotator(kb)
    extractor = EvidenceExtractor()
    statements = []
    for document in corpus:
        statements.extend(
            extractor.extract_document(
                annotator.annotate(document.doc_id, document.text)
            )
        )

    def interpret(expand: bool):
        counter = EvidenceCounter()
        counter.add_all(
            expand_with_antonyms(statements) if expand else statements
        )
        return SurveyorInterpreter(occurrence_threshold=1).interpret(
            counter.as_evidence(), kb
        )

    plain_table = benchmark(lambda: interpret(False))
    antonym_table = interpret(True)

    def small_accuracy(table) -> tuple[float, int]:
        correct = 0
        mid_false_positives = 0
        total = 0
        for entity_id, klass in truth_class.items():
            predicted = table.polarity(entity_id, SMALL)
            expected = (
                Polarity.POSITIVE if klass == "small" else Polarity.NEGATIVE
            )
            total += 1
            correct += predicted is expected
            if klass == "mid" and predicted is Polarity.POSITIVE:
                mid_false_positives += 1
        return correct / total, mid_false_positives

    plain_acc, plain_fp = small_accuracy(plain_table)
    antonym_acc, antonym_fp = small_accuracy(antonym_table)
    lines = [
        "Rejected design — antonym expansion ('small' from 'not big')",
        f"plain    : accuracy={plain_acc:.3f} "
        f"mid-city false positives={plain_fp}",
        f"antonyms : accuracy={antonym_acc:.3f} "
        f"mid-city false positives={antonym_fp}",
        "paper's argument: users who consider a city not big do not "
        "necessarily consider it small.",
    ]
    emit("rejected_antonym_expansion", lines)
    # The expansion must not help, and it fabricates mid-city
    # positives.
    assert antonym_acc <= plain_acc
    assert antonym_fp >= plain_fp


def bench_pronoun_coreference(benchmark, harness):
    """Extension: claims riding on pronouns need the resolver."""
    scenario = harness.scenarios()[0]
    noise = NoiseProfile(
        distractor_rate=0.2,
        non_intrinsic_rate=0.0,
        loose_only_rate=0.0,
        allow_broad_renderings=False,
        pronoun_statement_rate=0.4,
    )
    corpus = CorpusGenerator(seed=2015, noise=noise).generate(scenario)

    def statements_with(resolve: bool) -> int:
        annotator = Annotator(harness.kb, resolve_pronouns=resolve)
        counter = EvidenceExtractor().extract_corpus(
            annotator.annotate(d.doc_id, d.text) for d in corpus
        )
        return counter.n_statements

    with_coref = benchmark.pedantic(
        lambda: statements_with(True), rounds=1, iterations=1
    )
    without_coref = statements_with(False)
    perf_counts(documents=len(corpus))
    truth_total = sum(
        pos + neg for pos, neg in corpus.truth.values()
    )
    lines = [
        "Extension — pronoun coreference recall",
        f"rendered statements: {truth_total}",
        f"extracted with resolver   : {with_coref}",
        f"extracted without resolver: {without_coref}",
    ]
    emit("extension_pronoun_coref", lines)
    assert with_coref == truth_total
    assert without_coref < 0.75 * with_coref
