"""Figure 11 — number of test cases above each agreement threshold.

Paper: ~491 cases at >=11 (after removing ~4% ties), dropping to ~180
at 20/20; average agreement 17 of 20.
"""

from __future__ import annotations

from _report import emit, perf_counts

from repro.evaluation import case_counts_by_threshold


def bench_fig11_histogram(benchmark, survey):
    def compute():
        return case_counts_by_threshold(survey)

    counts = benchmark(compute)
    perf_counts(cases=max(counts.values()))
    lines = [
        "Figure 11 — #test cases with worker agreement >= threshold",
        f"mean agreement: {survey.mean_agreement():.2f} / 20 "
        f"(paper: 17/20)",
        f"ties removed: {survey.tie_fraction():.1%} (paper: ~4%)",
        f"perfect agreement: {survey.perfect_agreement_count()} "
        f"(paper: ~180)",
    ]
    for threshold in sorted(counts):
        lines.append(f">= {threshold:2d}: {counts[threshold]:3d}")
    emit("fig11_agreement", lines)

    thresholds = sorted(counts)
    values = [counts[t] for t in thresholds]
    assert values == sorted(values, reverse=True)
    assert 15.5 < survey.mean_agreement() < 18.5
    assert counts[thresholds[0]] > 450
    assert counts[20] > 50
