"""Session-scoped fixtures shared across the benchmark suite.

The evaluation world (scenarios, evidence, survey) is expensive enough
to build once and reuse; individual benchmarks time the computation
they own, not the shared setup.
"""

from __future__ import annotations

import pytest

from repro.evaluation import EvaluationHarness

#: One seed for the whole benchmark run; matches the paper year.
BENCH_SEED = 2015


@pytest.fixture(scope="session")
def harness() -> EvaluationHarness:
    """The Section 7 world: 5 types x 5 properties x 20 entities."""
    return EvaluationHarness(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def survey(harness):
    return harness.survey


@pytest.fixture(scope="session")
def evidence(harness):
    return harness.evidence


@pytest.fixture(scope="session")
def interpreted(harness):
    """Opinion tables of all four methods over the shared evidence."""
    return harness.interpret_all()
