"""Session-scoped fixtures shared across the benchmark suite.

The evaluation world (scenarios, evidence, survey) is expensive enough
to build once and reuse; individual benchmarks time the computation
they own, not the shared setup.

The hooks below also capture one perf record per ``bench_*`` function
(wall time, peak RSS, tracemalloc peak when ``REPRO_BENCH_TRACEMALLOC``
is set) and merge them into the repo-root ``BENCH_<gitsha>.json``
trajectory at session end — the machine-readable counterpart of the
``.txt`` artefacts. See docs/observability.md, "Performance
telemetry".
"""

from __future__ import annotations

import pytest

import _report
from repro.evaluation import EvaluationHarness

#: One seed for the whole benchmark run; matches the paper year.
BENCH_SEED = 2015


def pytest_sessionstart(session):
    _report.CAPTURE = _report.PerfCapture()


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    capture = _report.CAPTURE
    if capture is None or not item.name.startswith("bench_"):
        yield
        return
    name = item.name.removeprefix("bench_")
    probe, started = capture.start(name)
    outcome = yield
    # Failed benchmarks leave no record: a crashed run's wall time is
    # not a data point, and a partial trajectory must not overwrite a
    # good one at compare time.
    if outcome.excinfo is None:
        capture.finish(name, probe, started)


def pytest_sessionfinish(session, exitstatus):
    capture = _report.CAPTURE
    if capture is None:
        return
    path = capture.flush()
    if path is not None:
        print(
            f"\nbench trajectory: {len(capture.records)} records "
            f"-> {path}"
        )
    _report.CAPTURE = None


@pytest.fixture(scope="session")
def harness() -> EvaluationHarness:
    """The Section 7 world: 5 types x 5 properties x 20 entities."""
    return EvaluationHarness(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def survey(harness):
    return harness.survey


@pytest.fixture(scope="session")
def evidence(harness):
    return harness.evidence


@pytest.fixture(scope="session")
def interpreted(harness):
    """Opinion tables of all four methods over the shared evidence."""
    return harness.interpret_all()
