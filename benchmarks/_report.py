"""Shared reporting helper for the benchmark suite.

Every benchmark regenerates one table or figure of the paper. Besides
the pytest-benchmark timing table, the *content* of each artefact (the
rows/series the paper reports) is written to
``benchmarks/results/<name>.txt`` and echoed to stdout (visible with
``pytest -s``). EXPERIMENTS.md is assembled from these files.

The suite also feeds the repo's **performance trajectory**: the
conftest hooks wrap every ``bench_*`` function in a
:class:`PerfCapture` (wall time, peak RSS, tracemalloc peak when
tracing is on) and, at session end, merge the records into a repo-root
``BENCH_<gitsha>.json`` (see :mod:`repro.obs.perf`). Benchmarks with
natural throughput units declare them via :func:`perf_counts`, which
turns them into ``<unit>_per_second`` rows in their record.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from repro.obs.manifest import git_describe
from repro.obs.perf import (
    BENCH_SCHEMA_VERSION,
    MemoryProbe,
    build_bench_record,
    merge_into_trajectory,
    trajectory_filename,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Where the trajectory lands: the repo root by default, overridable
#: for tests and sandboxed CI runs.
TRAJECTORY_DIR_ENV = "REPRO_BENCH_DIR"

#: Opt-in for tracemalloc sampling during benchmarks. Off by default
#: because allocation tracing inflates every wall-clock figure (the
#: published ``.txt`` artefacts must not silently change regime).
TRACEMALLOC_ENV = "REPRO_BENCH_TRACEMALLOC"


def emit(name: str, lines: list[str]) -> None:
    """Persist and print one benchmark's artefact rows."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n===== {name} =====")
    print(text)


def emit_json(name: str, payload: dict[str, Any]) -> None:
    """Persist one benchmark's machine-readable artefact.

    The payload is stamped with a ``meta`` block (benchmark name, git
    describe, schema version) and must be JSON-serialisable — a
    payload that is not fails with a clear error naming the benchmark
    instead of a raw ``TypeError`` from ``json.dumps``.
    """
    record = dict(payload)
    record["meta"] = {
        "benchmark": name,
        "git_describe": git_describe(),
        "schema_version": BENCH_SCHEMA_VERSION,
    }
    try:
        text = json.dumps(record, indent=1, sort_keys=True)
    except TypeError as error:
        raise ValueError(
            f"emit_json({name!r}): payload is not JSON-serialisable "
            f"({error}); convert numpy scalars/paths to plain "
            "int/float/str first"
        ) from error
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(text + "\n")


# ---------------------------------------------------------------------------
# Performance trajectory capture (driven by benchmarks/conftest.py)
# ---------------------------------------------------------------------------

class PerfCapture:
    """Collects one bench session's perf records and writes the
    trajectory file. One instance per pytest session."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []
        self.git_version = git_describe()
        self.session_unix = time.time()
        self._active: str | None = None
        self._counts: dict[str, dict[str, float]] = {}
        self._values: dict[str, dict[str, float]] = {}

    # -- per-benchmark bracket -----------------------------------------
    def start(self, name: str) -> tuple[MemoryProbe, float]:
        self._active = name
        if os.environ.get(TRACEMALLOC_ENV):
            from repro.obs.perf import start_tracemalloc

            start_tracemalloc()
        return MemoryProbe().start(), time.perf_counter()

    def finish(
        self,
        name: str,
        probe: MemoryProbe,
        started: float,
    ) -> dict[str, Any]:
        wall = time.perf_counter() - started
        record = build_bench_record(
            name=name,
            wall_seconds=wall,
            memory=probe.stop(),
            counts=self._counts.pop(name, None),
            values=self._values.pop(name, None),
            git_version=self.git_version,
            timestamp=self.session_unix,
        )
        self.records.append(record)
        self._active = None
        return record

    def count(self, name: str | None, **units: float) -> None:
        key = name or self._active
        if key is None:
            return
        bucket = self._counts.setdefault(key, {})
        for label, value in units.items():
            bucket[label] = float(value)

    def value(self, name: str | None, **gauges: float) -> None:
        key = name or self._active
        if key is None:
            return
        bucket = self._values.setdefault(key, {})
        for label, value in gauges.items():
            bucket[label] = float(value)

    # -- session flush --------------------------------------------------
    def trajectory_path(self) -> Path:
        root = os.environ.get(TRAJECTORY_DIR_ENV)
        directory = (
            Path(root) if root else Path(__file__).parent.parent
        )
        return directory / trajectory_filename(self.git_version)

    def flush(self) -> Path | None:
        if not self.records:
            return None
        return merge_into_trajectory(
            self.trajectory_path(), self.records, self.git_version
        )


#: The live capture, installed by the conftest session hook.
CAPTURE: PerfCapture | None = None


def perf_counts(name: str | None = None, **units: float) -> None:
    """Declare throughput units for the currently-running benchmark
    (or an explicitly named one). No-op outside a bench session, so
    bench modules stay importable standalone."""
    if CAPTURE is not None:
        CAPTURE.count(name, **units)


def perf_values(name: str | None = None, **gauges: float) -> None:
    """Record self-measured scalar gauges (latency quantiles, ratios)
    into the benchmark's trajectory record, as-is. Same no-op
    semantics as :func:`perf_counts`."""
    if CAPTURE is not None:
        CAPTURE.value(name, **gauges)
