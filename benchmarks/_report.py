"""Shared reporting helper for the benchmark suite.

Every benchmark regenerates one table or figure of the paper. Besides
the pytest-benchmark timing table, the *content* of each artefact (the
rows/series the paper reports) is written to
``benchmarks/results/<name>.txt`` and echoed to stdout (visible with
``pytest -s``). EXPERIMENTS.md is assembled from these files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, lines: list[str]) -> None:
    """Persist and print one benchmark's artefact rows."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n===== {name} =====")
    print(text)


def emit_json(name: str, payload: dict[str, Any]) -> None:
    """Persist one benchmark's machine-readable artefact (for trend
    tracking across runs; the obs-overhead benchmark uses this)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
