"""Evidence-lineage capture overhead gate.

Provenance capture (see docs/observability.md, "Answer provenance &
drift") is ON by default, so its cost is part of every mining run.
This bench runs the same corpus through the pipeline with capture on
and off and gates the throughput ratio: the provenance path must keep
at least ``DEFAULT_RATIO_FLOOR`` of the no-provenance throughput.

Measurement design:

* *Relative*, in process CPU seconds — CPU time does not inflate when
  other tenants load the CI box, where wall-clock ratios proved
  bimodal (same approach as bench_sec71_pipeline_scale).
* *Cold*, like production — ``repro mine`` runs in a fresh process,
  so each round resets the shared annotation memo. A warm-memo loop
  would shrink the denominator ~4x and gate provenance against a
  steady state no mining run ever sees; the cold run also charges the
  real one-time costs (per-sentence sampling, ledger merge, totals
  seeding, index build), which amortize over document count.
* Alternating A/B rounds with the starting variant flipped each
  round (ABBA), gating on the per-variant *second-smallest* CPU time
  — heap growth drifts later rounds slower for both variants, the
  flip keeps that drift from loading one side, and the near-min
  estimator ignores one lucky dip per variant (its residual bias is
  shared, so it cancels in the ratio). The timed ``benchmark`` region
  (the product-default capture-on run) doubles as the process
  warm-up: the first pipeline run of a process pays interpreter
  specialization and import costs no later run sees, so its CPU
  seconds stay out of the ratio.
* GC pinned per round (collect, then disable for the timed region) —
  the cyclic collector's gen-2 passes over the corpus-sized heap land
  at allocation-count thresholds, adding ~80 ms to whichever variant
  happens to cross one; that quantum is 30x the effect being gated.

The fine-grained trend lives in the recorded ``provenance_cpu_ratio``
trajectory value (``repro bench trend`` renders it).
"""

from __future__ import annotations

import gc
import os
import resource

from _report import emit, perf_counts, perf_values

from repro.corpus import CorpusGenerator, NoiseProfile, WebCorpus
from repro.nlp import reset_shared_annotation_state
from repro.pipeline import SurveyorPipeline

#: Provenance-on throughput must stay >= this fraction of the
#: provenance-off path (override for known-noisy hardware).
RATIO_FLOOR_ENV = "REPRO_BENCH_PROVENANCE_RATIO_FLOOR"
DEFAULT_RATIO_FLOOR = 0.95

#: Documents per pipeline run. Capture cost is dominated by a
#: once-per-distinct-sentence sampling pass, so the overhead
#: *fraction* falls as the corpus grows — the slice must be large
#: enough (~0.7 CPU-seconds) that the amortized ratio, not the
#: fixed sampling cost, is what the gate sees; relative CPU noise
#: also shrinks with run length.
SLICE = 12000

#: Cold pipeline runs per variant; the gate uses the per-variant
#: second-smallest CPU time.
ROUNDS = 4


def _cpu_seconds() -> float:
    """User+system CPU consumed by this process so far."""
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return usage.ru_utime + usage.ru_stime


def _run(pipeline: SurveyorPipeline, corpus: WebCorpus):
    reset_shared_annotation_state()
    gc.collect()
    gc.disable()
    try:
        start = _cpu_seconds()
        report = pipeline.run(corpus)
        return report, _cpu_seconds() - start
    finally:
        gc.enable()


def bench_provenance_overhead(benchmark, harness):
    full = CorpusGenerator(
        seed=2015, noise=NoiseProfile()
    ).generate(*harness.scenarios())
    corpus = WebCorpus(documents=full.documents[:SLICE])

    def build(provenance: bool) -> SurveyorPipeline:
        return SurveyorPipeline(
            kb=harness.kb,
            occurrence_threshold=100,
            n_workers=8,
            provenance=provenance,
        )

    # The timed region is the product default (capture on); it also
    # absorbs the first-run-in-process warm-up, so it is excluded
    # from the A/B ratio below.
    report = benchmark.pedantic(
        lambda: _run(build(True), corpus)[0],
        rounds=1,
        iterations=1,
    )
    assert report.provenance is not None

    cpu_on: list[float] = []
    cpu_off: list[float] = []
    off_report = None
    for round_index in range(ROUNDS):
        order = (True, False) if round_index % 2 else (False, True)
        for provenance in order:
            part, seconds = _run(build(provenance), corpus)
            if provenance:
                cpu_on.append(seconds)
            else:
                cpu_off.append(seconds)
                off_report = part
    assert off_report is not None and off_report.provenance is None

    docs_per_cpu_on = SLICE / max(sorted(cpu_on)[1], 1e-9)
    docs_per_cpu_off = SLICE / max(sorted(cpu_off)[1], 1e-9)
    ratio = docs_per_cpu_on / docs_per_cpu_off

    lineage = report.provenance
    perf_counts(
        documents=SLICE,
        statements=report.evidence.n_statements,
    )
    perf_values(
        provenance_cpu_ratio=round(ratio, 4),
        provenance_pairs=float(lineage.n_pairs),
        provenance_samples=float(lineage.n_samples),
    )
    emit("provenance_overhead", [
        "Evidence-lineage capture overhead",
        f"corpus: {SLICE} documents (cold annotation memo per run)",
        f"lineage: {lineage.n_pairs} pairs, "
        f"{lineage.n_samples} sampled statements",
        f"throughput with capture: {docs_per_cpu_on:.0f} "
        f"documents/CPU-second",
        f"throughput without: {docs_per_cpu_off:.0f} "
        f"documents/CPU-second",
        f"ratio (with/without): {ratio:.3f}",
        "cpu seconds with:    "
        + " ".join(f"{s:.3f}" for s in cpu_on),
        "cpu seconds without: "
        + " ".join(f"{s:.3f}" for s in cpu_off),
    ])

    # Capture must see evidence: every opinion pair has a ledger entry.
    assert lineage.n_pairs > 0
    assert lineage.n_samples > 0
    floor = float(
        os.environ.get(RATIO_FLOOR_ENV, DEFAULT_RATIO_FLOOR)
    )
    assert ratio >= floor, (
        f"provenance capture overhead regressed: throughput ratio "
        f"{ratio:.3f} < floor {floor:.2f} (override {RATIO_FLOOR_ENV})"
    )
