"""Figure 13 — Appendix A studies: wealthy countries, big Swiss lakes,
high British mountains.

Paper: for all three scenarios the probabilistic model's polarity
correlates with the objective covariate far better than majority
vote's, and the model classifies entities for which no statements were
collected at all.
"""

from __future__ import annotations

import pytest
from _report import emit, perf_counts

from repro.evaluation import APPENDIX_A_STUDIES, run_study


@pytest.mark.parametrize(
    "spec", APPENDIX_A_STUDIES, ids=lambda s: s.name
)
def bench_fig13_study(benchmark, spec):
    outcome = benchmark.pedantic(
        lambda: run_study(spec, seed=2015), rounds=1, iterations=1
    )
    perf_counts(entities=len(spec.scenario().entities))
    lines = [
        f"Figure 13 — {spec.name} "
        f"({spec.property_text} vs {spec.attribute})",
        outcome.majority.row(),
        outcome.surveyor.row(),
    ]
    emit(spec.name.replace("-", "_"), lines)

    assert outcome.surveyor.decided_fraction == 1.0
    assert outcome.majority.decided_fraction < 1.0
    assert outcome.surveyor.auc >= outcome.majority.auc
    assert outcome.surveyor.auc > 0.9
    # Positive-marked entities sit above negative-marked ones on the
    # covariate (separation > 1); the headline comparison is the AUC.
    assert outcome.surveyor.separation > 1.0
