"""Ablations for the design choices DESIGN.md calls out.

1. Poisson product vs exact Multinomial posterior (Section 5.2's
   approximation) — max/mean posterior deviation.
2. ``pA`` grid resolution in the M-step — precision vs grid size.
3. Per property-type parameters vs one global parameter vector
   (the paper's central modeling claim).
4. Occurrence threshold rho — qualifying combinations vs coverage.
5. Uniform vs empirical prior over the dominant opinion.
6. EM iteration budget — how fast the fit converges.
"""

from __future__ import annotations

import numpy as np
import pytest
from _report import emit, perf_counts

from repro.baselines import SurveyorInterpreter
from repro.core import (
    EMLearner,
    EvidenceCounts,
    ModelParameters,
    Surveyor,
    UserBehaviorModel,
)
from repro.evaluation import evaluate_table


# ---------------------------------------------------------------------------
# 1. Poisson vs Multinomial
# ---------------------------------------------------------------------------

def bench_ablation_poisson_vs_multinomial(benchmark):
    params = ModelParameters(0.9, 100.0, 5.0)
    model = UserBehaviorModel(params)
    grid = [
        EvidenceCounts(p, n)
        for p in range(0, 121, 5)
        for n in range(0, 13)
    ]

    def deltas():
        return [
            abs(
                model.posterior_positive(counts)
                - model.posterior_positive_multinomial(counts, 1_000_000)
            )
            for counts in grid
        ]

    deviations = benchmark(deltas)
    lines = [
        "Ablation 1 — Poisson product vs exact Multinomial posterior",
        f"grid points: {len(grid)} (n = 1,000,000 documents)",
        f"max |delta| = {max(deviations):.2e}",
        f"mean |delta| = {float(np.mean(deviations)):.2e}",
    ]
    emit("ablation_poisson_vs_multinomial", lines)
    # The approximation is essentially exact in the Web regime.
    assert max(deviations) < 1e-3


# ---------------------------------------------------------------------------
# 2. pA grid resolution
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("grid_size", [3, 7, 15, 49])
def bench_ablation_grid_resolution(benchmark, harness, survey, grid_size):
    grid = tuple(
        0.5 + 0.49 * (i + 1) / (grid_size + 1) for i in range(grid_size)
    )
    interpreter = SurveyorInterpreter(
        occurrence_threshold=1, learner=EMLearner(agreement_grid=grid)
    )
    evidence = harness.evidence.as_evidence()

    table = benchmark.pedantic(
        lambda: interpreter.interpret(evidence, harness.kb),
        rounds=1,
        iterations=1,
    )
    score = evaluate_table(
        f"grid={grid_size}", table, survey.without_ties()
    )
    results = _STATE.setdefault("grid", {})
    results[grid_size] = score
    if len(results) == 4:
        lines = ["Ablation 2 — pA grid resolution"]
        lines += [results[k].row() for k in sorted(results)]
        emit("ablation_grid_resolution", lines)
        # Precision saturates: the finest grid must not lose to the
        # coarsest by more than noise, and coverage stays total.
        assert results[49].precision >= results[3].precision - 0.05


_STATE: dict = {}


# ---------------------------------------------------------------------------
# 3. Per-combination vs global parameters
# ---------------------------------------------------------------------------

def bench_ablation_per_combination_vs_global(benchmark, harness, survey):
    """Fit one parameter vector on the pooled evidence of all
    combinations, then score both modes on the Table 3 test set."""
    evidence = harness.evidence.as_evidence()
    test_cases = survey.without_ties()

    def global_table():
        pooled = [
            counts
            for per_entity in evidence.values()
            for counts in per_entity.values()
        ]
        result = EMLearner().fit(pooled)
        model = UserBehaviorModel(result.parameters)
        from repro.core import Opinion, OpinionTable

        table = OpinionTable()
        for key, per_entity in evidence.items():
            ids = set(harness.kb.entity_ids_of_type(key.entity_type))
            ids.update(per_entity)
            for entity_id in ids:
                counts = per_entity.get(entity_id, EvidenceCounts.ZERO)
                table.add(model.opinion(entity_id, key, counts))
        return table

    global_scores = evaluate_table(
        "global parameters", benchmark(global_table), test_cases
    )
    per_combination_table = SurveyorInterpreter(
        occurrence_threshold=1
    ).interpret(evidence, harness.kb)
    per_combination_scores = evaluate_table(
        "per-combination parameters", per_combination_table, test_cases
    )
    lines = [
        "Ablation 3 — per-combination vs global parameters",
        per_combination_scores.row(),
        global_scores.row(),
    ]
    emit("ablation_per_combination_vs_global", lines)
    # The paper's core claim: specializing parameters per combination
    # beats a single global fit.
    assert per_combination_scores.precision > global_scores.precision


# ---------------------------------------------------------------------------
# 4. Occurrence threshold rho
# ---------------------------------------------------------------------------

def bench_ablation_occurrence_threshold(benchmark, harness, survey):
    evidence = harness.evidence.as_evidence()
    test_cases = survey.without_ties()

    def sweep():
        rows = []
        for rho in (1, 50, 100, 500, 2000):
            surveyor = Surveyor(
                catalog=harness.kb, occurrence_threshold=rho
            )
            result = surveyor.run(evidence)
            score = evaluate_table(
                f"rho={rho}", result.opinions, test_cases
            )
            rows.append((rho, len(result.fits), score))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation 4 — occurrence threshold rho"]
    for rho, n_fits, score in rows:
        lines.append(f"rho={rho:5d} combinations={n_fits:3d} {score.row()}")
    emit("ablation_occurrence_threshold", lines)
    # Raising rho can only shrink the set of qualifying combinations
    # and hence coverage.
    fits = [n for _, n, _ in rows]
    assert fits == sorted(fits, reverse=True)
    coverages = [score.coverage for _, _, score in rows]
    assert coverages == sorted(coverages, reverse=True)


# ---------------------------------------------------------------------------
# 5. Prior choice
# ---------------------------------------------------------------------------

def bench_ablation_prior(benchmark, harness, survey):
    evidence = harness.evidence.as_evidence()
    test_cases = survey.without_ties()
    surveyor = Surveyor(catalog=harness.kb, occurrence_threshold=1)

    def with_prior(prior: float):
        from repro.core import Opinion, OpinionTable

        table = OpinionTable()
        for key, per_entity in evidence.items():
            fit = surveyor.fit_combination(key, per_entity)
            model = UserBehaviorModel(
                fit.parameters, prior_positive=prior
            )
            ids = set(harness.kb.entity_ids_of_type(key.entity_type))
            ids.update(per_entity)
            for entity_id in ids:
                counts = per_entity.get(entity_id, EvidenceCounts.ZERO)
                table.add(model.opinion(entity_id, key, counts))
        return table

    uniform = evaluate_table(
        "prior=0.5 (paper)", benchmark(lambda: with_prior(0.5)), test_cases
    )
    rows = [uniform]
    for prior in (0.25, 0.75):
        rows.append(
            evaluate_table(
                f"prior={prior}", with_prior(prior), test_cases
            )
        )
    lines = ["Ablation 5 — prior over the dominant opinion"]
    lines += [row.row() for row in rows]
    emit("ablation_prior", lines)
    # The agnostic prior is competitive with mild alternatives.
    assert uniform.f1 >= max(row.f1 for row in rows) - 0.05


# ---------------------------------------------------------------------------
# 6. EM iteration budget
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("iterations", [1, 2, 5, 50])
def bench_ablation_em_iterations(benchmark, harness, survey, iterations):
    evidence = harness.evidence.as_evidence()
    interpreter = SurveyorInterpreter(
        occurrence_threshold=1,
        learner=EMLearner(max_iterations=iterations, tolerance=0.0),
    )
    table = benchmark.pedantic(
        lambda: interpreter.interpret(evidence, harness.kb),
        rounds=1,
        iterations=1,
    )
    perf_counts(opinions=len(table))
    score = evaluate_table(
        f"iterations={iterations}", table, survey.without_ties()
    )
    results = _STATE.setdefault("iterations", {})
    results[iterations] = score
    if len(results) == 4:
        lines = ["Ablation 6 — EM iteration budget"]
        lines += [results[k].row() for k in sorted(results)]
        emit("ablation_em_iterations", lines)
        assert results[50].precision >= results[1].precision - 0.02
