"""Streaming ingestion freshness and incremental-refit CPU gates.

The ingestion subsystem (docs/ingestion.md) promises two things a
batch re-run cannot: a small append becomes servable fast, and it
costs a fraction of re-mining the world. This bench measures both on
a 10%-append workload over the evaluation corpus:

* **Incremental CPU ratio** — CPU seconds for ``IngestPipeline`` to
  absorb the 10% tail (delta extraction + warm-started dirty refits)
  divided by CPU seconds for a cold batch pipeline over 100%. Gated
  at ``DEFAULT_RATIO_CEILING`` (the acceptance bar: <= 25%). CPU
  time, not wall clock, so tenant load on the CI box cannot flip the
  gate; both sides run in-process with the shared annotation memo
  reset, GC pinned for the timed region.
* **Ingest -> servable freshness** — small batches POSTed through a
  live ``OpinionService.ingest`` (journal append, extract, refit,
  publish, validated swap); the gate is the p50 of the end-to-end
  cycle, ``DEFAULT_FRESHNESS_CEILING`` (1 second).

The generator shuffles documents across scenarios, so a 10% tail
touches nearly every (property, type) combination — the dirty set is
maximal and the refit bound comes from warm starts (cached parameters
sit near the new optimum), not from refit skipping. That makes this
the *adversarial* workload for the CPU gate; topical appends dirty
fewer combos and do strictly better.
"""

from __future__ import annotations

import gc
import os
import resource
import statistics

from _report import emit, perf_counts, perf_values

from repro.corpus import CorpusGenerator, NoiseProfile, WebCorpus
from repro.ingest import CorpusJournal, IngestPipeline
from repro.nlp import reset_shared_annotation_state
from repro.obs import MetricsRegistry
from repro.pipeline import SurveyorPipeline
from repro.serve import OpinionService

#: Incremental CPU must stay at or below this fraction of a full
#: batch re-run (override for known-noisy hardware).
RATIO_CEILING_ENV = "REPRO_BENCH_INGEST_RATIO_CEILING"
DEFAULT_RATIO_CEILING = 0.25

#: p50 of the ingest -> servable cycle must stay under this.
FRESHNESS_CEILING_ENV = "REPRO_BENCH_INGEST_FRESHNESS_CEILING"
DEFAULT_FRESHNESS_CEILING = 1.0

#: Documents in the mined world; the append is the last tenth. Large
#: enough that per-advance fixed costs (state save, manifest, index
#: build) amortize the way they do on a real corpus.
SLICE = 12000
APPEND_FRACTION = 0.1

#: Live-serving freshness probe: this many batches of this size.
FRESHNESS_BATCHES = 8
FRESHNESS_BATCH_DOCS = 4


def _cpu_seconds() -> float:
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return usage.ru_utime + usage.ru_stime


def _timed(fn, *, cold: bool = False):
    """Run ``fn`` with GC pinned; return (result, cpu seconds).

    ``cold`` resets the shared annotation memo first — right for the
    batch reference (``repro mine`` starts a fresh process), wrong
    for the incremental side (a long-lived ingest pipeline keeps its
    annotator warm; that steady state is the product path).
    """
    if cold:
        reset_shared_annotation_state()
    gc.collect()
    gc.disable()
    try:
        start = _cpu_seconds()
        result = fn()
        return result, _cpu_seconds() - start
    finally:
        gc.enable()


def bench_ingest_incremental(benchmark, harness, tmp_path):
    full = CorpusGenerator(
        seed=2015, noise=NoiseProfile()
    ).generate(*harness.scenarios())
    probe_docs = full.documents[
        SLICE:SLICE + FRESHNESS_BATCHES * FRESHNESS_BATCH_DOCS
    ]
    corpus = WebCorpus(documents=full.documents[:SLICE])
    cut = int(len(corpus.documents) * (1.0 - APPEND_FRACTION))
    head, tail = (
        corpus.documents[:cut], corpus.documents[cut:],
    )

    pipeline = IngestPipeline(
        kb=harness.kb,
        journal=CorpusJournal(tmp_path / "journal"),
        warm_start=True,
    )
    pipeline.ingest(head)  # bootstrap: untimed, like any first mine

    # The timed region is the product path: absorb the 10% append.
    report, incremental_cpu = benchmark.pedantic(
        lambda: _timed(lambda: pipeline.ingest(tail)),
        rounds=1,
        iterations=1,
    )
    assert report.documents == len(tail)

    # Reference: what a batch deployment pays for the same freshness.
    batch, full_cpu = _timed(
        lambda: SurveyorPipeline(
            kb=harness.kb, n_workers=8
        ).run(corpus),
        cold=True,
    )
    ratio = incremental_cpu / max(full_cpu, 1e-9)

    # Live-serving freshness: journal append -> refit -> publish ->
    # validated swap, measured end to end per batch.
    out = tmp_path / "opinions.json"
    pipeline.publish(report, out)
    service = OpinionService(
        report.table,
        source_path=out,
        provenance=report.provenance,
        registry=MetricsRegistry(),
        ingest_pipeline=pipeline,
    )
    freshness = []
    for start in range(0, len(probe_docs), FRESHNESS_BATCH_DOCS):
        summary = service.ingest(
            probe_docs[start:start + FRESHNESS_BATCH_DOCS]
        )
        freshness.append(summary["freshness_seconds"])
    freshness_p50 = statistics.median(freshness)

    perf_counts(
        documents=len(tail),
        statements=report.statements,
    )
    perf_values(
        ingest_cpu_ratio=round(ratio, 4),
        ingest_dirty_combinations=float(len(report.dirty)),
        ingest_freshness_p50_seconds=round(freshness_p50, 4),
    )
    emit("ingest_incremental", [
        "Streaming ingestion: 10% append vs full batch re-run",
        f"world: {len(corpus.documents)} documents, append "
        f"{len(tail)} ({APPEND_FRACTION:.0%})",
        f"dirty combinations: {len(report.dirty)} "
        f"(refit {report.refitted}, reused {report.reused})",
        f"incremental CPU: {incremental_cpu:.3f}s "
        f"(refit {report.refit_seconds:.3f}s)",
        f"full re-run CPU: {full_cpu:.3f}s "
        f"({len(batch.result.opinions)} opinions)",
        f"CPU ratio (incremental/full): {ratio:.3f}",
        f"freshness over {len(freshness)} live batches of "
        f"{FRESHNESS_BATCH_DOCS} documents: p50 "
        f"{freshness_p50 * 1000:.0f}ms, max "
        f"{max(freshness) * 1000:.0f}ms",
    ])

    # Parity guard: the incremental table answers like the batch one
    # (bit-parity itself is proven per scenario in tests/test_ingest).
    assert len(report.table) == len(batch.result.opinions)

    ceiling = float(
        os.environ.get(RATIO_CEILING_ENV, DEFAULT_RATIO_CEILING)
    )
    assert ratio <= ceiling, (
        f"incremental refit regressed: CPU ratio {ratio:.3f} > "
        f"ceiling {ceiling:.2f} (override {RATIO_CEILING_ENV})"
    )
    freshness_ceiling = float(
        os.environ.get(
            FRESHNESS_CEILING_ENV, DEFAULT_FRESHNESS_CEILING
        )
    )
    assert freshness_p50 < freshness_ceiling, (
        f"ingest->servable freshness regressed: p50 "
        f"{freshness_p50:.3f}s >= {freshness_ceiling:.2f}s "
        f"(override {FRESHNESS_CEILING_ENV})"
    )
