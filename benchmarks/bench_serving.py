"""Serving-path benchmarks: index vs. scan, cache, and HTTP load.

Two figures for the query-serving subsystem (docs/serving.md):

* ``bench_query_paths`` — the same query workload answered three ways:
  the one-shot :class:`QueryEngine` full-table scan (what ``repro ask``
  always did), the pre-built :class:`OpinionIndex`, and the warm
  :class:`OpinionService` LRU cache. The acceptance bar: the cached
  path must be at least 10x faster than the scan on the demo-scale
  world.
* ``bench_http_serving`` — a threaded load generator against a real
  in-process :class:`ReproServer` (keep-alive connections), reporting
  QPS and p50/p99 request latency into the bench trajectory.
* ``bench_observability_overhead`` — the same HTTP load against a
  bare service and a fully instrumented one (streaming histogram with
  exemplars, SLO tracker, trace spans, JSONL access log); the
  instrumented path must keep at least ``OVERHEAD_QPS_FLOOR`` of the
  bare QPS (override with ``REPRO_SERVE_OVERHEAD_FLOOR``).

Timings use min-over-rounds (equivalently best-of-rounds QPS), the
stable estimator for same-machine comparisons; the overhead pair is
interleaved so drift hits both arms equally.
"""

from __future__ import annotations

import gc
import http.client
import json
import os
import threading
import time

from _report import emit, emit_json, perf_counts, perf_values

from repro.core.query import QueryEngine
from repro.obs import MetricsRegistry, Tracer
from repro.serve import (
    AccessLog,
    OpinionIndex,
    OpinionService,
    build_server,
)

ROUNDS = 5
#: The serving acceptance bar: warm cache vs. full-table scan.
CACHE_SPEEDUP_FLOOR = 10.0
#: PR-7 acceptance bar: instrumented serving keeps >= 95% of bare QPS.
OVERHEAD_QPS_FLOOR = float(
    os.environ.get("REPRO_SERVE_OVERHEAD_FLOOR", "0.95")
)
OVERHEAD_ROUNDS = 5
CLIENT_THREADS = 4
REQUESTS_PER_THREAD = 150

#: Demo-world workload: conjunctive and negated queries over every
#: entity type the evaluation harness mines.
WORKLOAD = [
    "cute animals",
    "big cute animals",
    "not deadly friendly animals",
    "calm cheap cities",
    "big not hectic cities",
    "multicultural cities",
    "young cool celebrities",
    "not quiet pretty celebrities",
    "exciting jobs",
    "not dangerous solid jobs",
    "fast popular sports",
    "addictive not boring games",
]


def _quantile(sorted_values, q):
    """Nearest-rank quantile of an already-sorted list."""
    index = min(
        len(sorted_values) - 1,
        max(0, round(q * (len(sorted_values) - 1))),
    )
    return sorted_values[index]


def bench_query_paths(benchmark, interpreted):
    table = interpreted["Surveyor"]
    engine = QueryEngine(table)

    def run_scan():
        for query in WORKLOAD:
            engine.answer(query, top=10)

    def run_indexed(index):
        for query in WORKLOAD:
            index.answer(query, top=10)

    def run_cached(service):
        for query in WORKLOAD:
            service.ask(query, top=10)

    def measure():
        build_started = time.perf_counter()
        index = OpinionIndex(table)
        build_seconds = time.perf_counter() - build_started
        service = OpinionService(table)
        run_cached(service)  # warm the cache
        best = {"scan": float("inf"), "indexed": float("inf"),
                "cached": float("inf")}
        for _ in range(ROUNDS):
            for label, runner, arg in (
                ("scan", run_scan, None),
                ("indexed", run_indexed, index),
                ("cached", run_cached, service),
            ):
                started = time.perf_counter()
                runner(arg) if arg is not None else runner()
                best[label] = min(
                    best[label], time.perf_counter() - started
                )
        return best, build_seconds, service

    (best, build_seconds, service) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    perf_counts(queries=len(WORKLOAD) * ROUNDS * 3)
    index_speedup = best["scan"] / best["indexed"]
    cache_speedup = best["scan"] / best["cached"]
    perf_values(
        index_speedup=index_speedup, cache_speedup=cache_speedup
    )
    per_query_us = {
        label: seconds / len(WORKLOAD) * 1e6
        for label, seconds in best.items()
    }
    stats = service.cache.stats()
    lines = [
        f"Query paths over the demo world ({len(table)} opinions, "
        f"{len(WORKLOAD)} queries, min of {ROUNDS})",
        f"full-table scan: {per_query_us['scan']:9.1f} us/query",
        f"indexed:         {per_query_us['indexed']:9.1f} us/query "
        f"({index_speedup:.1f}x)",
        f"warm cache:      {per_query_us['cached']:9.1f} us/query "
        f"({cache_speedup:.1f}x)",
        f"index build:     {build_seconds * 1000:9.2f} ms "
        f"(amortised over every query until the next reload)",
        f"cache: {stats['hits']} hits / {stats['misses']} misses",
    ]
    emit("serving_paths", lines)
    emit_json(
        "serving_paths",
        {
            "opinions": len(table),
            "queries": len(WORKLOAD),
            "scan_seconds": best["scan"],
            "indexed_seconds": best["indexed"],
            "cached_seconds": best["cached"],
            "index_build_seconds": build_seconds,
            "index_speedup": index_speedup,
            "cache_speedup": cache_speedup,
            "speedup_floor": CACHE_SPEEDUP_FLOOR,
        },
    )
    assert cache_speedup >= CACHE_SPEEDUP_FLOOR, (
        f"cached path is only {cache_speedup:.1f}x faster than the "
        f"full-table scan (floor {CACHE_SPEEDUP_FLOOR}x)"
    )


def bench_http_serving(benchmark, interpreted):
    table = interpreted["Surveyor"]
    service = OpinionService(table)
    server = build_server(service)
    thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    thread.start()

    def worker(offset, latencies):
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port
        )
        try:
            for number in range(REQUESTS_PER_THREAD):
                query = WORKLOAD[(offset + number) % len(WORKLOAD)]
                started = time.perf_counter()
                connection.request(
                    "GET",
                    "/query?q=" + query.replace(" ", "+"),
                )
                response = connection.getresponse()
                body = response.read()
                latencies.append(time.perf_counter() - started)
                assert response.status == 200, (
                    response.status,
                    body,
                )
        finally:
            connection.close()

    def measure():
        per_thread = [[] for _ in range(CLIENT_THREADS)]
        threads = [
            threading.Thread(
                target=worker, args=(offset, per_thread[offset])
            )
            for offset in range(CLIENT_THREADS)
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - started
        latencies = sorted(
            latency
            for bucket in per_thread
            for latency in bucket
        )
        return wall, latencies

    try:
        wall, latencies = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
    finally:
        server.shutdown()
        server.server_close()
    total = CLIENT_THREADS * REQUESTS_PER_THREAD
    assert len(latencies) == total
    qps = total / wall
    p50 = _quantile(latencies, 0.50)
    p99 = _quantile(latencies, 0.99)
    perf_counts(requests=total)
    perf_values(qps=qps, p50_seconds=p50, p99_seconds=p99)
    stats = service.cache.stats()
    lines = [
        f"HTTP serving ({CLIENT_THREADS} client threads x "
        f"{REQUESTS_PER_THREAD} requests, keep-alive)",
        f"throughput: {qps:9.0f} requests/s",
        f"latency:    p50 {p50 * 1e6:7.0f} us   "
        f"p99 {p99 * 1e6:7.0f} us",
        f"cache: {stats['hits']} hits / {stats['misses']} misses",
    ]
    emit("serving_http", lines)
    emit_json(
        "serving_http",
        {
            "client_threads": CLIENT_THREADS,
            "requests": total,
            "wall_seconds": wall,
            "qps": qps,
            "p50_seconds": p50,
            "p99_seconds": p99,
            "cache_hits": stats["hits"],
            "cache_misses": stats["misses"],
        },
    )
    assert p99 < 1.0, f"p99 request latency {p99:.3f}s is pathological"


def _drive_load(port):
    """Run the keep-alive workload against ``port``; return wall s."""

    def worker(offset):
        connection = http.client.HTTPConnection("127.0.0.1", port)
        try:
            for number in range(REQUESTS_PER_THREAD):
                query = WORKLOAD[(offset + number) % len(WORKLOAD)]
                connection.request(
                    "GET",
                    "/query?q=" + query.replace(" ", "+"),
                )
                response = connection.getresponse()
                response.read()
                assert response.status == 200, response.status
        finally:
            connection.close()

    threads = [
        threading.Thread(target=worker, args=(offset,))
        for offset in range(CLIENT_THREADS)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - started


def bench_observability_overhead(
    benchmark, interpreted, tmp_path_factory
):
    """Instrumented serving must stay within a few percent of bare.

    Both arms serve the identical workload; the instrumented arm adds
    every PR-7 observability sink at once — streamhist latency
    recording with exemplars, the rolling latency window, the SLO
    tracker, full trace sampling, and a JSONL access log.
    """
    table = interpreted["Surveyor"]
    access_path = (
        tmp_path_factory.mktemp("overhead") / "access.jsonl"
    )
    access_log = AccessLog(access_path)
    bare = OpinionService(table)
    instrumented = OpinionService(
        table,
        registry=MetricsRegistry(),
        tracer=Tracer(enabled=True),
        access_log=access_log,
        trace_sample=1,
    )
    arms = {}
    for label, service in (
        ("bare", bare), ("instrumented", instrumented)
    ):
        server = build_server(service)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        arms[label] = (service, server, thread)

    def measure():
        best = {"bare": float("inf"), "instrumented": float("inf")}
        ratios = []
        for label, (_, server, _) in arms.items():
            _drive_load(server.port)  # warm caches and connections
        for _ in range(OVERHEAD_ROUNDS):
            # Interleave the arms so machine drift is shared, and
            # pin the cyclic GC: a gen-2 collection landing inside
            # one arm's window (it traverses the whole interpreted
            # world) would swamp the per-request delta under test.
            wall = {}
            for label, (_, server, _) in arms.items():
                gc.collect()
                gc.disable()
                try:
                    wall[label] = _drive_load(server.port)
                finally:
                    gc.enable()
                best[label] = min(best[label], wall[label])
            ratios.append(wall["bare"] / wall["instrumented"])
        return best, ratios

    try:
        best, ratios = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
    finally:
        for _, server, thread in arms.values():
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        access_log.close()

    total = CLIENT_THREADS * REQUESTS_PER_THREAD
    qps = {label: total / wall for label, wall in best.items()}
    # The gate uses the best *paired* round: the two arms of a pair
    # ran back-to-back, so scheduler/machine drift cancels — the
    # two-arm analogue of min-over-rounds. (Best-of-each-arm walls
    # may come from different rounds and overstate the gap on a
    # noisy box.)
    ratio = max(ratios)
    logged = sum(1 for _ in open(access_path, encoding="utf-8"))
    spans = len(instrumented.tracer.export_spans())
    stream = instrumented.registry.stream_snapshot(
        "repro_serve_request_seconds"
    )
    perf_counts(requests=total * 2 * OVERHEAD_ROUNDS)
    perf_values(
        bare_qps=qps["bare"],
        instrumented_qps=qps["instrumented"],
        qps_ratio=ratio,
    )
    lines = [
        f"Observability overhead ({CLIENT_THREADS} client threads x "
        f"{REQUESTS_PER_THREAD} requests, best of "
        f"{OVERHEAD_ROUNDS} interleaved rounds)",
        f"bare:         {qps['bare']:9.0f} requests/s",
        f"instrumented: {qps['instrumented']:9.0f} requests/s",
        f"best paired round: {ratio * 100:.1f}% of bare "
        f"(floor {OVERHEAD_QPS_FLOOR * 100:.0f}%)",
        f"sinks fed: {stream.count} histogram samples, "
        f"{spans} spans, {logged} access-log lines",
    ]
    emit("serving_overhead", lines)
    emit_json(
        "serving_overhead",
        {
            "requests_per_arm": total,
            "rounds": OVERHEAD_ROUNDS,
            "bare_seconds": best["bare"],
            "instrumented_seconds": best["instrumented"],
            "bare_qps": qps["bare"],
            "instrumented_qps": qps["instrumented"],
            "qps_ratio": ratio,
            "paired_ratios": ratios,
            "qps_floor": OVERHEAD_QPS_FLOOR,
            "histogram_samples": stream.count,
            "spans": spans,
            "access_log_lines": logged,
        },
    )
    # Every sink actually observed the load — a fast arm that silently
    # dropped its instrumentation would be a hollow win.
    expected = total * (OVERHEAD_ROUNDS + 1)
    assert stream.count >= expected, (stream.count, expected)
    assert logged >= expected, (logged, expected)
    assert ratio >= OVERHEAD_QPS_FLOOR, (
        f"instrumented serving reaches only {ratio:.1%} of bare QPS "
        f"in its best paired round (floor {OVERHEAD_QPS_FLOOR:.0%}, "
        f"rounds {[f'{r:.3f}' for r in ratios]})"
    )
