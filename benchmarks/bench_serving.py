"""Serving-path benchmarks: index vs. scan, cache, and HTTP load.

Two figures for the query-serving subsystem (docs/serving.md):

* ``bench_query_paths`` — the same query workload answered three ways:
  the one-shot :class:`QueryEngine` full-table scan (what ``repro ask``
  always did), the pre-built :class:`OpinionIndex`, and the warm
  :class:`OpinionService` LRU cache. The acceptance bar: the cached
  path must be at least 10x faster than the scan on the demo-scale
  world.
* ``bench_http_serving`` — a threaded load generator against a real
  in-process :class:`ReproServer` (keep-alive connections), reporting
  QPS and p50/p99 request latency into the bench trajectory.

Timings use min-over-rounds, the stable estimator for same-machine
comparisons.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

from _report import emit, emit_json, perf_counts, perf_values

from repro.core.query import QueryEngine
from repro.serve import OpinionIndex, OpinionService, build_server

ROUNDS = 5
#: The serving acceptance bar: warm cache vs. full-table scan.
CACHE_SPEEDUP_FLOOR = 10.0
CLIENT_THREADS = 4
REQUESTS_PER_THREAD = 150

#: Demo-world workload: conjunctive and negated queries over every
#: entity type the evaluation harness mines.
WORKLOAD = [
    "cute animals",
    "big cute animals",
    "not deadly friendly animals",
    "calm cheap cities",
    "big not hectic cities",
    "multicultural cities",
    "young cool celebrities",
    "not quiet pretty celebrities",
    "exciting jobs",
    "not dangerous solid jobs",
    "fast popular sports",
    "addictive not boring games",
]


def _quantile(sorted_values, q):
    """Nearest-rank quantile of an already-sorted list."""
    index = min(
        len(sorted_values) - 1,
        max(0, round(q * (len(sorted_values) - 1))),
    )
    return sorted_values[index]


def bench_query_paths(benchmark, interpreted):
    table = interpreted["Surveyor"]
    engine = QueryEngine(table)

    def run_scan():
        for query in WORKLOAD:
            engine.answer(query, top=10)

    def run_indexed(index):
        for query in WORKLOAD:
            index.answer(query, top=10)

    def run_cached(service):
        for query in WORKLOAD:
            service.ask(query, top=10)

    def measure():
        build_started = time.perf_counter()
        index = OpinionIndex(table)
        build_seconds = time.perf_counter() - build_started
        service = OpinionService(table)
        run_cached(service)  # warm the cache
        best = {"scan": float("inf"), "indexed": float("inf"),
                "cached": float("inf")}
        for _ in range(ROUNDS):
            for label, runner, arg in (
                ("scan", run_scan, None),
                ("indexed", run_indexed, index),
                ("cached", run_cached, service),
            ):
                started = time.perf_counter()
                runner(arg) if arg is not None else runner()
                best[label] = min(
                    best[label], time.perf_counter() - started
                )
        return best, build_seconds, service

    (best, build_seconds, service) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    perf_counts(queries=len(WORKLOAD) * ROUNDS * 3)
    index_speedup = best["scan"] / best["indexed"]
    cache_speedup = best["scan"] / best["cached"]
    perf_values(
        index_speedup=index_speedup, cache_speedup=cache_speedup
    )
    per_query_us = {
        label: seconds / len(WORKLOAD) * 1e6
        for label, seconds in best.items()
    }
    stats = service.cache.stats()
    lines = [
        f"Query paths over the demo world ({len(table)} opinions, "
        f"{len(WORKLOAD)} queries, min of {ROUNDS})",
        f"full-table scan: {per_query_us['scan']:9.1f} us/query",
        f"indexed:         {per_query_us['indexed']:9.1f} us/query "
        f"({index_speedup:.1f}x)",
        f"warm cache:      {per_query_us['cached']:9.1f} us/query "
        f"({cache_speedup:.1f}x)",
        f"index build:     {build_seconds * 1000:9.2f} ms "
        f"(amortised over every query until the next reload)",
        f"cache: {stats['hits']} hits / {stats['misses']} misses",
    ]
    emit("serving_paths", lines)
    emit_json(
        "serving_paths",
        {
            "opinions": len(table),
            "queries": len(WORKLOAD),
            "scan_seconds": best["scan"],
            "indexed_seconds": best["indexed"],
            "cached_seconds": best["cached"],
            "index_build_seconds": build_seconds,
            "index_speedup": index_speedup,
            "cache_speedup": cache_speedup,
            "speedup_floor": CACHE_SPEEDUP_FLOOR,
        },
    )
    assert cache_speedup >= CACHE_SPEEDUP_FLOOR, (
        f"cached path is only {cache_speedup:.1f}x faster than the "
        f"full-table scan (floor {CACHE_SPEEDUP_FLOOR}x)"
    )


def bench_http_serving(benchmark, interpreted):
    table = interpreted["Surveyor"]
    service = OpinionService(table)
    server = build_server(service)
    thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    thread.start()

    def worker(offset, latencies):
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port
        )
        try:
            for number in range(REQUESTS_PER_THREAD):
                query = WORKLOAD[(offset + number) % len(WORKLOAD)]
                started = time.perf_counter()
                connection.request(
                    "GET",
                    "/query?q=" + query.replace(" ", "+"),
                )
                response = connection.getresponse()
                body = response.read()
                latencies.append(time.perf_counter() - started)
                assert response.status == 200, (
                    response.status,
                    body,
                )
        finally:
            connection.close()

    def measure():
        per_thread = [[] for _ in range(CLIENT_THREADS)]
        threads = [
            threading.Thread(
                target=worker, args=(offset, per_thread[offset])
            )
            for offset in range(CLIENT_THREADS)
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - started
        latencies = sorted(
            latency
            for bucket in per_thread
            for latency in bucket
        )
        return wall, latencies

    try:
        wall, latencies = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
    finally:
        server.shutdown()
        server.server_close()
    total = CLIENT_THREADS * REQUESTS_PER_THREAD
    assert len(latencies) == total
    qps = total / wall
    p50 = _quantile(latencies, 0.50)
    p99 = _quantile(latencies, 0.99)
    perf_counts(requests=total)
    perf_values(qps=qps, p50_seconds=p50, p99_seconds=p99)
    stats = service.cache.stats()
    lines = [
        f"HTTP serving ({CLIENT_THREADS} client threads x "
        f"{REQUESTS_PER_THREAD} requests, keep-alive)",
        f"throughput: {qps:9.0f} requests/s",
        f"latency:    p50 {p50 * 1e6:7.0f} us   "
        f"p99 {p99 * 1e6:7.0f} us",
        f"cache: {stats['hits']} hits / {stats['misses']} misses",
    ]
    emit("serving_http", lines)
    emit_json(
        "serving_http",
        {
            "client_threads": CLIENT_THREADS,
            "requests": total,
            "wall_seconds": wall,
            "qps": qps,
            "p50_seconds": p50,
            "p99_seconds": p99,
            "cache_hits": stats["hits"],
            "cache_misses": stats["misses"],
        },
    )
    assert p99 < 1.0, f"p99 request latency {p99:.3f}s is pathological"
