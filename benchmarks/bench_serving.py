"""Serving-path benchmarks: index vs. scan, cache, and HTTP load.

Two figures for the query-serving subsystem (docs/serving.md):

* ``bench_query_paths`` — the same query workload answered three ways:
  the one-shot :class:`QueryEngine` full-table scan (what ``repro ask``
  always did), the pre-built :class:`OpinionIndex`, and the warm
  :class:`OpinionService` LRU cache. The acceptance bar: the cached
  path must be at least 10x faster than the scan on the demo-scale
  world.
* ``bench_http_serving`` — a raw-socket keep-alive load generator
  against the in-process :class:`AsyncReproServer` (the ``repro
  serve`` default core). Connections are established before the timed
  window (a barrier separates the phases) and their setup cost is
  reported separately, so the figure measures the server, not TCP
  handshakes. Hard gates: QPS at least ``HTTP_SPEEDUP_FLOOR`` times
  the recorded thread-per-connection baseline, p99 at most
  ``HTTP_P99_CEILING_SECONDS``. A thread-per-connection
  :class:`ReproServer` reference runs under the same generator for
  the live speedup figure.
* ``bench_observability_overhead`` — the same HTTP load against a
  bare service and a fully instrumented one (streaming histogram with
  exemplars, SLO tracker, trace spans, JSONL access log); the
  instrumented path must keep at least ``OVERHEAD_QPS_FLOOR`` of the
  bare QPS (override with ``REPRO_SERVE_OVERHEAD_FLOOR``).

Timings use min-over-rounds (equivalently best-of-rounds QPS), the
stable estimator for same-machine comparisons; the overhead pair is
interleaved so drift hits both arms equally.
"""

from __future__ import annotations

import asyncio
import gc
import http.client
import json
import os
import socket
import threading
import time

from _report import emit, emit_json, perf_counts, perf_values

from repro.core.query import QueryEngine
from repro.obs import MetricsRegistry, Tracer
from repro.serve import (
    AccessLog,
    AsyncReproServer,
    OpinionIndex,
    OpinionService,
    build_server,
)

ROUNDS = 5
#: The serving acceptance bar: warm cache vs. full-table scan.
CACHE_SPEEDUP_FLOOR = 10.0
#: PR-7 acceptance bar: instrumented serving keeps >= 95% of bare QPS.
OVERHEAD_QPS_FLOOR = float(
    os.environ.get("REPRO_SERVE_OVERHEAD_FLOOR", "0.95")
)
OVERHEAD_ROUNDS = 5
CLIENT_THREADS = 4
REQUESTS_PER_THREAD = 150

#: QPS the thread-per-connection core recorded on this workload before
#: the async rewrite (benchmarks/baseline.json lineage, PR-10 issue).
HTTP_BASELINE_QPS = 1165.3
#: PR-10 acceptance bar: the async core must clear 8x that baseline...
HTTP_SPEEDUP_FLOOR = 8.0
HTTP_QPS_FLOOR = HTTP_BASELINE_QPS * HTTP_SPEEDUP_FLOOR
#: ...while holding tail latency under 2 ms.
HTTP_P99_CEILING_SECONDS = 0.002
#: Sustained window for the async figure (per client thread); the
#: warm-up round and the thread-per-connection reference are shorter.
HTTP_REQUESTS_PER_THREAD = 3000
HTTP_WARMUP_PER_THREAD = 200

#: Demo-world workload: conjunctive and negated queries over every
#: entity type the evaluation harness mines.
WORKLOAD = [
    "cute animals",
    "big cute animals",
    "not deadly friendly animals",
    "calm cheap cities",
    "big not hectic cities",
    "multicultural cities",
    "young cool celebrities",
    "not quiet pretty celebrities",
    "exciting jobs",
    "not dangerous solid jobs",
    "fast popular sports",
    "addictive not boring games",
]


def _quantile(sorted_values, q):
    """Nearest-rank quantile of an already-sorted list."""
    index = min(
        len(sorted_values) - 1,
        max(0, round(q * (len(sorted_values) - 1))),
    )
    return sorted_values[index]


def bench_query_paths(benchmark, interpreted):
    table = interpreted["Surveyor"]
    engine = QueryEngine(table)

    def run_scan():
        for query in WORKLOAD:
            engine.answer(query, top=10)

    def run_indexed(index):
        for query in WORKLOAD:
            index.answer(query, top=10)

    def run_cached(service):
        for query in WORKLOAD:
            service.ask(query, top=10)

    def measure():
        build_started = time.perf_counter()
        index = OpinionIndex(table)
        build_seconds = time.perf_counter() - build_started
        service = OpinionService(table)
        run_cached(service)  # warm the cache
        best = {"scan": float("inf"), "indexed": float("inf"),
                "cached": float("inf")}
        for _ in range(ROUNDS):
            for label, runner, arg in (
                ("scan", run_scan, None),
                ("indexed", run_indexed, index),
                ("cached", run_cached, service),
            ):
                started = time.perf_counter()
                runner(arg) if arg is not None else runner()
                best[label] = min(
                    best[label], time.perf_counter() - started
                )
        return best, build_seconds, service

    (best, build_seconds, service) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    perf_counts(queries=len(WORKLOAD) * ROUNDS * 3)
    index_speedup = best["scan"] / best["indexed"]
    cache_speedup = best["scan"] / best["cached"]
    perf_values(
        index_speedup=index_speedup, cache_speedup=cache_speedup
    )
    per_query_us = {
        label: seconds / len(WORKLOAD) * 1e6
        for label, seconds in best.items()
    }
    stats = service.cache.stats()
    lines = [
        f"Query paths over the demo world ({len(table)} opinions, "
        f"{len(WORKLOAD)} queries, min of {ROUNDS})",
        f"full-table scan: {per_query_us['scan']:9.1f} us/query",
        f"indexed:         {per_query_us['indexed']:9.1f} us/query "
        f"({index_speedup:.1f}x)",
        f"warm cache:      {per_query_us['cached']:9.1f} us/query "
        f"({cache_speedup:.1f}x)",
        f"index build:     {build_seconds * 1000:9.2f} ms "
        f"(amortised over every query until the next reload)",
        f"cache: {stats['hits']} hits / {stats['misses']} misses",
    ]
    emit("serving_paths", lines)
    emit_json(
        "serving_paths",
        {
            "opinions": len(table),
            "queries": len(WORKLOAD),
            "scan_seconds": best["scan"],
            "indexed_seconds": best["indexed"],
            "cached_seconds": best["cached"],
            "index_build_seconds": build_seconds,
            "index_speedup": index_speedup,
            "cache_speedup": cache_speedup,
            "speedup_floor": CACHE_SPEEDUP_FLOOR,
        },
    )
    assert cache_speedup >= CACHE_SPEEDUP_FLOOR, (
        f"cached path is only {cache_speedup:.1f}x faster than the "
        f"full-table scan (floor {CACHE_SPEEDUP_FLOOR}x)"
    )


def _encode_request(query):
    return (
        "GET /query?q=" + query.replace(" ", "+")
        + " HTTP/1.1\r\nHost: bench\r\n\r\n"
    ).encode("ascii")


class _KeepAliveClient:
    """Minimal raw-socket HTTP/1.1 keep-alive client.

    ``http.client`` re-parses headers into objects on every response;
    at async-core throughput that client-side work dominates the
    figure. This parser does the minimum to frame responses: status
    code plus Content-Length.
    """

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port))
        self.sock.setsockopt(
            socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
        )
        self.buffer = b""

    def request(self, data):
        self.sock.sendall(data)
        while b"\r\n\r\n" not in self.buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed mid-response")
            self.buffer += chunk
        head, _, rest = self.buffer.partition(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        lower = head.lower()
        marker = lower.index(b"content-length:")
        end = lower.find(b"\r\n", marker)
        length = int(
            lower[marker + 15 : end if end >= 0 else len(lower)]
        )
        while len(rest) < length:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed mid-body")
            rest += chunk
        body = rest[:length]
        self.buffer = rest[length:]
        return status, body

    def close(self):
        self.sock.close()


def _keepalive_load(port, requests_per_thread):
    """Drive the workload over persistent connections.

    Every client connects *before* the timed window — a barrier
    separates connection setup from the request phase — so the
    reported wall measures the server, not TCP handshakes. Returns
    ``(setup_seconds, wall_seconds, sorted_latencies)`` where
    ``setup_seconds`` is the slowest client's connect cost.
    """
    barrier = threading.Barrier(CLIENT_THREADS + 1)
    setup = [0.0] * CLIENT_THREADS
    buckets = [[] for _ in range(CLIENT_THREADS)]
    failures = []
    requests = [_encode_request(query) for query in WORKLOAD]

    def worker(offset):
        connect_started = time.perf_counter()
        client = _KeepAliveClient(port)
        setup[offset] = time.perf_counter() - connect_started
        try:
            barrier.wait()
            latencies = buckets[offset]
            for number in range(requests_per_thread):
                data = requests[(offset + number) % len(requests)]
                started = time.perf_counter()
                status, body = client.request(data)
                latencies.append(time.perf_counter() - started)
                if status != 200:
                    failures.append((status, body[:200]))
                    return
        finally:
            client.close()

    workers = [
        threading.Thread(target=worker, args=(offset,))
        for offset in range(CLIENT_THREADS)
    ]
    for t in workers:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in workers:
        t.join()
    wall = time.perf_counter() - started
    assert not failures, failures
    latencies = sorted(
        latency for bucket in buckets for latency in bucket
    )
    assert len(latencies) == CLIENT_THREADS * requests_per_thread
    return max(setup), wall, latencies


class _AsyncHarness:
    """:class:`AsyncReproServer` on a dedicated event-loop thread."""

    def __init__(self, service):
        self.server = AsyncReproServer(service)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._stop = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("async server failed to start")
        self.port = self.server.port

    def _run(self):
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self._main())
        finally:
            self.loop.close()

    async def _main(self):
        self._stop = asyncio.Event()
        await self.server.start("127.0.0.1", 0)
        self._ready.set()
        await self._stop.wait()
        self.server.close_listener()
        self.server.close_connections()
        await self.server.wait_closed()

    def shutdown(self):
        self.loop.call_soon_threadsafe(self._stop.set)
        self.thread.join(timeout=10)


def bench_http_serving(benchmark, interpreted):
    table = interpreted["Surveyor"]
    service = OpinionService(table)
    harness = _AsyncHarness(service)

    def measure():
        # Warm the query cache and every code path, then pin the
        # cyclic GC for the measured window (a gen-2 collection
        # traverses the whole interpreted world mid-run otherwise).
        _keepalive_load(harness.port, HTTP_WARMUP_PER_THREAD)
        gc.collect()
        gc.disable()
        try:
            return _keepalive_load(
                harness.port, HTTP_REQUESTS_PER_THREAD
            )
        finally:
            gc.enable()

    try:
        setup, wall, latencies = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
    finally:
        harness.shutdown()

    # Thread-per-connection reference under the *same* generator: the
    # live counterpart of the recorded HTTP_BASELINE_QPS figure.
    reference = OpinionService(table)
    server = build_server(reference)
    thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    thread.start()
    try:
        _keepalive_load(server.port, 50)
        _, threaded_wall, _ = _keepalive_load(
            server.port, REQUESTS_PER_THREAD
        )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    total = CLIENT_THREADS * HTTP_REQUESTS_PER_THREAD
    qps = total / wall
    threaded_qps = CLIENT_THREADS * REQUESTS_PER_THREAD / threaded_wall
    p50 = _quantile(latencies, 0.50)
    p99 = _quantile(latencies, 0.99)
    p999 = _quantile(latencies, 0.999)
    perf_counts(requests=total)
    perf_values(
        qps=qps,
        p50_seconds=p50,
        p99_seconds=p99,
        threaded_qps=threaded_qps,
    )
    stats = service.cache.stats()
    lines = [
        f"HTTP serving: async core ({CLIENT_THREADS} raw-socket "
        f"keep-alive clients x {HTTP_REQUESTS_PER_THREAD} requests)",
        f"throughput: {qps:9.0f} requests/s "
        f"(floor {HTTP_QPS_FLOOR:.0f} = "
        f"{HTTP_SPEEDUP_FLOOR:.0f}x threaded baseline "
        f"{HTTP_BASELINE_QPS:.0f})",
        f"latency:    p50 {p50 * 1e6:7.0f} us   "
        f"p99 {p99 * 1e6:7.0f} us   p99.9 {p999 * 1e6:7.0f} us",
        f"connection setup (slowest client, untimed window): "
        f"{setup * 1e6:.0f} us",
        f"threaded reference, same generator: "
        f"{threaded_qps:9.0f} requests/s "
        f"(async is {qps / threaded_qps:.1f}x faster)",
        f"cache: {stats['hits']} hits / {stats['misses']} misses",
    ]
    emit("serving_http", lines)
    emit_json(
        "serving_http",
        {
            "client_threads": CLIENT_THREADS,
            "requests": total,
            "wall_seconds": wall,
            "connection_setup_seconds": setup,
            "qps": qps,
            "p50_seconds": p50,
            "p99_seconds": p99,
            "p999_seconds": p999,
            "threaded_reference_qps": threaded_qps,
            "speedup_vs_threaded": qps / threaded_qps,
            "baseline_qps": HTTP_BASELINE_QPS,
            "qps_floor": HTTP_QPS_FLOOR,
            "p99_ceiling_seconds": HTTP_P99_CEILING_SECONDS,
            "cache_hits": stats["hits"],
            "cache_misses": stats["misses"],
        },
    )
    assert qps >= HTTP_QPS_FLOOR, (
        f"async serving reaches only {qps:.0f} requests/s "
        f"(floor {HTTP_QPS_FLOOR:.0f} = {HTTP_SPEEDUP_FLOOR:.0f}x "
        f"the {HTTP_BASELINE_QPS:.0f} threaded baseline)"
    )
    assert p99 <= HTTP_P99_CEILING_SECONDS, (
        f"p99 request latency {p99 * 1e3:.2f} ms exceeds the "
        f"{HTTP_P99_CEILING_SECONDS * 1e3:.0f} ms ceiling"
    )


def _drive_load(port):
    """Run the keep-alive workload against ``port``; return wall s."""

    def worker(offset):
        connection = http.client.HTTPConnection("127.0.0.1", port)
        try:
            for number in range(REQUESTS_PER_THREAD):
                query = WORKLOAD[(offset + number) % len(WORKLOAD)]
                connection.request(
                    "GET",
                    "/query?q=" + query.replace(" ", "+"),
                )
                response = connection.getresponse()
                response.read()
                assert response.status == 200, response.status
        finally:
            connection.close()

    threads = [
        threading.Thread(target=worker, args=(offset,))
        for offset in range(CLIENT_THREADS)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - started


def bench_observability_overhead(
    benchmark, interpreted, tmp_path_factory
):
    """Instrumented serving must stay within a few percent of bare.

    Both arms serve the identical workload; the instrumented arm adds
    every PR-7 observability sink at once — streamhist latency
    recording with exemplars, the rolling latency window, the SLO
    tracker, full trace sampling, and a JSONL access log.
    """
    table = interpreted["Surveyor"]
    access_path = (
        tmp_path_factory.mktemp("overhead") / "access.jsonl"
    )
    access_log = AccessLog(access_path)
    bare = OpinionService(table)
    instrumented = OpinionService(
        table,
        registry=MetricsRegistry(),
        tracer=Tracer(enabled=True),
        access_log=access_log,
        trace_sample=1,
    )
    arms = {}
    for label, service in (
        ("bare", bare), ("instrumented", instrumented)
    ):
        server = build_server(service)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        arms[label] = (service, server, thread)

    def measure():
        best = {"bare": float("inf"), "instrumented": float("inf")}
        ratios = []
        for label, (_, server, _) in arms.items():
            _drive_load(server.port)  # warm caches and connections
        for _ in range(OVERHEAD_ROUNDS):
            # Interleave the arms so machine drift is shared, and
            # pin the cyclic GC: a gen-2 collection landing inside
            # one arm's window (it traverses the whole interpreted
            # world) would swamp the per-request delta under test.
            wall = {}
            for label, (_, server, _) in arms.items():
                gc.collect()
                gc.disable()
                try:
                    wall[label] = _drive_load(server.port)
                finally:
                    gc.enable()
                best[label] = min(best[label], wall[label])
            ratios.append(wall["bare"] / wall["instrumented"])
        return best, ratios

    try:
        best, ratios = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
    finally:
        for _, server, thread in arms.values():
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        access_log.close()

    total = CLIENT_THREADS * REQUESTS_PER_THREAD
    qps = {label: total / wall for label, wall in best.items()}
    # The gate uses the best *paired* round: the two arms of a pair
    # ran back-to-back, so scheduler/machine drift cancels — the
    # two-arm analogue of min-over-rounds. (Best-of-each-arm walls
    # may come from different rounds and overstate the gap on a
    # noisy box.)
    ratio = max(ratios)
    logged = sum(1 for _ in open(access_path, encoding="utf-8"))
    spans = len(instrumented.tracer.export_spans())
    stream = instrumented.registry.stream_snapshot(
        "repro_serve_request_seconds"
    )
    perf_counts(requests=total * 2 * OVERHEAD_ROUNDS)
    perf_values(
        bare_qps=qps["bare"],
        instrumented_qps=qps["instrumented"],
        qps_ratio=ratio,
    )
    lines = [
        f"Observability overhead ({CLIENT_THREADS} client threads x "
        f"{REQUESTS_PER_THREAD} requests, best of "
        f"{OVERHEAD_ROUNDS} interleaved rounds)",
        f"bare:         {qps['bare']:9.0f} requests/s",
        f"instrumented: {qps['instrumented']:9.0f} requests/s",
        f"best paired round: {ratio * 100:.1f}% of bare "
        f"(floor {OVERHEAD_QPS_FLOOR * 100:.0f}%)",
        f"sinks fed: {stream.count} histogram samples, "
        f"{spans} spans, {logged} access-log lines",
    ]
    emit("serving_overhead", lines)
    emit_json(
        "serving_overhead",
        {
            "requests_per_arm": total,
            "rounds": OVERHEAD_ROUNDS,
            "bare_seconds": best["bare"],
            "instrumented_seconds": best["instrumented"],
            "bare_qps": qps["bare"],
            "instrumented_qps": qps["instrumented"],
            "qps_ratio": ratio,
            "paired_ratios": ratios,
            "qps_floor": OVERHEAD_QPS_FLOOR,
            "histogram_samples": stream.count,
            "spans": spans,
            "access_log_lines": logged,
        },
    )
    # Every sink actually observed the load — a fast arm that silently
    # dropped its instrumentation would be a hollow win.
    expected = total * (OVERHEAD_ROUNDS + 1)
    assert stream.count >= expected, (stream.count, expected)
    assert logged >= expected, (logged, expected)
    assert ratio >= OVERHEAD_QPS_FLOOR, (
        f"instrumented serving reaches only {ratio:.1%} of bare QPS "
        f"in its best paired round (floor {OVERHEAD_QPS_FLOOR:.0%}, "
        f"rounds {[f'{r:.3f}' for r in ratios]})"
    )
