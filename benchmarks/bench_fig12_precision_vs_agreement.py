"""Figure 12 — precision and coverage vs agreement threshold.

Paper shapes: Surveyor's precision rises with agreement (0.77 over all
cases to 0.87 at near-unanimity) while majority vote does not benefit;
Surveyor's coverage stays flat near 1.0; the effect is inconclusive for
WebChild.
"""

from __future__ import annotations

from _report import emit, perf_counts

from repro.evaluation import series_for


def bench_fig12_series(benchmark, interpreted, survey):
    def compute():
        return [
            series_for(name, table, survey)
            for name, table in interpreted.items()
        ]

    series = benchmark(compute)
    perf_counts(methods=len(series))
    lines = ["Figure 12 — precision / coverage vs agreement threshold"]
    for entry in series:
        thresholds = " ".join(f"{t:5d}" for t in entry.thresholds())
        precisions = " ".join(f"{p:5.2f}" for p in entry.precisions())
        coverages = " ".join(f"{c:5.2f}" for c in entry.coverages())
        lines.append(f"{entry.name}")
        lines.append(f"  threshold {thresholds}")
        lines.append(f"  precision {precisions}")
        lines.append(f"  coverage  {coverages}")
    emit("fig12_precision_vs_agreement", lines)

    by_name = {entry.name: entry for entry in series}
    surveyor = by_name["Surveyor"].precisions()
    majority = by_name["Majority Vote"].precisions()
    # Surveyor gains with agreement; the gain beats majority vote's.
    assert surveyor[-1] > surveyor[0]
    assert surveyor[-1] - surveyor[0] > majority[-1] - majority[0] - 0.02
    # Surveyor stays ahead at every threshold.
    for s, m in zip(surveyor, majority):
        assert s > m
    # Coverage of Surveyor stays (near) total.
    assert min(by_name["Surveyor"].coverages()) > 0.95
