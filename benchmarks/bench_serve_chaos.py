"""Chaos benchmark: goodput under injected serve-side faults.

``bench_serve_chaos`` drives the same keep-alive load shape as
``bench_http_serving`` (4 client threads x 150 requests) against an
:class:`OpinionService` with a :class:`ServeFaultInjector` active and a
background reloader flipping the artefact under it:

* every 12th cache-missing query sleeps past the request deadline
  (clients see a 503 ``deadline_exceeded`` — shed, not broken),
* every 2nd hot reload delivers a truncated artefact (the validator
  quarantines it and the service keeps answering from the last good
  snapshot, stamped ``degraded_mode``),
* every 50th response is cut mid-flight (clients reconnect).

Classification: 200 is good (degraded counts — it is a correct answer
from the last good snapshot), 429/503 is shed (the server protected
itself), anything else — including mid-flight disconnects — is bad.
The acceptance bar is goodput >= 80% with all faults firing, and the
service must recover to ``healthy`` after one rollback at most.

The run also audits the observability trail: every fault-hit response
the clients saw (by ``X-Request-Id``) must appear in the JSONL access
log with the same status and error code — chaos is exactly when the
log has to be trustworthy.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

from _report import emit, emit_json, perf_counts, perf_values

from repro.serve import (
    AccessLog,
    OpinionService,
    ServeFaultInjector,
    build_server,
    read_access_log,
)
from repro.serve.server import ServeError
from repro.storage import save

CLIENT_THREADS = 4
REQUESTS_PER_THREAD = 150
GOODPUT_FLOOR = 0.80
REQUEST_DEADLINE = 0.25
RELOAD_INTERVAL = 0.2

WORKLOAD = [
    "cute animals",
    "big cute animals",
    "not deadly friendly animals",
    "calm cheap cities",
    "big not hectic cities",
    "multicultural cities",
    "young cool celebrities",
    "not quiet pretty celebrities",
    "exciting jobs",
    "not dangerous solid jobs",
    "fast popular sports",
    "addictive not boring games",
]


def _quantile(sorted_values, q):
    """Nearest-rank quantile of an already-sorted list."""
    index = min(
        len(sorted_values) - 1,
        max(0, round(q * (len(sorted_values) - 1))),
    )
    return sorted_values[index]


def bench_serve_chaos(benchmark, interpreted, tmp_path_factory):
    table = interpreted["Surveyor"]
    artefact = save(
        table, tmp_path_factory.mktemp("chaos") / "opinions.json"
    )
    injector = ServeFaultInjector(
        seed=2015,
        slow_every_nth=12,
        slow_seconds=REQUEST_DEADLINE + 0.1,
        corrupt_every_nth=2,
        corrupt_mode="truncate",
        disconnect_every_nth=50,
    )
    access_path = (
        tmp_path_factory.mktemp("chaos-log") / "access.jsonl"
    )
    access_log = AccessLog(access_path)
    service = OpinionService(
        table,
        source_path=artefact,
        request_deadline=REQUEST_DEADLINE,
        fault_injector=injector,
        access_log=access_log,
    )
    server = build_server(service)
    server_thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    server_thread.start()

    stop_reloads = threading.Event()
    reload_outcomes = {"ok": 0, "rejected": 0}

    def reloader():
        # Keep swapping (and sometimes corrupting) the artefact under
        # live traffic; a rejected reload leaves the service degraded
        # until the next good one lands.
        while not stop_reloads.wait(RELOAD_INTERVAL):
            try:
                service.reload()
                reload_outcomes["ok"] += 1
            except ServeError:
                reload_outcomes["rejected"] += 1

    def worker(offset, tallies, latencies, faulted):
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port
        )
        try:
            for number in range(REQUESTS_PER_THREAD):
                query = WORKLOAD[(offset + number) % len(WORKLOAD)]
                started = time.perf_counter()
                try:
                    connection.request(
                        "GET",
                        "/query?q=" + query.replace(" ", "+"),
                    )
                    response = connection.getresponse()
                    body = response.read()
                    status = response.status
                except (
                    http.client.HTTPException,
                    ConnectionError,
                    OSError,
                ):
                    # Mid-flight disconnect: reconnect and move on.
                    tallies["bad"] += 1
                    connection.close()
                    connection = http.client.HTTPConnection(
                        "127.0.0.1", server.port
                    )
                    continue
                latencies.append(time.perf_counter() - started)
                if status == 200:
                    tallies["ok"] += 1
                elif status in (429, 503):
                    tallies["shed"] += 1
                else:
                    tallies["bad"] += 1
                if status != 200:
                    # Remember what the client saw so the access-log
                    # audit can cross-check it afterwards.
                    envelope = json.loads(body)
                    faulted.append(
                        (
                            response.headers["X-Request-Id"],
                            status,
                            envelope["code"],
                        )
                    )
        finally:
            connection.close()

    def measure():
        per_thread = [
            ({"ok": 0, "shed": 0, "bad": 0}, [], [])
            for _ in range(CLIENT_THREADS)
        ]
        reload_thread = threading.Thread(target=reloader)
        reload_thread.start()
        threads = [
            threading.Thread(
                target=worker,
                args=(offset,) + per_thread[offset],
            )
            for offset in range(CLIENT_THREADS)
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - started
        stop_reloads.set()
        reload_thread.join()
        tallies = {"ok": 0, "shed": 0, "bad": 0}
        for bucket, _, _ in per_thread:
            for key in tallies:
                tallies[key] += bucket[key]
        latencies = sorted(
            latency
            for _, bucket, _ in per_thread
            for latency in bucket
        )
        faulted = [
            entry
            for _, _, bucket in per_thread
            for entry in bucket
        ]
        return wall, tallies, latencies, faulted

    try:
        wall, tallies, latencies, faulted = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
        # Recovery: one rollback at most clears any lingering
        # degraded state left by the final (possibly corrupt) reload.
        if service.degraded:
            service.rollback()
        recovered = service.health_state()
    finally:
        server.shutdown()
        server.server_close()

    # Observability audit: every fault the clients saw must have an
    # access-log line with the same request id, status, and code.
    # Handler threads write their log line after flushing the
    # response to the client, so give stragglers a moment to land.
    wanted = {entry[0] for entry in faulted}
    logged = {}
    for _ in range(100):
        access_log.flush()
        logged = {
            record["request_id"]: record
            for record in read_access_log(access_path)
        }
        if wanted <= logged.keys():
            break
        time.sleep(0.02)
    access_log.close()
    missing = [
        entry
        for entry in faulted
        if entry[0] not in logged
        or logged[entry[0]]["status"] != entry[1]
        or logged[entry[0]]["code"] != entry[2]
    ]
    assert faulted and not missing, (
        f"{len(missing)} of {len(faulted)} fault-hit requests "
        f"missing or mismatched in the access log: {missing[:5]}"
    )

    total = CLIENT_THREADS * REQUESTS_PER_THREAD
    assert sum(tallies.values()) == total
    goodput = tallies["ok"] / total
    qps = total / wall
    p50 = _quantile(latencies, 0.50) if latencies else 0.0
    p99 = _quantile(latencies, 0.99) if latencies else 0.0
    fired = injector.fired_counts()
    perf_counts(requests=total)
    perf_values(
        goodput=goodput, qps=qps, p50_seconds=p50, p99_seconds=p99
    )
    lines = [
        f"Chaos serving ({CLIENT_THREADS} client threads x "
        f"{REQUESTS_PER_THREAD} requests, faults active)",
        f"goodput:    {goodput * 100:6.1f} % "
        f"({tallies['ok']} ok / {tallies['shed']} shed / "
        f"{tallies['bad']} bad)",
        f"throughput: {qps:9.0f} requests/s",
        f"latency:    p50 {p50 * 1e6:7.0f} us   "
        f"p99 {p99 * 1e6:7.0f} us",
        f"faults:     {fired}",
        f"reloads:    {reload_outcomes['ok']} swapped / "
        f"{reload_outcomes['rejected']} rejected",
        f"audit:      {len(faulted)} fault responses matched in "
        f"the access log ({len(logged)} lines)",
        f"health after rollback: {recovered}",
    ]
    emit("serve_chaos", lines)
    emit_json(
        "serve_chaos",
        {
            "client_threads": CLIENT_THREADS,
            "requests": total,
            "wall_seconds": wall,
            "goodput": goodput,
            "ok": tallies["ok"],
            "shed": tallies["shed"],
            "bad": tallies["bad"],
            "qps": qps,
            "p50_seconds": p50,
            "p99_seconds": p99,
            "faults_fired": fired,
            "reloads_ok": reload_outcomes["ok"],
            "reloads_rejected": reload_outcomes["rejected"],
            "goodput_floor": GOODPUT_FLOOR,
            "faults_audited": len(faulted),
            "access_log_lines": len(logged),
        },
    )
    assert recovered == "healthy", (
        f"service stuck {recovered} after rollback"
    )
    assert fired.get("corrupt", 0) > 0 and fired.get("slow", 0) > 0, (
        f"chaos run exercised no faults: {fired}"
    )
    assert goodput >= GOODPUT_FLOOR, (
        f"goodput {goodput:.1%} under injected faults is below the "
        f"{GOODPUT_FLOOR:.0%} floor ({tallies})"
    )
