"""Overhead of the observability layer on the hot pipeline path.

The acceptance bar for the tracing subsystem: with telemetry *off*
(the default — no tracer, no registry), the instrumented pipeline must
run within 5% of itself, i.e. the guards (`if tracer is not None`,
null context managers) must be invisible. The benchmark also reports
the cost of running fully instrumented, which is allowed to be higher
— that is the price of a trace, paid only when asked for.

Timings use the min over several runs (the stable estimator for
same-machine comparisons); the corpus is mid-size so per-document
guard overhead would show up if it existed.
"""

from __future__ import annotations

import time

from _report import emit, emit_json

from repro.corpus.generator import CorpusGenerator
from repro.evaluation.harness import EvaluationHarness
from repro.obs import MetricsRegistry, Tracer
from repro.pipeline import SurveyorPipeline

#: Telemetry-off runs must stay within this factor of each other.
OVERHEAD_BUDGET = 1.05
ROUNDS = 5


def _fixture():
    harness = EvaluationHarness(seed=2015)
    scenarios = harness.scenarios()[:6]
    corpus = CorpusGenerator(seed=2015).generate(*scenarios)
    return harness.kb, corpus


def _best_of(kb, corpus, rounds=ROUNDS, **pipeline_kwargs):
    timings = []
    for _ in range(rounds):
        pipeline = SurveyorPipeline(
            kb=kb, occurrence_threshold=50, **pipeline_kwargs
        )
        started = time.perf_counter()
        pipeline.run(corpus)
        timings.append(time.perf_counter() - started)
    return min(timings)


def bench_tracing_disabled_overhead(benchmark):
    kb, corpus = _fixture()

    def measure():
        baseline = _best_of(kb, corpus)
        disabled = _best_of(
            kb, corpus, tracer=Tracer(enabled=False)
        )
        traced = _best_of(
            kb,
            corpus,
            tracer=Tracer(enabled=True),
            registry=MetricsRegistry(),
        )
        return baseline, disabled, traced

    baseline, disabled, traced = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    ratio_disabled = disabled / baseline
    ratio_traced = traced / baseline
    lines = [
        "Observability overhead on the full pipeline "
        f"({len(corpus)} documents, min of {ROUNDS})",
        f"no telemetry:    {baseline * 1000:8.1f} ms",
        f"disabled tracer: {disabled * 1000:8.1f} ms "
        f"({ratio_disabled:.3f}x)",
        f"full tracing:    {traced * 1000:8.1f} ms "
        f"({ratio_traced:.3f}x)",
    ]
    emit("obs_overhead", lines)
    emit_json(
        "obs_overhead",
        {
            "documents": len(corpus),
            "baseline_seconds": baseline,
            "disabled_seconds": disabled,
            "traced_seconds": traced,
            "disabled_ratio": ratio_disabled,
            "traced_ratio": ratio_traced,
            "budget": OVERHEAD_BUDGET,
        },
    )
    assert ratio_disabled < OVERHEAD_BUDGET, (
        f"disabled telemetry costs {ratio_disabled:.3f}x "
        f"(budget {OVERHEAD_BUDGET}x)"
    )
