"""Overhead of the observability layer on the hot pipeline path.

The acceptance bar for the tracing subsystem: with telemetry *off*
(the default — no tracer, no registry), the instrumented pipeline must
run within 5% of itself, i.e. the guards (`if tracer is not None`,
null context managers) must be invisible. The benchmark also reports
the cost of running fully instrumented, which is allowed to be higher
— that is the price of a trace, paid only when asked for.

The budget covers **memory too**: the disabled path must not allocate
meaningfully more than the uninstrumented one. Wall timings use the
min over several runs (the stable estimator for same-machine
comparisons) with tracemalloc off; the Python-heap peaks come from
separate single runs under tracemalloc, so allocation tracing never
distorts the timing figures.
"""

from __future__ import annotations

import time
import tracemalloc

from _report import emit, emit_json, perf_counts

from repro.corpus.generator import CorpusGenerator
from repro.evaluation.harness import EvaluationHarness
from repro.obs import MemoryProbe, MetricsRegistry, Tracer, rss_peak_bytes
from repro.pipeline import SurveyorPipeline

#: Telemetry-off runs must stay within this factor of each other.
OVERHEAD_BUDGET = 1.05
#: ... in Python-heap peak as well as wall time.
MEM_OVERHEAD_BUDGET = 1.10
ROUNDS = 5


def _fixture():
    harness = EvaluationHarness(seed=2015)
    scenarios = harness.scenarios()[:6]
    corpus = CorpusGenerator(seed=2015).generate(*scenarios)
    return harness.kb, corpus


def _build(kb, **pipeline_kwargs):
    return SurveyorPipeline(
        kb=kb, occurrence_threshold=50, **pipeline_kwargs
    )


def _best_of_interleaved(kb, corpus, configs, rounds=ROUNDS):
    """Min wall time per config, rounds interleaved across configs.

    Round-robin ordering decorrelates slow system drift (thermal,
    cache, background load) from the config under test — three
    back-to-back blocks would attribute any drift to whichever config
    ran last and flap the 5% budget.
    """
    best = {key: float("inf") for key in configs}
    for _ in range(rounds):
        for key, kwargs in configs.items():
            pipeline = _build(kb, **kwargs)
            started = time.perf_counter()
            pipeline.run(corpus)
            elapsed = time.perf_counter() - started
            best[key] = min(best[key], elapsed)
    return best


def _heap_peak(kb, corpus, **pipeline_kwargs):
    """Python-heap peak of one run, bytes (tracemalloc bracketed)."""
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        probe = MemoryProbe().start()
        _build(kb, **pipeline_kwargs).run(corpus)
        return probe.stop().tracemalloc_peak_bytes
    finally:
        if not was_tracing:
            tracemalloc.stop()


def bench_tracing_disabled_overhead(benchmark):
    kb, corpus = _fixture()

    def measure():
        best = _best_of_interleaved(
            kb,
            corpus,
            {
                "baseline": {},
                "disabled": {"tracer": Tracer(enabled=False)},
                "traced": {
                    "tracer": Tracer(enabled=True),
                    "registry": MetricsRegistry(),
                },
            },
        )
        return best["baseline"], best["disabled"], best["traced"]

    baseline, disabled, traced = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    heap_baseline = _heap_peak(kb, corpus)
    heap_disabled = _heap_peak(kb, corpus, tracer=Tracer(enabled=False))
    heap_traced = _heap_peak(
        kb,
        corpus,
        tracer=Tracer(enabled=True),
        registry=MetricsRegistry(),
    )
    perf_counts(documents=len(corpus))
    ratio_disabled = disabled / baseline
    ratio_traced = traced / baseline
    heap_ratio_disabled = heap_disabled / heap_baseline
    heap_ratio_traced = heap_traced / heap_baseline
    lines = [
        "Observability overhead on the full pipeline "
        f"({len(corpus)} documents, min of {ROUNDS})",
        f"no telemetry:    {baseline * 1000:8.1f} ms  "
        f"heap peak {heap_baseline / 1024:8.0f} KiB",
        f"disabled tracer: {disabled * 1000:8.1f} ms "
        f"({ratio_disabled:.3f}x)  "
        f"heap peak {heap_disabled / 1024:8.0f} KiB "
        f"({heap_ratio_disabled:.3f}x)",
        f"full tracing:    {traced * 1000:8.1f} ms "
        f"({ratio_traced:.3f}x)  "
        f"heap peak {heap_traced / 1024:8.0f} KiB "
        f"({heap_ratio_traced:.3f}x)",
        f"process peak RSS: {rss_peak_bytes() / (1 << 20):.1f} MiB",
    ]
    emit("obs_overhead", lines)
    # The historical keys stay at the top level so older readers of
    # obs_overhead.json keep working; memory rows are additions.
    emit_json(
        "obs_overhead",
        {
            "documents": len(corpus),
            "baseline_seconds": baseline,
            "disabled_seconds": disabled,
            "traced_seconds": traced,
            "disabled_ratio": ratio_disabled,
            "traced_ratio": ratio_traced,
            "budget": OVERHEAD_BUDGET,
            "baseline_heap_peak_bytes": heap_baseline,
            "disabled_heap_peak_bytes": heap_disabled,
            "traced_heap_peak_bytes": heap_traced,
            "disabled_heap_ratio": heap_ratio_disabled,
            "traced_heap_ratio": heap_ratio_traced,
            "mem_budget": MEM_OVERHEAD_BUDGET,
            "peak_rss_bytes": rss_peak_bytes(),
        },
    )
    assert ratio_disabled < OVERHEAD_BUDGET, (
        f"disabled telemetry costs {ratio_disabled:.3f}x "
        f"(budget {OVERHEAD_BUDGET}x)"
    )
    assert heap_ratio_disabled < MEM_OVERHEAD_BUDGET, (
        f"disabled telemetry allocates {heap_ratio_disabled:.3f}x "
        f"(budget {MEM_OVERHEAD_BUDGET}x)"
    )
