"""Section 7.1 — the pipeline scale run.

Paper: 40 TB snapshot, 922M statements, 60M pairs, 7M combinations,
380k above threshold, 4B opinions; extraction ~1h on 5000 nodes, EM
only 10 minutes thanks to the closed-form steps.

Downscaled equivalent: render the full evaluation world to text, run
the sharded pipeline end to end, and report the same stage breakdown.
The shape to reproduce is the *relative* cost profile: extraction
dominates; the EM stage is a small fraction of the total despite
fitting every combination.
"""

from __future__ import annotations

import os
import resource

from _report import emit, perf_counts, perf_values

from repro.corpus import CorpusGenerator, NoiseProfile, WebCorpus
from repro.pipeline import SurveyorPipeline

#: Extraction-throughput regression gates for the fast path (see
#: docs/performance.md). The primary gate is *relative* and measured
#: in process CPU seconds: the reference path runs on a slice of the
#: same corpus in the same process, and CPU time (unlike wall time)
#: does not inflate when other tenants load the CI box — wall-clock
#: ratios proved bimodal on shared single-core hardware. The
#: committed speedup is ~3x (22.7k vs 7.0k docs/s on the baseline
#: hardware); observed CPU-second ratios range 2.1–3.1x on shared
#: hardware (frequency scaling moves even CPU time), so the floor
#: sits at 1.8x — low enough not to flap, high enough to catch a
#: disabled or broken fast path (~1.0x) outright, with the recorded
#: `extraction_speedup_vs_reference` trajectory value carrying the
#: finer-grained trend. An *absolute* wall-clock docs/s floor can
#: additionally be pinned via env on hardware with a known baseline.
SPEEDUP_FLOOR_ENV = "REPRO_BENCH_EXTRACTION_SPEEDUP_FLOOR"
DEFAULT_SPEEDUP_FLOOR = 1.8
EXTRACTION_FLOOR_ENV = "REPRO_BENCH_EXTRACTION_FLOOR_DOCS_PER_SEC"
#: Documents in the reference-path comparison slice.
REFERENCE_SLICE = 4000


def _cpu_seconds() -> float:
    """User+system CPU consumed by this process so far."""
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return usage.ru_utime + usage.ru_stime


def bench_sec71_full_pipeline(benchmark, harness):
    corpus = CorpusGenerator(
        seed=2015, noise=NoiseProfile()
    ).generate(*harness.scenarios())

    pipeline = SurveyorPipeline(
        kb=harness.kb, occurrence_threshold=100, n_workers=8
    )

    cpu: dict[str, float] = {}

    def run_pipeline():
        start = _cpu_seconds()
        result = pipeline.run(corpus)
        cpu["fast"] = _cpu_seconds() - start
        return result

    report = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)

    perf_counts(
        documents=len(corpus),
        statements=report.evidence.n_statements,
        combinations=len(report.result.fits),
    )
    metrics = report.metrics
    extraction_seconds = (
        metrics.stage("map").wall_seconds
        + metrics.stage("reduce").wall_seconds
    )
    em_seconds = metrics.stage("em").wall_seconds
    docs_per_second = len(corpus) / max(extraction_seconds, 1e-9)
    health = report.health
    memo_lookups = health.memo_hits + health.memo_misses
    memo_hit_rate = (
        health.memo_hits / memo_lookups if memo_lookups else 0.0
    )

    # Reference-path comparison run (outside the timed region): same
    # corpus prefix, fast path off, measured in CPU seconds.
    ref_start = _cpu_seconds()
    SurveyorPipeline(
        kb=harness.kb,
        occurrence_threshold=100,
        n_workers=8,
        fast_path=False,
    ).run(WebCorpus(documents=corpus.documents[:REFERENCE_SLICE]))
    cpu["reference"] = _cpu_seconds() - ref_start
    ref_docs_per_cpu = REFERENCE_SLICE / max(cpu["reference"], 1e-9)
    fast_docs_per_cpu = len(corpus) / max(cpu["fast"], 1e-9)
    speedup = fast_docs_per_cpu / ref_docs_per_cpu

    perf_values(
        extraction_docs_per_second=round(docs_per_second, 1),
        extraction_speedup_vs_reference=round(speedup, 3),
        prefilter_skip_rate=round(health.prefilter_skip_rate, 4),
        annotation_memo_hit_rate=round(memo_hit_rate, 4),
    )
    lines = [
        "Section 7.1 — pipeline scale run (downscaled)",
        f"corpus: {len(corpus)} documents, {corpus.size_bytes()} bytes",
        report.summary(),
        f"extraction share of wall time: "
        f"{extraction_seconds / metrics.total_seconds:.1%}",
        f"EM share of wall time: {em_seconds / metrics.total_seconds:.1%}",
        f"throughput: {docs_per_second:.0f} documents/second",
        f"fast path speedup vs reference: {speedup:.2f}x "
        f"({fast_docs_per_cpu:.0f} vs {ref_docs_per_cpu:.0f} "
        f"documents/CPU-second)",
        f"prefilter skip rate: {health.prefilter_skip_rate:.1%}",
        f"annotation memo hit rate: {memo_hit_rate:.1%}",
    ]
    emit("sec71_pipeline_scale", lines)

    # The paper's cost profile: extraction >> EM.
    assert extraction_seconds > 5 * em_seconds
    assert report.evidence.n_statements > 1000
    assert len(report.result.fits) > 0
    assert len(report.opinions) > 0
    # The fast path must hold its committed speedup over the reference
    # path, measured in load-insensitive CPU seconds.
    speedup_floor = float(
        os.environ.get(SPEEDUP_FLOOR_ENV, DEFAULT_SPEEDUP_FLOOR)
    )
    assert speedup >= speedup_floor, (
        f"fast-path speedup regressed: {speedup:.2f}x < floor "
        f"{speedup_floor:.2f}x (override {SPEEDUP_FLOOR_ENV})"
    )
    absolute_floor = os.environ.get(EXTRACTION_FLOOR_ENV)
    if absolute_floor is not None:
        assert docs_per_second >= float(absolute_floor), (
            f"extraction throughput regressed: {docs_per_second:.0f} "
            f"docs/s < pinned floor {float(absolute_floor):.0f} docs/s"
        )


def bench_sec71_em_stage_alone(benchmark, harness, evidence):
    """The 10-minute stage: EM over every qualifying combination."""
    from repro.core import Surveyor

    surveyor = Surveyor(catalog=harness.kb, occurrence_threshold=100)
    grouped = evidence.as_evidence()

    result = benchmark(lambda: surveyor.run(grouped))
    perf_counts(combinations=len(result.fits))
    assert len(result.fits) > 0
