"""Section 7.1 — the pipeline scale run.

Paper: 40 TB snapshot, 922M statements, 60M pairs, 7M combinations,
380k above threshold, 4B opinions; extraction ~1h on 5000 nodes, EM
only 10 minutes thanks to the closed-form steps.

Downscaled equivalent: render the full evaluation world to text, run
the sharded pipeline end to end, and report the same stage breakdown.
The shape to reproduce is the *relative* cost profile: extraction
dominates; the EM stage is a small fraction of the total despite
fitting every combination.
"""

from __future__ import annotations

from _report import emit, perf_counts

from repro.corpus import CorpusGenerator, NoiseProfile
from repro.pipeline import SurveyorPipeline


def bench_sec71_full_pipeline(benchmark, harness):
    corpus = CorpusGenerator(
        seed=2015, noise=NoiseProfile()
    ).generate(*harness.scenarios())

    pipeline = SurveyorPipeline(
        kb=harness.kb, occurrence_threshold=100, n_workers=8
    )

    report = benchmark.pedantic(
        lambda: pipeline.run(corpus), rounds=1, iterations=1
    )

    perf_counts(
        documents=len(corpus),
        statements=report.evidence.n_statements,
        combinations=len(report.result.fits),
    )
    metrics = report.metrics
    extraction_seconds = (
        metrics.stage("map").wall_seconds
        + metrics.stage("reduce").wall_seconds
    )
    em_seconds = metrics.stage("em").wall_seconds
    lines = [
        "Section 7.1 — pipeline scale run (downscaled)",
        f"corpus: {len(corpus)} documents, {corpus.size_bytes()} bytes",
        report.summary(),
        f"extraction share of wall time: "
        f"{extraction_seconds / metrics.total_seconds:.1%}",
        f"EM share of wall time: {em_seconds / metrics.total_seconds:.1%}",
        f"throughput: {len(corpus) / max(extraction_seconds, 1e-9):.0f} "
        f"documents/second",
    ]
    emit("sec71_pipeline_scale", lines)

    # The paper's cost profile: extraction >> EM.
    assert extraction_seconds > 5 * em_seconds
    assert report.evidence.n_statements > 1000
    assert len(report.result.fits) > 0
    assert len(report.opinions) > 0


def bench_sec71_em_stage_alone(benchmark, harness, evidence):
    """The 10-minute stage: EM over every qualifying combination."""
    from repro.core import Surveyor

    surveyor = Surveyor(catalog=harness.kb, occurrence_threshold=100)
    grouped = evidence.as_evidence()

    result = benchmark(lambda: surveyor.run(grouped))
    perf_counts(combinations=len(result.fits))
    assert len(result.fits) > 0
