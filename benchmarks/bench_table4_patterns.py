"""Table 4 — extraction-pattern versions 1-4 over the same corpus.

Paper counts (40 TB snapshot):

    v1  amod, copula class, unchecked          1,321,194,344
    v2  amod+acomp, copula class, unchecked    1,779,253,966
    v3  acomp, "to be", checked                   98,574,972
    v4  amod+acomp, "to be", checked             922,299,774

Expected shape: v2 extracts the most (broadest patterns, no checks),
v1 and v4 fall in between, v3 extracts the least (single pattern plus
checks, an order of magnitude under v2). The benchmark renders one
noisy corpus, annotates it once, and runs all four extractors over the
shared annotations — also timing the extraction stage per version, the
Appendix B runtime comparison.
"""

from __future__ import annotations

import pytest
from _report import emit, perf_counts

from repro.corpus import CorpusGenerator, NoiseProfile
from repro.extraction import EvidenceExtractor, PATTERN_VERSIONS
from repro.nlp import Annotator

_STATE: dict = {}


def _annotated_corpus(harness):
    """Annotate the rendered evaluation corpus once, cache for all
    versions."""
    if "docs" not in _STATE:
        # Attributive amod mentions dominate loose Web usage; the high
        # loose rate reproduces the paper's v1 >> v3 relationship.
        noise = NoiseProfile(
            distractor_rate=0.3,
            non_intrinsic_rate=0.2,
            loose_only_rate=1.8,
        )
        corpus = CorpusGenerator(seed=2015, noise=noise).generate(
            *harness.scenarios()
        )
        annotator = Annotator(harness.kb)
        _STATE["docs"] = [
            annotator.annotate(doc.doc_id, doc.text) for doc in corpus
        ]
    return _STATE["docs"]


@pytest.mark.parametrize("version", [1, 2, 3, 4])
def bench_table4_version(benchmark, harness, version):
    docs = _annotated_corpus(harness)
    config = PATTERN_VERSIONS[version]

    def extract():
        extractor = EvidenceExtractor(config=config)
        counter = extractor.extract_corpus(iter(docs))
        return counter.n_statements

    n_statements = benchmark(extract)
    perf_counts(statements=n_statements)
    _STATE.setdefault("counts", {})[version] = n_statements

    if len(_STATE["counts"]) == 4:
        counts = _STATE["counts"]
        lines = ["Table 4 — pattern versions (statement counts)"]
        for v in (1, 2, 3, 4):
            config_v = PATTERN_VERSIONS[v]
            lines.append(
                f"v{v} {config_v.name:28s} {counts[v]:8d} "
                f"({counts[v] / counts[2]:.2f} of v2)"
            )
        emit("table4_patterns", lines)
        # Paper's full ordering: v2 > v1 > v4 > v3.
        assert counts[2] > counts[1] > counts[4] > counts[3]
        # v3 is the most restrictive by a wide margin vs v2.
        assert counts[3] < 0.4 * counts[2]
