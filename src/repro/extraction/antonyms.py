"""Antonym-aware evidence expansion — a rejected design, implemented.

Section 4 of the paper considers treating "Palo Alto is small" as a
negation of "Palo Alto is big" via antonym relationships, and decides
against it for two reasons:

1. antonyms are not exact complements — users who consider a city not
   big do not necessarily consider it small;
2. adverb-adjective properties ("very big") usually have no antonym.

This module implements the rejected variant so the ablation bench can
quantify the argument: :func:`expand_with_antonyms` adds, for every
statement about an antonymous adjective, a mirrored statement about
the antonym with flipped polarity. Reason 2 is honoured structurally —
properties carrying adverbs are never expanded.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..core.types import SubjectiveProperty
from .statement import EvidenceStatement

#: WordNet-style antonym pairs among common subjective adjectives.
_ANTONYM_PAIRS: tuple[tuple[str, str], ...] = (
    ("big", "small"), ("safe", "dangerous"), ("cheap", "expensive"),
    ("fast", "slow"), ("boring", "exciting"), ("calm", "hectic"),
    ("quiet", "loud"), ("young", "old"), ("clean", "dirty"),
    ("rich", "poor"), ("strong", "weak"), ("hot", "cold"),
    ("wide", "narrow"), ("deep", "shallow"), ("pretty", "ugly"),
    ("friendly", "hostile"), ("hard", "soft"), ("wet", "dry"),
    ("happy", "sad"), ("light", "heavy"), ("common", "rare"),
    ("smooth", "rough"), ("thick", "thin"), ("high", "low"),
)

ANTONYMS: dict[str, str] = {}
for _left, _right in _ANTONYM_PAIRS:
    ANTONYMS[_left] = _right
    ANTONYMS[_right] = _left


def antonym_of(property_: SubjectiveProperty) -> SubjectiveProperty | None:
    """The antonymous property, or None.

    Properties with adverbs have no antonym (the paper's reason 2:
    there is no opposite of "very big").
    """
    if property_.adverbs:
        return None
    opposite = ANTONYMS.get(property_.adjective)
    if opposite is None:
        return None
    return SubjectiveProperty(opposite)


def expand_with_antonyms(
    statements: Iterable[EvidenceStatement],
) -> list[EvidenceStatement]:
    """Original statements plus mirrored antonym statements.

    "X is small" additionally yields (X, big, -); "X is not small"
    yields (X, big, +). The mirrored statements carry the pattern tag
    ``antonym`` so downstream analysis can attribute errors.
    """
    expanded: list[EvidenceStatement] = []
    for statement in statements:
        expanded.append(statement)
        opposite = antonym_of(statement.property)
        if opposite is None:
            continue
        expanded.append(
            EvidenceStatement(
                entity_id=statement.entity_id,
                entity_type=statement.entity_type,
                property=opposite,
                polarity=statement.polarity.flipped(),
                pattern="antonym",
                doc_id=statement.doc_id,
                sentence=statement.sentence,
            )
        )
    return expanded
