"""Evidence statement records and count aggregation.

An evidence statement connects one entity to one subjective property
with a polarity (Section 4). The aggregation step groups statements by
entity-property pair and produces the ``<C+, C->`` evidence tuples the
probabilistic model consumes (Section 3).
"""

from __future__ import annotations


from collections.abc import Iterable
from dataclasses import dataclass

from ..core.types import (
    EvidenceCounts,
    Polarity,
    PropertyTypeKey,
    SubjectiveProperty,
)


@dataclass(frozen=True, slots=True)
class EvidenceStatement:
    """One extracted statement."""

    entity_id: str
    entity_type: str
    property: SubjectiveProperty
    polarity: Polarity
    pattern: str
    doc_id: str = ""
    sentence: str = ""
    #: Negation-particle count on the dependency path (Section 4.2);
    #: ``polarity`` is negative iff this is odd. Kept on the statement
    #: so provenance can report *why* a statement counted the way it
    #: did. A pure function of the parsed sentence, so it is safe to
    #: cache across documents alongside the rest of the proto.
    negations: int = 0

    def __post_init__(self) -> None:
        if self.polarity is Polarity.NEUTRAL:
            raise ValueError("statements are positive or negative")

    @property
    def key(self) -> PropertyTypeKey:
        return PropertyTypeKey(
            property=self.property, entity_type=self.entity_type
        )


class EvidenceCounter:
    """Accumulates statements into per-pair evidence tuples.

    Plain nested dicts (not defaultdicts with closures) so counters
    pickle cleanly across process-pool workers.
    """

    def __init__(self) -> None:
        self._counts: dict[PropertyTypeKey, dict[str, list[int]]] = {}
        self._n_statements = 0

    def _slot(self, key: PropertyTypeKey, entity_id: str) -> list[int]:
        per_entity = self._counts.get(key)
        if per_entity is None:
            per_entity = {}
            self._counts[key] = per_entity
        slot = per_entity.get(entity_id)
        if slot is None:
            slot = [0, 0]
            per_entity[entity_id] = slot
        return slot

    def add(self, statement: EvidenceStatement) -> None:
        slot = self._slot(statement.key, statement.entity_id)
        if statement.polarity is Polarity.POSITIVE:
            slot[0] += 1
        else:
            slot[1] += 1
        self._n_statements += 1

    def add_all(self, statements: Iterable[EvidenceStatement]) -> None:
        for statement in statements:
            self.add(statement)

    def __eq__(self, other: object) -> bool:
        """Exact count equality — the strict-parity assertion."""
        if not isinstance(other, EvidenceCounter):
            return NotImplemented
        return (
            self._n_statements == other._n_statements
            and self._counts == other._counts
        )

    def merge(self, other: "EvidenceCounter") -> None:
        """Fold another counter in (the reduce side of the pipeline)."""
        for key, per_entity in other._counts.items():
            for entity_id, (pos, neg) in per_entity.items():
                slot = self._slot(key, entity_id)
                slot[0] += pos
                slot[1] += neg
        self._n_statements += other._n_statements

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def n_statements(self) -> int:
        return self._n_statements

    @property
    def n_pairs(self) -> int:
        return sum(len(v) for v in self._counts.values())

    def keys(self) -> list[PropertyTypeKey]:
        return list(self._counts)

    def counts_for(
        self, key: PropertyTypeKey
    ) -> dict[str, EvidenceCounts]:
        return {
            entity_id: EvidenceCounts(pos, neg)
            for entity_id, (pos, neg) in self._counts.get(key, {}).items()
        }

    def as_evidence(
        self,
    ) -> dict[PropertyTypeKey, dict[str, EvidenceCounts]]:
        """The full nested mapping Surveyor's driver consumes."""
        return {key: self.counts_for(key) for key in self._counts}

    def get(self, key: PropertyTypeKey, entity_id: str) -> EvidenceCounts:
        pos, neg = self._counts.get(key, {}).get(entity_id, (0, 0))
        return EvidenceCounts(pos, neg)

    def statements_per_key(self) -> dict[PropertyTypeKey, int]:
        """Total statement count per property-type combination."""
        return {
            key: sum(pos + neg for pos, neg in per_entity.values())
            for key, per_entity in self._counts.items()
        }
