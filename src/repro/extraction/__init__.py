"""Evidence extraction: patterns, polarity, filters, and the driver."""

from .antonyms import ANTONYMS, antonym_of, expand_with_antonyms
from .extractor import EvidenceExtractor, ExtractionStats, extract_from_texts
from .patterns import (
    DEFAULT_PATTERNS,
    PATTERN_VERSIONS,
    PatternConfig,
    PatternMatch,
    find_matches,
)
from .polarity import negation_count, statement_polarity
from .provenance import (
    DEFAULT_SAMPLES_PER_POLARITY,
    PairProvenance,
    ProvenanceIndex,
    ProvenanceLedger,
    ProvenanceSample,
    provenance_default,
)
from .statement import EvidenceCounter, EvidenceStatement

__all__ = [
    "DEFAULT_SAMPLES_PER_POLARITY",
    "PairProvenance",
    "ProvenanceIndex",
    "ProvenanceLedger",
    "ProvenanceSample",
    "provenance_default",
    "ANTONYMS",
    "DEFAULT_PATTERNS",
    "EvidenceCounter",
    "antonym_of",
    "expand_with_antonyms",
    "EvidenceExtractor",
    "EvidenceStatement",
    "ExtractionStats",
    "PATTERN_VERSIONS",
    "PatternConfig",
    "PatternMatch",
    "extract_from_texts",
    "find_matches",
    "negation_count",
    "statement_polarity",
]
