"""Dependency-tree extraction patterns (Figure 4) and their versions.

Three patterns connect an entity mention to a property:

* **adjectival complement** (Fig. 4b): the entity is the ``nsubj`` of a
  predicate adjective with a copula — "Chicago is very big";
* **adjectival modifier** (Fig. 4a): an adjective modifies a noun that
  mentions (or corefers with) the entity — "Snakes are dangerous
  animals", "the cute cat";
* **conjunction** (Fig. 4c): an adjective conjoined with a matched one
  inherits the entity — "Soccer is a fast and exciting sport" also
  yields (soccer, exciting).

Appendix B describes four configurations tried during development;
:data:`PATTERN_VERSIONS` reproduces them. Version 4 (amod + acomp,
verb "to be" only, intrinsicness checks on) is the shipped default.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.types import SubjectiveProperty
from ..nlp import lexicon
from ..nlp.annotate import AnnotatedSentence
from ..nlp.deptree import (
    ADVMOD,
    AMOD,
    APPOS,
    CONJ,
    COP,
    DepNode,
    NSUBJ,
    XCOMP,
)
from ..nlp.tokens import EntityMention, POS
from . import filters


@dataclass(frozen=True, slots=True)
class PatternConfig:
    """One row of Table 4."""

    name: str
    use_amod: bool
    use_acomp: bool
    verbs: frozenset[str]
    intrinsic_checks: bool
    use_conjunction: bool = True

    @property
    def broad_verbs(self) -> bool:
        """Whether the copula class goes beyond "to be"."""
        return self.verbs != frozenset({"be"})


#: Appendix B, Table 4: the four configurations tried by the authors.
PATTERN_VERSIONS: dict[int, PatternConfig] = {
    1: PatternConfig(
        name="v1-amod-copula",
        use_amod=True,
        use_acomp=False,
        verbs=lexicon.COPULA_LEMMAS,
        intrinsic_checks=False,
    ),
    2: PatternConfig(
        name="v2-amod-acomp-copula",
        use_amod=True,
        use_acomp=True,
        verbs=lexicon.COPULA_LEMMAS,
        intrinsic_checks=False,
    ),
    3: PatternConfig(
        name="v3-acomp-tobe-checked",
        use_amod=False,
        use_acomp=True,
        verbs=frozenset({"be"}),
        intrinsic_checks=True,
    ),
    4: PatternConfig(
        name="v4-amod-acomp-tobe-checked",
        use_amod=True,
        use_acomp=True,
        verbs=frozenset({"be"}),
        intrinsic_checks=True,
    ),
}

#: The configuration used for all experiments (Appendix B's final pick).
DEFAULT_PATTERNS = PATTERN_VERSIONS[4]


@dataclass(frozen=True, slots=True)
class PatternMatch:
    """One pattern instance: an entity tied to a property node."""

    mention: EntityMention
    property_node: DepNode
    property: SubjectiveProperty
    pattern: str


def find_matches(
    annotated: AnnotatedSentence,
    config: PatternConfig = DEFAULT_PATTERNS,
) -> list[PatternMatch]:
    """All pattern instances in one annotated sentence."""
    sentence = annotated.sentence
    if not sentence.mentions or annotated.tree is None:
        return []
    matches: list[PatternMatch] = []
    for node in annotated.tree.all_nodes():
        if node.token.pos is not POS.ADJ:
            continue
        if config.use_acomp:
            matches.extend(_match_acomp(annotated, node, config))
        if config.use_amod:
            matches.extend(_match_amod(annotated, node, config))
    if config.use_conjunction:
        matches.extend(_expand_conjunctions(matches))
    return matches


# ---------------------------------------------------------------------------
# Adjectival complement (Fig. 4b)
# ---------------------------------------------------------------------------

def _match_acomp(
    annotated: AnnotatedSentence, node: DepNode, config: PatternConfig
) -> list[PatternMatch]:
    cop = node.child_by_rel(COP)
    subject = node.child_by_rel(NSUBJ)
    if subject is None:
        return []
    if cop is not None:
        cop_lemma = lexicon.COPULA_FORMS.get(cop.token.lemma)
        if cop_lemma not in config.verbs:
            return []
    else:
        # Small clause under an attitude verb ("I find kittens cute"):
        # only the broad-verb configurations accept it.
        if node.deprel != XCOMP or not config.broad_verbs:
            return []
    mention = _mention_for(annotated, subject)
    if mention is None:
        return []
    if config.intrinsic_checks and filters.has_constriction(node):
        return []
    return [
        PatternMatch(
            mention=mention,
            property_node=node,
            property=_property_of(node),
            pattern="acomp",
        )
    ]


# ---------------------------------------------------------------------------
# Adjectival modifier (Fig. 4a)
# ---------------------------------------------------------------------------

def _match_amod(
    annotated: AnnotatedSentence, node: DepNode, config: PatternConfig
) -> list[PatternMatch]:
    if node.deprel != AMOD or node.parent is None:
        return []
    head = node.parent

    # Case (b): predicate nominal coreferential with the subject
    # mention — "Snakes are dangerous animals".
    cop = head.child_by_rel(COP)
    subject = head.child_by_rel(NSUBJ)
    if cop is not None and subject is not None:
        cop_lemma = lexicon.COPULA_FORMS.get(cop.token.lemma)
        if cop_lemma not in config.verbs:
            return []
        mention = _mention_for(annotated, subject)
        if mention is None:
            return []
        if config.intrinsic_checks:
            if not filters.is_coreferential_amod(
                head, mention.entity_type
            ):
                return []
            if filters.has_constriction(head):
                return []
        return [
            PatternMatch(
                mention=mention,
                property_node=node,
                property=_property_of(node),
                pattern="amod",
            )
        ]

    # Case (b'): appositive nominal — "Tokyo , a big city , is ...".
    # The appositive noun corefers with its governor by construction;
    # the same type check applies under intrinsicness checking.
    if head.deprel == APPOS and head.parent is not None:
        mention = _mention_for(annotated, head.parent)
        if mention is None:
            return []
        if config.intrinsic_checks:
            if not filters.is_coreferential_amod(
                head, mention.entity_type
            ):
                return []
            if filters.has_constriction(head):
                return []
        return [
            PatternMatch(
                mention=mention,
                property_node=node,
                property=_property_of(node),
                pattern="amod-appos",
            )
        ]

    # Case (a): direct modifier on the mention itself — "the cute cat",
    # "Southern France is warm". Dropped by the coreference check.
    if config.intrinsic_checks:
        return []
    mention = _mention_for(annotated, head)
    if mention is None:
        return []
    return [
        PatternMatch(
            mention=mention,
            property_node=node,
            property=_property_of(node),
            pattern="amod-direct",
        )
    ]


# ---------------------------------------------------------------------------
# Conjunction (Fig. 4c)
# ---------------------------------------------------------------------------

def _expand_conjunctions(
    matches: list[PatternMatch],
) -> list[PatternMatch]:
    expansions: list[PatternMatch] = []
    for match in matches:
        for conjunct in match.property_node.children_by_rel(CONJ):
            if conjunct.token.pos is not POS.ADJ:
                continue
            expansions.append(
                PatternMatch(
                    mention=match.mention,
                    property_node=conjunct,
                    property=_property_of(conjunct),
                    pattern="conj",
                )
            )
    return expansions


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _mention_for(
    annotated: AnnotatedSentence, node: DepNode
) -> EntityMention | None:
    """The entity mention covering a node or its compound children."""
    mention = annotated.sentence.mention_at(node.token.index)
    if mention is not None:
        return mention
    for child in node.children_by_rel("compound"):
        mention = annotated.sentence.mention_at(child.token.index)
        if mention is not None:
            return mention
    return None


def _property_of(node: DepNode) -> SubjectiveProperty:
    """Adjective plus its degree-adverb modifiers, in surface order."""
    adverbs = sorted(
        (
            child.token
            for child in node.children_by_rel(ADVMOD)
            if child.token.pos is POS.ADV
        ),
        key=lambda token: token.index,
    )
    return SubjectiveProperty(
        adjective=node.token.lemma,
        adverbs=tuple(token.lemma for token in adverbs),
    )
