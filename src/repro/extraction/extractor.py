"""Corpus-level evidence extraction driver.

Walks annotated documents, applies the configured extraction patterns,
computes statement polarity, and accumulates evidence counts — the
"Extraction & Filtering" box of Figure 1.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field, replace

from ..core.errors import ExtractionError
from ..core.types import Polarity
from ..nlp.annotate import AnnotatedDocument, AnnotatedSentence, Annotator
from .patterns import DEFAULT_PATTERNS, PatternConfig, find_matches
from .polarity import negation_count
from .provenance import ProvenanceLedger
from .statement import EvidenceCounter, EvidenceStatement


@dataclass(slots=True)
class ExtractionStats:
    """Per-run extraction accounting (Section 7.1-style reporting)."""

    documents: int = 0
    sentences: int = 0
    statements: int = 0
    positive: int = 0
    negative: int = 0

    def merge(self, other: "ExtractionStats") -> None:
        self.documents += other.documents
        self.sentences += other.sentences
        self.statements += other.statements
        self.positive += other.positive
        self.negative += other.negative


@dataclass
class EvidenceExtractor:
    """Extracts evidence statements from annotated documents."""

    config: PatternConfig = DEFAULT_PATTERNS
    stats: ExtractionStats = field(default_factory=ExtractionStats)
    #: Optional lineage capture: when set, :meth:`extract_sentence`
    #: samples each distinct sentence's statements (doc id, sentence
    #: index, pattern, polarity) into the ledger. ``None`` (the
    #: default) keeps extraction byte-identical to the pre-provenance
    #: behaviour at zero cost.
    provenance: ProvenanceLedger | None = None

    def extract_sentence(
        self,
        annotated: AnnotatedSentence,
        doc_id: str = "",
        sentence_index: int = 0,
    ) -> list[EvidenceStatement]:
        """All evidence statements in one sentence.

        Pattern-matching failures are re-raised as
        :class:`ExtractionError` with document/sentence context so the
        pipeline can quarantine the document.

        When the annotator attached an ``extraction_cache`` (the
        sentence's matches are a pure function of its text and link
        context), the pattern matching and polarity work runs once per
        cache line and later documents only re-stamp ``doc_id``. A
        ledger samples each cache line once (``seen_lines`` identity
        check), so repeat visits of a shared sentence pay no
        provenance cost beyond that check; exact totals come from the
        evidence counter via ``ProvenanceLedger.seed_totals``.
        """
        cache = annotated.extraction_cache
        if cache is not None:
            protos = cache.get(self.config)
            if protos is None:
                protos = tuple(self._match_sentence(annotated, doc_id))
                cache[self.config] = protos
            if not protos:
                return []
            found = [
                s if s.doc_id == doc_id else replace(s, doc_id=doc_id)
                for s in protos
            ]
            ledger = self.provenance
            if (
                ledger is not None
                and id(protos) not in ledger.seen_lines
            ):
                ledger.sample_line(protos, found, sentence_index)
            return found
        found = self._match_sentence(annotated, doc_id)
        if found:
            ledger = self.provenance
            if ledger is not None:
                for statement in found:
                    ledger.record(statement, sentence_index)
        return found

    def _match_sentence(
        self, annotated: AnnotatedSentence, doc_id: str
    ) -> list[EvidenceStatement]:
        statements = []
        try:
            text = annotated.text()
            for match in find_matches(annotated, self.config):
                negations = negation_count(match.property_node)
                statements.append(
                    EvidenceStatement(
                        entity_id=match.mention.entity_id,
                        entity_type=match.mention.entity_type,
                        property=match.property,
                        polarity=(
                            Polarity.NEGATIVE
                            if negations % 2
                            else Polarity.POSITIVE
                        ),
                        pattern=match.pattern,
                        doc_id=doc_id,
                        sentence=text,
                        negations=negations,
                    )
                )
        except ExtractionError:
            raise
        except Exception as error:
            raise ExtractionError(
                f"extraction failed in document {doc_id!r} "
                f"(sentence {annotated.text()[:60]!r}): {error}"
            ) from error
        return statements

    def extract_document(
        self, document: AnnotatedDocument
    ) -> list[EvidenceStatement]:
        """All evidence statements in one document."""
        statements: list[EvidenceStatement] = []
        self.stats.documents += 1
        doc_id = document.doc_id
        for sentence_index, annotated in enumerate(
            document.sentences
        ):
            self.stats.sentences += 1
            statements.extend(
                self.extract_sentence(
                    annotated, doc_id, sentence_index
                )
            )
        self._account(statements)
        return statements

    def extract_corpus(
        self, documents: Iterable[AnnotatedDocument]
    ) -> EvidenceCounter:
        """Run extraction over a corpus and aggregate counts."""
        counter = EvidenceCounter()
        for document in documents:
            counter.add_all(self.extract_document(document))
        return counter

    def _account(self, statements: list[EvidenceStatement]) -> None:
        self.stats.statements += len(statements)
        for statement in statements:
            if statement.polarity is Polarity.POSITIVE:
                self.stats.positive += 1
            else:
                self.stats.negative += 1


def extract_from_texts(
    annotator: Annotator,
    texts: Iterable[tuple[str, str]],
    config: PatternConfig = DEFAULT_PATTERNS,
) -> tuple[EvidenceCounter, ExtractionStats]:
    """Convenience path: raw ``(doc_id, text)`` pairs to evidence counts."""
    extractor = EvidenceExtractor(config=config)
    counter = EvidenceCounter()
    for doc_id, text in texts:
        document = annotator.annotate(doc_id, text)
        counter.add_all(extractor.extract_document(document))
    return counter, extractor.stats
