"""Statement polarity from negations on the path to the root.

Figure 5 of the paper: starting from the property token with polarity
+1, walk up the dependency tree to the root and flip the sign at every
negated token (a token with a negation child). An odd number of
negations makes the statement negative; double negations ("I don't
think that snakes are never dangerous") resolve back to positive.
"""

from __future__ import annotations

from ..core.types import Polarity
from ..nlp.deptree import DepNode, NEG


def negation_count(property_node: DepNode) -> int:
    """Number of negations on the path from the property to the root.

    Counts individual negation children rather than negated tokens so
    the (rare) stacked case "isn't never" flips twice on one node;
    for the paper's examples the two formulations coincide.
    """
    return sum(
        len(node.children_by_rel(NEG))
        for node in property_node.path_to_root()
    )


def statement_polarity(property_node: DepNode) -> Polarity:
    """Polarity of the statement anchored at ``property_node``."""
    if negation_count(property_node) % 2 == 1:
        return Polarity.NEGATIVE
    return Polarity.POSITIVE
