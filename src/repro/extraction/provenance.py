"""Bounded-sample evidence lineage for extracted statements.

Every opinion Surveyor serves is a posterior distilled from ``<C+, C->``
counts; this module keeps enough raw material to answer *why* — for each
(entity, property-type) pair it records where the counts came from: a
handful of sampled statements (doc id, sentence index, matched
dependency pattern, polarity, negation count, sentence text) plus the
exact number of positive/negative statements seen.

The capture is deliberately bounded: at most ``samples_per_polarity``
sampled statements per polarity per pair, with sentence text truncated
to :data:`MAX_SENTENCE_CHARS`. On the paper's scale (Section 7.1) the
counts dominate — the ledger stays a small constant factor of the
evidence counter, never a copy of the corpus.

Cost model: the extraction fast path shares memoized statement protos
across every document containing the same sentence, so the ledger
samples *once per distinct sentence* (:meth:`ProvenanceLedger.sample_line`,
guarded by an identity check that costs two dict probes on repeats)
instead of doing per-statement bookkeeping, and the exact
positive/negative totals are copied from the
:class:`~repro.extraction.statement.EvidenceCounter` — which already
counts every statement — in one pass at reduce time
(:meth:`ProvenanceLedger.seed_totals`). The per-statement hot path
stays untouched; benchmarks/bench_provenance.py gates the residue.

Determinism: workers visit sentences in document order within a
shard, the seen-line marker is per-ledger (never shared state), and
the runner merges shard ledgers in ``shard_id`` order — exactly the
order the evidence counters merge in — so two runs over the same
corpus produce byte-identical sidecars whether the annotation memo
was cold or warm.

The write side (:class:`ProvenanceLedger`) lives in the extraction
workers and merges across shards; the read side
(:class:`ProvenanceIndex`) additionally links each pair to its
combination's learned model parameters ``(pA, p+S, p-S)`` and EM
convergence verdict, and is what the sidecar file and the ``/explain``
surface serialize.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from ..core.params import ModelParameters
from ..core.types import Polarity, PropertyTypeKey
from .statement import EvidenceStatement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.surveyor import SurveyorResult
    from ..obs.convergence import ConvergenceRecord

PROVENANCE_ENV = "REPRO_PROVENANCE"

_FALSEY = frozenset({"", "0", "false", "no", "off"})

#: Sampled statements kept per polarity per (entity, property) pair.
DEFAULT_SAMPLES_PER_POLARITY = 3

#: Sentence text is truncated to this many characters in samples.
MAX_SENTENCE_CHARS = 240


def provenance_default() -> bool:
    """Whether lineage capture is on by default (``REPRO_PROVENANCE``)."""
    value = os.environ.get(PROVENANCE_ENV)
    if value is None:
        return True
    return value.strip().lower() not in _FALSEY


@dataclass(frozen=True, slots=True)
class ProvenanceSample:
    """One sampled statement supporting or refuting a pair."""

    doc_id: str
    sentence_index: int
    pattern: str
    polarity: str  # "positive" | "negative"
    negations: int
    sentence: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "doc_id": self.doc_id,
            "sentence_index": self.sentence_index,
            "pattern": self.pattern,
            "polarity": self.polarity,
            "negations": self.negations,
            "sentence": self.sentence,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ProvenanceSample":
        return cls(
            doc_id=str(payload["doc_id"]),
            sentence_index=int(payload["sentence_index"]),
            pattern=str(payload["pattern"]),
            polarity=str(payload["polarity"]),
            negations=int(payload.get("negations", 0)),
            sentence=str(payload.get("sentence", "")),
        )


@dataclass(frozen=True, slots=True)
class PairProvenance:
    """Lineage for one (entity, property-type) pair.

    ``positive_seen``/``negative_seen`` are exact totals (they match
    the evidence counter); ``samples`` is the bounded subset kept.
    """

    positive_seen: int
    negative_seen: int
    samples: tuple[ProvenanceSample, ...] = ()


def _raw_from_sample(sample: ProvenanceSample) -> tuple:
    """Internal slot entry for one sample (field order matches)."""
    return (
        sample.doc_id,
        sample.sentence_index,
        sample.pattern,
        sample.polarity,
        sample.negations,
        sample.sentence,
    )


def _pair_from_slot(slot: list[Any]) -> PairProvenance:
    """Materialize a slot's raw tuples into the read-side view."""
    return PairProvenance(
        positive_seen=slot[0],
        negative_seen=slot[1],
        samples=tuple(
            ProvenanceSample(
                doc_id=raw[0],
                sentence_index=int(raw[1]),
                pattern=raw[2],
                polarity=raw[3],
                negations=raw[4],
                sentence=raw[5],
            )
            for raw in (*slot[2], *slot[3])
        ),
    )


class ProvenanceLedger:
    """Accumulates bounded per-pair lineage during extraction.

    Mirrors :class:`~repro.extraction.statement.EvidenceCounter`'s
    shape (plain nested dicts, picklable across process-pool workers)
    with a ``merge`` that is associative given the runner's sorted
    shard order: the first ``samples_per_polarity`` statements per
    polarity in merge order win.
    """

    def __init__(
        self,
        samples_per_polarity: int = DEFAULT_SAMPLES_PER_POLARITY,
    ) -> None:
        if samples_per_polarity < 1:
            raise ValueError(
                "samples_per_polarity must be >= 1, got "
                f"{samples_per_polarity}"
            )
        self.samples_per_polarity = int(samples_per_polarity)
        # One flat dict keyed by (property, entity_type, entity_id),
        # value [positive_seen, negative_seen, pos_samples,
        # neg_samples]. The flat tuple key hashes several times
        # cheaper than constructing a PropertyTypeKey per statement,
        # and the split sample lists turn the per-polarity cap check
        # into one len(). Samples are held as plain field tuples
        # (:class:`ProvenanceSample` construction costs ~5x a tuple;
        # per-shard ledgers build several times more samples than
        # survive the merge cap) and materialized by the views.
        self._slots: dict[tuple[Any, str, str], list[Any]] = {}
        # Memoized statement-proto tuples already sampled, keyed by
        # identity. The value keeps a strong reference so the id can
        # never be recycled for a different live line. Repeat visits
        # of a shared sentence cost two dict probes — the only work
        # provenance adds to the extraction hot path.
        self.seen_lines: dict[int, tuple] = {}

    def __getstate__(self) -> dict[str, Any]:
        # Shard ledgers cross process-pool boundaries; the seen-line
        # pins are identity-scoped (meaningless after unpickling) and
        # would drag full statement protos along — drop them.
        state = self.__dict__.copy()
        state["seen_lines"] = {}
        return state

    def record(
        self, statement: EvidenceStatement, sentence_index: int
    ) -> None:
        """Account one statement exactly, sampling if room remains.

        This is the non-memoized (reference/slow) extraction path:
        counts here are exact because every statement occurrence is
        seen once. The fast path uses :meth:`sample_line` plus
        :meth:`seed_totals` instead.
        """
        slots = self._slots
        pair_key = (
            statement.property,
            statement.entity_type,
            statement.entity_id,
        )
        slot = slots.get(pair_key)
        if slot is None:
            slot = [0, 0, [], []]
            slots[pair_key] = slot
        if statement.polarity is Polarity.POSITIVE:
            slot[0] += 1
            samples: list[tuple] = slot[2]
            polarity = "positive"
        else:
            slot[1] += 1
            samples = slot[3]
            polarity = "negative"
        if len(samples) >= self.samples_per_polarity:
            return
        samples.append((
            statement.doc_id,
            sentence_index,
            statement.pattern,
            polarity,
            statement.negations,
            statement.sentence[:MAX_SENTENCE_CHARS],
        ))

    def sample_line(
        self,
        line: tuple,
        statements: list[EvidenceStatement],
        sentence_index: int,
    ) -> None:
        """Sample one memoized sentence's statements, once per ledger.

        ``line`` is the shared proto tuple (the identity marker);
        ``statements`` are the re-stamped copies carrying the current
        document's id. Totals are *not* touched — they come from
        :meth:`seed_totals` — so sampling dedupes across the documents
        that share a sentence: samples are distinct sentences, each
        attributed to the first document (per shard) containing it.
        """
        self.seen_lines[id(line)] = line
        cap = self.samples_per_polarity
        slots = self._slots
        for statement in statements:
            pair_key = (
                statement.property,
                statement.entity_type,
                statement.entity_id,
            )
            slot = slots.get(pair_key)
            if slot is None:
                slot = [0, 0, [], []]
                slots[pair_key] = slot
            if statement.polarity is Polarity.POSITIVE:
                samples: list[tuple] = slot[2]
                polarity = "positive"
            else:
                samples = slot[3]
                polarity = "negative"
            if len(samples) >= cap:
                continue
            samples.append((
                statement.doc_id,
                sentence_index,
                statement.pattern,
                polarity,
                statement.negations,
                statement.sentence[:MAX_SENTENCE_CHARS],
            ))

    def seed_totals(self, counter: Any) -> None:
        """Copy exact per-pair totals from an ``EvidenceCounter``.

        The counter counts every statement occurrence already; doing
        it again per statement in the ledger would double the hot-path
        bookkeeping. The runner calls this once after the shard merge,
        making ``positive_seen``/``negative_seen`` exact regardless of
        which capture path (memoized or reference) recorded samples.
        """
        slots = self._slots
        for key, per_entity in counter.as_evidence().items():
            prop = key.property
            entity_type = key.entity_type
            for entity_id, counts in per_entity.items():
                pair_key = (prop, entity_type, entity_id)
                slot = slots.get(pair_key)
                if slot is None:
                    slot = [0, 0, [], []]
                    slots[pair_key] = slot
                slot[0] = counts.positive
                slot[1] = counts.negative

    def _seed_slot(
        self, key: PropertyTypeKey, entity_id: str
    ) -> list[Any]:
        pair_key = (key.property, key.entity_type, entity_id)
        slot = self._slots.get(pair_key)
        if slot is None:
            slot = [0, 0, [], []]
            self._slots[pair_key] = slot
        return slot

    def seed_pair(
        self,
        key: PropertyTypeKey,
        entity_id: str,
        pair: PairProvenance,
    ) -> None:
        """Load one pair's persisted lineage (checkpoint read path)."""
        slot = self._seed_slot(key, entity_id)
        slot[0] = pair.positive_seen
        slot[1] = pair.negative_seen
        slot[2] = [
            _raw_from_sample(s)
            for s in pair.samples
            if s.polarity == "positive"
        ]
        slot[3] = [
            _raw_from_sample(s)
            for s in pair.samples
            if s.polarity == "negative"
        ]

    def merge(self, other: "ProvenanceLedger") -> None:
        """Fold another ledger in (the reduce side of the pipeline).

        Totals add; samples concatenate in merge order and re-truncate
        per polarity, so the earliest-merged shards' samples win —
        deterministic because the runner merges shards sorted by id.
        """
        cap = self.samples_per_polarity
        for pair_key, (pos, neg, pos_s, neg_s) in other._slots.items():
            slot = self._slots.get(pair_key)
            if slot is None:
                slot = [0, 0, [], []]
                self._slots[pair_key] = slot
            slot[0] += pos
            slot[1] += neg
            room = cap - len(slot[2])
            if room > 0:
                slot[2].extend(pos_s[:room])
            room = cap - len(slot[3])
            if room > 0:
                slot[3].extend(neg_s[:room])

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def n_pairs(self) -> int:
        return len(self._slots)

    @property
    def n_samples(self) -> int:
        return sum(
            len(slot[2]) + len(slot[3])
            for slot in self._slots.values()
        )

    def for_pair(
        self, key: PropertyTypeKey, entity_id: str
    ) -> PairProvenance | None:
        slot = self._slots.get(
            (key.property, key.entity_type, entity_id)
        )
        if slot is None:
            return None
        return _pair_from_slot(slot)

    def pairs(
        self,
    ) -> Iterator[tuple[PropertyTypeKey, str, PairProvenance]]:
        for (prop, entity_type, entity_id), slot in self._slots.items():
            yield (
                PropertyTypeKey(
                    property=prop, entity_type=entity_type
                ),
                entity_id,
                _pair_from_slot(slot),
            )


class ProvenanceIndex:
    """Read-side lineage: pairs linked to their fitted model and
    convergence verdict — the object the sidecar file serializes and
    ``/explain`` reads."""

    def __init__(
        self,
        pairs: dict[PropertyTypeKey, dict[str, PairProvenance]],
        models: dict[PropertyTypeKey, ModelParameters] | None = None,
        convergence: dict[PropertyTypeKey, dict[str, Any]] | None = None,
        samples_per_polarity: int = DEFAULT_SAMPLES_PER_POLARITY,
    ) -> None:
        self._pairs = pairs
        self._models = models or {}
        self._convergence = convergence or {}
        self.samples_per_polarity = int(samples_per_polarity)

    @classmethod
    def from_run(
        cls,
        ledger: ProvenanceLedger,
        result: "SurveyorResult | None" = None,
        convergence: "list[ConvergenceRecord] | None" = None,
    ) -> "ProvenanceIndex":
        """Link a run's ledger to its fits and convergence records."""
        pairs: dict[PropertyTypeKey, dict[str, PairProvenance]] = {}
        for key, entity_id, pair in ledger.pairs():
            pairs.setdefault(key, {})[entity_id] = pair
        models: dict[PropertyTypeKey, ModelParameters] = {}
        by_text: dict[str, PropertyTypeKey] = {}
        if result is not None:
            for key, fit in result.fits.items():
                models[key] = fit.parameters
                by_text[str(key)] = key
        summaries: dict[PropertyTypeKey, dict[str, Any]] = {}
        for record in convergence or ():
            # ConvergenceRecord carries the key flattened to text;
            # join it back through the fits it was built from.
            key = by_text.get(record.key)
            if key is None:
                continue
            summaries[key] = {
                "verdict": record.verdict,
                "iterations": record.iterations,
                "converged": record.converged,
                "degraded": record.degraded,
            }
        return cls(
            pairs,
            models,
            summaries,
            samples_per_polarity=ledger.samples_per_polarity,
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def for_pair(
        self, key: PropertyTypeKey, entity_id: str
    ) -> PairProvenance | None:
        return self._pairs.get(key, {}).get(entity_id)

    def model_for(self, key: PropertyTypeKey) -> ModelParameters | None:
        return self._models.get(key)

    def convergence_for(
        self, key: PropertyTypeKey
    ) -> dict[str, Any] | None:
        summary = self._convergence.get(key)
        return dict(summary) if summary is not None else None

    def keys(self) -> list[PropertyTypeKey]:
        return list(self._pairs)

    def entities_for(self, key: PropertyTypeKey) -> list[str]:
        return sorted(self._pairs.get(key, {}))

    def models(self) -> dict[PropertyTypeKey, ModelParameters]:
        return dict(self._models)

    def convergence(self) -> dict[PropertyTypeKey, dict[str, Any]]:
        return {k: dict(v) for k, v in self._convergence.items()}

    @property
    def n_pairs(self) -> int:
        return sum(len(v) for v in self._pairs.values())

    @property
    def n_samples(self) -> int:
        return sum(
            len(pair.samples)
            for per_entity in self._pairs.values()
            for pair in per_entity.values()
        )
