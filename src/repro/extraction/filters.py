"""Intrinsicness filters (Section 4).

Two heuristics keep only statements claiming an *intrinsic* property:

* **Constriction subtrees** — a prepositional subtree hanging off the
  predicate ("New York is bad *for parking*") restricts the claim to an
  aspect of the entity; such statements are discarded.
* **Coreference requirement for adjectival modifiers** — an amod
  extraction is kept only when the modified noun is coreferential with
  the entity mention, i.e. it is a predicate nominal naming the
  entity's own type ("Snakes are dangerous *animals*", "Greece is a
  southern *country*"). A direct modifier on the mention itself
  ("*Southern* France is warm") refers to a part of the entity and is
  dropped.

The paper notes these checks are conservative but improve precision
significantly; Table 4 quantifies the recall cost.
"""

from __future__ import annotations

from ..nlp import lexicon
from ..nlp.deptree import DepNode, PREP


def has_constriction(predicate_root: DepNode) -> bool:
    """Whether the predicate carries a restricting prepositional subtree."""
    return any(child.deprel == PREP for child in predicate_root.children)


def is_coreferential_amod(head_noun: DepNode, entity_type: str) -> bool:
    """Whether an amod head noun corefers with the entity mention.

    True when the noun names the entity's own type (``city`` for a
    city): the sentence then predicates the property of the entity as
    a whole. Plural and synonym forms resolve through the type-noun
    lexicon.
    """
    indicated = lexicon.TYPE_NOUNS.get(head_noun.token.lemma)
    return indicated == entity_type
