"""Simulated Amazon Mechanical Turk workers.

Each worker answers a yes/no question per entity-property pair. A
worker sides with the dominant opinion with probability equal to the
case's curated agreement level — the same subjectivity mechanism the
Surveyor model posits for Web authors (parameter ``pA``), applied to
survey participants instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .ground_truth import GroundTruthCase


@dataclass(frozen=True, slots=True)
class Worker:
    """One simulated AMT worker."""

    worker_id: int

    def vote(self, case: GroundTruthCase, rng: random.Random) -> bool:
        """Answer "does the property apply?" for one case."""
        agrees = rng.random() < case.agreement
        return case.positive if agrees else not case.positive


def worker_pool(n_workers: int) -> list[Worker]:
    """A pool of ``n_workers`` distinct workers."""
    if n_workers < 1:
        raise ValueError("need at least one worker")
    return [Worker(worker_id=i) for i in range(n_workers)]
