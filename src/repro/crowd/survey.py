"""Survey execution and agreement analysis (Section 7.3).

Runs a worker pool over the evaluation cases and produces the
artefacts the paper derives from its AMT data: per-case vote counts
(Figure 10), the worker-agreement distribution (Figure 11), majority
labels with ties removed, and agreement-thresholded test subsets
(Figure 12's x-axis).
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..core.types import Polarity
from .ground_truth import GroundTruthCase
from .worker import Worker, worker_pool


@dataclass(frozen=True, slots=True)
class SurveyedCase:
    """One case with its collected votes."""

    case: GroundTruthCase
    votes_positive: int
    n_workers: int

    @property
    def votes_negative(self) -> int:
        return self.n_workers - self.votes_positive

    @property
    def agreement(self) -> int:
        """Workers sharing the majority opinion (the paper's measure)."""
        return max(self.votes_positive, self.votes_negative)

    @property
    def is_tie(self) -> bool:
        return self.votes_positive * 2 == self.n_workers

    @property
    def majority(self) -> Polarity:
        """The surveyed dominant opinion; NEUTRAL on ties."""
        if self.votes_positive * 2 > self.n_workers:
            return Polarity.POSITIVE
        if self.votes_positive * 2 < self.n_workers:
            return Polarity.NEGATIVE
        return Polarity.NEUTRAL


@dataclass
class SurveyResult:
    """All surveyed cases plus derived statistics."""

    cases: list[SurveyedCase]
    n_workers: int

    def without_ties(self) -> list[SurveyedCase]:
        """The evaluation test set: tied cases removed (paper: ~4%)."""
        return [case for case in self.cases if not case.is_tie]

    def tie_fraction(self) -> float:
        if not self.cases:
            return 0.0
        ties = sum(1 for case in self.cases if case.is_tie)
        return ties / len(self.cases)

    def mean_agreement(self) -> float:
        if not self.cases:
            return 0.0
        return sum(case.agreement for case in self.cases) / len(self.cases)

    def perfect_agreement_count(self) -> int:
        return sum(
            1 for case in self.cases if case.agreement == self.n_workers
        )

    def agreement_histogram(self) -> dict[int, int]:
        """Figure 11: #cases with agreement >= threshold, per threshold.

        Thresholds run from just above a tie to unanimous.
        """
        lowest = self.n_workers // 2 + 1
        return {
            threshold: sum(
                1 for case in self.cases if case.agreement >= threshold
            )
            for threshold in range(lowest, self.n_workers + 1)
        }

    def at_least(self, threshold: int) -> list[SurveyedCase]:
        """Non-tied cases with agreement >= threshold (Figure 12)."""
        return [
            case
            for case in self.without_ties()
            if case.agreement >= threshold
        ]

    def votes_for(
        self, entity_type: str, property_text: str
    ) -> dict[str, int]:
        """Figure 10: positive-vote counts per entity for one combo."""
        return {
            surveyed.case.entity_name: surveyed.votes_positive
            for surveyed in self.cases
            if surveyed.case.entity_type == entity_type
            and surveyed.case.property_text == property_text
        }


@dataclass
class SurveyRunner:
    """Runs a worker pool over ground-truth cases."""

    n_workers: int = 20
    seed: int = 42

    def run(self, cases: Iterable[GroundTruthCase]) -> SurveyResult:
        rng = random.Random(self.seed)
        pool = worker_pool(self.n_workers)
        surveyed = [
            self._survey_case(case, pool, rng) for case in cases
        ]
        return SurveyResult(cases=surveyed, n_workers=self.n_workers)

    @staticmethod
    def _survey_case(
        case: GroundTruthCase,
        pool: Sequence[Worker],
        rng: random.Random,
    ) -> SurveyedCase:
        votes = sum(1 for worker in pool if worker.vote(case, rng))
        return SurveyedCase(
            case=case, votes_positive=votes, n_workers=len(pool)
        )
