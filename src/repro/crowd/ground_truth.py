"""Curated ground truth for the 500 evaluation cases (Table 2).

The paper approximates the dominant opinion by polling 20 AMT workers
per entity-property pair. Offline we curate the dominant opinion and
an expected agreement level per pair; the simulated workers of
:mod:`repro.crowd.worker` then vote against this specification,
reproducing the agreement structure the paper reports (average 17/20,
a large perfectly-agreeing block, a small share of ties, and lower
agreement for combinations like ``boring sports``).

Every combination lists the entities holding the property
(``positives``); everything else of the type is negative. Agreement
defaults per combination and can be overridden per entity for the
genuinely controversial cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kb import seeds


@dataclass(frozen=True, slots=True)
class GroundTruthCase:
    """One evaluation case: a pair, its dominant opinion, agreement."""

    entity_name: str
    entity_type: str
    property_text: str
    positive: bool
    agreement: float

    def __post_init__(self) -> None:
        if not 0.5 <= self.agreement <= 1.0:
            raise ValueError(
                "agreement is the dominant share; must be in [0.5, 1]"
            )


@dataclass(frozen=True, slots=True)
class CombinationTruth:
    """Curated spec for one property-type combination."""

    entity_type: str
    property_text: str
    default_agreement: float
    positives: frozenset[str]
    overrides: dict[str, float]

    def case_for(self, entity_name: str) -> GroundTruthCase:
        name = entity_name.lower()
        return GroundTruthCase(
            entity_name=entity_name,
            entity_type=self.entity_type,
            property_text=self.property_text,
            positive=name in self.positives,
            agreement=self.overrides.get(name, self.default_agreement),
        )


def _combo(
    entity_type: str,
    property_text: str,
    default_agreement: float,
    positives: tuple[str, ...],
    overrides: dict[str, float] | None = None,
) -> CombinationTruth:
    return CombinationTruth(
        entity_type=entity_type,
        property_text=property_text,
        default_agreement=default_agreement,
        positives=frozenset(p.lower() for p in positives),
        overrides={
            k.lower(): v for k, v in (overrides or {}).items()
        },
    )


# ---------------------------------------------------------------------------
# Animals — Figure 10 calibrates "cute"
# ---------------------------------------------------------------------------

_ANIMALS = (
    _combo(
        "animal", "dangerous", 0.97,
        positives=(
            "spider", "scorpion", "tiger", "grizzly bear", "alligator",
            "white shark", "lion", "moose",
        ),
        overrides={
            "spider": 0.75, "moose": 0.55, "goose": 0.65,
            "monkey": 0.75, "camel": 0.80, "rat": 0.70,
        },
    ),
    _combo(
        "animal", "cute", 0.96,
        positives=(
            "pony", "koala", "kitten", "monkey", "beaver", "puppy",
        ),
        overrides={
            "monkey": 0.70, "beaver": 0.70, "frog": 0.55,
            "octopus": 0.65, "camel": 0.70, "goose": 0.75,
            "tiger": 0.60, "crow": 0.80, "rat": 0.75,
        },
    ),
    _combo(
        "animal", "big", 0.96,
        positives=(
            "tiger", "moose", "grizzly bear", "alligator", "camel",
            "white shark", "lion",
        ),
        overrides={
            "pony": 0.60, "alligator": 0.75, "monkey": 0.70,
            "octopus": 0.60, "goose": 0.75, "beaver": 0.80,
        },
    ),
    _combo(
        "animal", "friendly", 0.93,
        positives=(
            "pony", "koala", "kitten", "monkey", "beaver", "puppy",
        ),
        overrides={
            "koala": 0.70, "monkey": 0.65, "beaver": 0.60,
            "goose": 0.70, "camel": 0.60, "frog": 0.60,
            "crow": 0.65, "rat": 0.60, "octopus": 0.60,
        },
    ),
    _combo(
        "animal", "deadly", 0.97,
        positives=(
            "scorpion", "tiger", "grizzly bear", "alligator",
            "white shark", "lion", "spider",
        ),
        overrides={
            "spider": 0.60, "scorpion": 0.80, "moose": 0.70,
        },
    ),
)

# ---------------------------------------------------------------------------
# Celebrities — fictional personas with consistent traits
# ---------------------------------------------------------------------------

_CELEBRITIES = (
    _combo(
        "celebrity", "cool", 0.92,
        positives=(
            "Bruno Marsh", "Dexter Quill", "Felix Crane", "Kira Solano",
            "Liam Archer", "Nico Ferrant", "Quinn Abano", "Silas Norcross",
        ),
        overrides={
            "dexter quill": 0.62, "quinn abano": 0.66,
            "gloria stett": 0.66, "tessa winslow": 0.62,
        },
    ),
    _combo(
        "celebrity", "crazy", 0.92,
        positives=(
            "Dexter Quill", "Hector Vale", "Nico Ferrant", "Quinn Abano",
        ),
        overrides={
            "hector vale": 0.60, "bruno marsh": 0.64,
            "rosa delmar": 0.68,
        },
    ),
    _combo(
        "celebrity", "pretty", 0.93,
        positives=(
            "Ada Lively", "Carla Voss", "Elena Brook", "Iris Fontaine",
            "Mona Castell", "Opal Hayes", "Rosa Delmar", "Tessa Winslow",
        ),
        overrides={
            "kira solano": 0.60, "gloria stett": 0.64,
        },
    ),
    _combo(
        "celebrity", "quiet", 0.90,
        positives=(
            "Ada Lively", "Gloria Stett", "Jasper Reed", "Opal Hayes",
            "Pierce Walden",
        ),
        overrides={
            "jasper reed": 0.60, "silas norcross": 0.62,
            "elena brook": 0.64,
        },
    ),
    _combo(
        "celebrity", "young", 0.96,
        positives=(
            "Carla Voss", "Dexter Quill", "Elena Brook", "Kira Solano",
            "Quinn Abano", "Tessa Winslow",
        ),
        overrides={
            "liam archer": 0.62, "iris fontaine": 0.64,
        },
    ),
)

# ---------------------------------------------------------------------------
# Cities
# ---------------------------------------------------------------------------

_CITIES = (
    _combo(
        "city", "big", 0.98,
        positives=(
            "New York", "Tokyo", "Mumbai", "Cairo", "London",
            "Mexico City", "Lagos", "Sao Paulo", "Bangkok", "Istanbul",
            "Shanghai", "Singapore",
        ),
        overrides={
            "singapore": 0.75, "lagos": 0.80, "vienna": 0.60,
            "zurich": 0.70,
        },
    ),
    _combo(
        "city", "calm", 0.94,
        positives=(
            "Reykjavik", "Zurich", "Bruges", "Ljubljana", "Geneva",
            "Wellington", "Tallinn", "Vienna",
        ),
        overrides={
            "vienna": 0.70, "singapore": 0.60, "tokyo": 0.72,
        },
    ),
    _combo(
        "city", "cheap", 0.93,
        positives=(
            "Mumbai", "Cairo", "Lagos", "Mexico City", "Bangkok",
            "Istanbul",
        ),
        overrides={
            "mumbai": 0.80, "lagos": 0.75, "mexico city": 0.70,
            "istanbul": 0.70, "vienna": 0.65, "bruges": 0.60,
            "wellington": 0.60, "shanghai": 0.55, "sao paulo": 0.55,
            "ljubljana": 0.55, "tallinn": 0.60,
        },
    ),
    _combo(
        "city", "hectic", 0.95,
        positives=(
            "New York", "Tokyo", "Mumbai", "Cairo", "Mexico City",
            "Lagos", "Sao Paulo", "Bangkok", "Istanbul", "Shanghai",
            "London",
        ),
        overrides={
            "london": 0.75, "singapore": 0.60, "vienna": 0.72,
        },
    ),
    _combo(
        "city", "multicultural", 0.92,
        positives=(
            "New York", "London", "Singapore", "Sao Paulo", "Istanbul",
            "Mexico City",
        ),
        overrides={
            "istanbul": 0.70, "sao paulo": 0.70, "mexico city": 0.60,
            "tokyo": 0.70, "shanghai": 0.55, "cairo": 0.60,
            "wellington": 0.55, "geneva": 0.55,
        },
    ),
)

# ---------------------------------------------------------------------------
# Professions
# ---------------------------------------------------------------------------

_PROFESSIONS = (
    _combo(
        "profession", "dangerous", 0.97,
        positives=(
            "firefighter", "astronaut", "stuntman", "fisherman",
            "test pilot", "miner", "police officer", "soldier",
            "electrician",
        ),
        overrides={
            "electrician": 0.58, "fisherman": 0.72, "farmer": 0.66,
            "surgeon": 0.64, "falconer": 0.62, "beekeeper": 0.62,
        },
    ),
    _combo(
        "profession", "exciting", 0.93,
        positives=(
            "astronaut", "stuntman", "test pilot", "firefighter",
            "falconer", "surgeon", "police officer", "soldier",
        ),
        overrides={
            "soldier": 0.58, "falconer": 0.68, "surgeon": 0.70,
            "police officer": 0.70, "fisherman": 0.55,
            "glassblower": 0.55, "teacher": 0.62, "nurse": 0.62,
            "miner": 0.62, "beekeeper": 0.60,
        },
    ),
    _combo(
        "profession", "rare", 0.96,
        positives=(
            "astronaut", "stuntman", "test pilot", "falconer",
            "clockmaker", "glassblower", "beekeeper",
        ),
        overrides={
            "stuntman": 0.80, "glassblower": 0.80, "beekeeper": 0.70,
            "fisherman": 0.72,
        },
    ),
    _combo(
        "profession", "solid", 0.90,
        positives=(
            "accountant", "librarian", "nurse", "teacher", "plumber",
            "surgeon", "police officer", "farmer", "electrician",
        ),
        overrides={
            "librarian": 0.72, "police officer": 0.70, "farmer": 0.66,
            "astronaut": 0.60, "fisherman": 0.58, "miner": 0.55,
            "clockmaker": 0.55, "glassblower": 0.60, "soldier": 0.55,
            "beekeeper": 0.60,
        },
    ),
    _combo(
        "profession", "vital", 0.94,
        positives=(
            "firefighter", "nurse", "teacher", "surgeon",
            "police officer", "farmer", "plumber", "electrician",
            "soldier", "fisherman",
        ),
        overrides={
            "plumber": 0.70, "electrician": 0.70, "soldier": 0.66,
            "fisherman": 0.55, "beekeeper": 0.55, "astronaut": 0.60,
            "test pilot": 0.65, "librarian": 0.55, "accountant": 0.60,
            "miner": 0.55,
        },
    ),
)

# ---------------------------------------------------------------------------
# Sports — the paper singles out "boring sports" as low-agreement
# ---------------------------------------------------------------------------

_SPORTS = (
    _combo(
        "sport", "addictive", 0.88,
        positives=(
            "soccer", "golf", "basketball", "tennis", "motocross",
            "skydiving", "base jumping", "marathon running", "swimming",
            "chess boxing",
        ),
        overrides={
            "chess boxing": 0.55, "base jumping": 0.62,
            "motocross": 0.66, "swimming": 0.60, "boxing": 0.55,
            "free solo climbing": 0.58, "table tennis": 0.62,
            "badminton": 0.60, "ice hockey": 0.62, "rugby": 0.60,
        },
    ),
    _combo(
        "sport", "boring", 0.86,
        positives=("golf", "curling", "lawn bowls", "croquet"),
        overrides={
            "golf": 0.60, "curling": 0.68, "croquet": 0.70,
            "marathon running": 0.55, "swimming": 0.60,
            "table tennis": 0.62, "badminton": 0.58, "chess boxing": 0.55,
            "tennis": 0.70, "lawn bowls": 0.78,
        },
    ),
    _combo(
        "sport", "dangerous", 0.95,
        positives=(
            "base jumping", "free solo climbing", "motocross", "boxing",
            "bullfighting", "skydiving", "rugby", "ice hockey",
            "chess boxing",
        ),
        overrides={
            "skydiving": 0.78, "rugby": 0.70, "ice hockey": 0.64,
            "chess boxing": 0.58, "swimming": 0.70, "soccer": 0.72,
            "basketball": 0.72, "marathon running": 0.62,
        },
    ),
    _combo(
        "sport", "fast", 0.92,
        positives=(
            "motocross", "ice hockey", "basketball", "table tennis",
            "badminton", "tennis", "soccer", "skydiving", "base jumping",
            "boxing", "rugby",
        ),
        overrides={
            "soccer": 0.60, "tennis": 0.70, "basketball": 0.70,
            "skydiving": 0.68, "base jumping": 0.68, "boxing": 0.60,
            "rugby": 0.55, "marathon running": 0.60,
            "chess boxing": 0.55, "swimming": 0.55, "bullfighting": 0.55,
        },
    ),
    _combo(
        "sport", "popular", 0.96,
        positives=(
            "soccer", "basketball", "tennis", "swimming", "golf",
            "ice hockey", "rugby", "boxing", "badminton",
            "table tennis", "marathon running",
        ),
        overrides={
            "golf": 0.70, "ice hockey": 0.74, "rugby": 0.70,
            "boxing": 0.70, "badminton": 0.60, "table tennis": 0.60,
            "marathon running": 0.60, "curling": 0.70,
            "motocross": 0.55, "skydiving": 0.60,
            "free solo climbing": 0.70, "bullfighting": 0.70,
        },
    ),
)

ALL_COMBINATIONS: tuple[CombinationTruth, ...] = (
    *_ANIMALS, *_CELEBRITIES, *_CITIES, *_PROFESSIONS, *_SPORTS,
)

_ENTITIES_BY_TYPE: dict[str, tuple[str, ...]] = {
    "animal": seeds.FIGURE_10_ANIMALS,
    "celebrity": seeds.EVALUATION_CELEBRITIES,
    "city": seeds.EVALUATION_CITIES,
    "profession": seeds.EVALUATION_PROFESSIONS,
    "sport": seeds.EVALUATION_SPORTS,
}


def curated_cases() -> list[GroundTruthCase]:
    """All 500 evaluation cases (25 combinations x 20 entities)."""
    cases: list[GroundTruthCase] = []
    for combination in ALL_COMBINATIONS:
        for entity_name in _ENTITIES_BY_TYPE[combination.entity_type]:
            cases.append(combination.case_for(entity_name))
    return cases


def combination_for(
    entity_type: str, property_text: str
) -> CombinationTruth:
    """Look up one curated combination."""
    for combination in ALL_COMBINATIONS:
        if (
            combination.entity_type == entity_type
            and combination.property_text == property_text
        ):
            return combination
    raise KeyError(f"no curated truth for {property_text} {entity_type}")


def truths_by_property(entity_type: str) -> dict[str, dict[str, bool]]:
    """Per-property entity-name truth maps for one type.

    The shape :func:`repro.corpus.scenario.curated_scenario` consumes.
    """
    result: dict[str, dict[str, bool]] = {}
    for combination in ALL_COMBINATIONS:
        if combination.entity_type != entity_type:
            continue
        result[combination.property_text] = {
            name: name.lower() in combination.positives
            for name in _ENTITIES_BY_TYPE[entity_type]
        }
    return result
