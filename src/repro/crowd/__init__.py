"""Crowd substrate: curated ground truth and simulated AMT surveys."""

from .ground_truth import (
    ALL_COMBINATIONS,
    CombinationTruth,
    GroundTruthCase,
    combination_for,
    curated_cases,
    truths_by_property,
)
from .survey import SurveyedCase, SurveyResult, SurveyRunner
from .worker import Worker, worker_pool

__all__ = [
    "ALL_COMBINATIONS",
    "CombinationTruth",
    "GroundTruthCase",
    "SurveyResult",
    "SurveyRunner",
    "SurveyedCase",
    "Worker",
    "combination_for",
    "curated_cases",
    "truths_by_property",
    "worker_pool",
]
