"""Extraction quality against the generator's known truth.

Appendix B selects pattern version 4 for "the best tradeoff between
precision and recall", assessed there by eyeballing samples. With a
synthetic corpus we can measure it: the generator records exactly how
many positive/negative statements it rendered per pair, so extraction
recall (share of rendered statements recovered, per polarity cell) and
excess (extractions beyond the rendered truth — pattern false
positives, aspect leaks, polarity flips) are computable per pattern
version.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.types import PropertyTypeKey, SubjectiveProperty
from ..corpus.document import WebCorpus
from ..extraction.statement import EvidenceCounter


@dataclass(frozen=True, slots=True)
class ExtractionQuality:
    """Aggregate cell-level recall / excess for one extraction run."""

    label: str
    truth_statements: int
    recovered_statements: int
    excess_statements: int

    @property
    def recall(self) -> float:
        if self.truth_statements == 0:
            return 0.0
        return self.recovered_statements / self.truth_statements

    @property
    def excess_rate(self) -> float:
        """Excess per recovered statement — the noise the intrinsic
        filters exist to suppress."""
        if self.recovered_statements == 0:
            return 0.0
        return self.excess_statements / self.recovered_statements

    def row(self) -> str:
        return (
            f"{self.label:30s} recall={self.recall:5.3f} "
            f"excess_rate={self.excess_rate:5.3f} "
            f"(truth={self.truth_statements} "
            f"recovered={self.recovered_statements} "
            f"excess={self.excess_statements})"
        )


def extraction_quality(
    label: str, counter: EvidenceCounter, corpus: WebCorpus
) -> ExtractionQuality:
    """Score one extraction run against the corpus's recorded truth.

    Per (pair, polarity) cell, ``min(extracted, truth)`` counts as
    recovered and anything above truth as excess; extractions for
    pairs the generator never rendered are all excess.
    """
    if not corpus.truth:
        raise ValueError("corpus carries no truth provenance")
    truth_total = 0
    recovered = 0
    excess = 0
    seen_pairs: set[tuple[PropertyTypeKey, str]] = set()

    for (prop_text, entity_type, entity_id), (
        truth_pos,
        truth_neg,
    ) in corpus.truth.items():
        key = PropertyTypeKey(
            property=SubjectiveProperty.parse(prop_text),
            entity_type=entity_type,
        )
        seen_pairs.add((key, entity_id))
        counts = counter.get(key, entity_id)
        truth_total += truth_pos + truth_neg
        recovered += min(counts.positive, truth_pos) + min(
            counts.negative, truth_neg
        )
        excess += max(counts.positive - truth_pos, 0) + max(
            counts.negative - truth_neg, 0
        )

    # Extractions for pairs outside the generator's plan: all excess.
    for key in counter.keys():
        for entity_id, counts in counter.counts_for(key).items():
            if (key, entity_id) not in seen_pairs:
                excess += counts.total

    return ExtractionQuality(
        label=label,
        truth_statements=truth_total,
        recovered_statements=recovered,
        excess_statements=excess,
    )
