"""Coverage / precision / F1 against surveyed test cases (Section 7.4).

* **coverage** — solved cases / test cases (a case is solved when the
  interpreter emits a polarized decision);
* **precision** — correctly solved / solved, correctness judged
  against the surveyed majority opinion;
* **F1** — harmonic mean of precision and coverage.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..core.result import OpinionTable
from ..core.types import Polarity, PropertyTypeKey, SubjectiveProperty
from ..crowd.survey import SurveyedCase
from ..kb.entity import entity_id


@dataclass(frozen=True, slots=True)
class EvaluationScore:
    """Aggregate outcome of one interpreter on one test set."""

    name: str
    n_cases: int
    n_solved: int
    n_correct: int

    @property
    def coverage(self) -> float:
        return self.n_solved / self.n_cases if self.n_cases else 0.0

    @property
    def precision(self) -> float:
        return self.n_correct / self.n_solved if self.n_solved else 0.0

    @property
    def f1(self) -> float:
        total = self.precision + self.coverage
        if total == 0.0:
            return 0.0
        return 2.0 * self.precision * self.coverage / total

    def row(self) -> str:
        return (
            f"{self.name:22s} coverage={self.coverage:5.3f} "
            f"precision={self.precision:5.3f} f1={self.f1:5.3f}"
        )


def case_key(case: SurveyedCase) -> PropertyTypeKey:
    return PropertyTypeKey(
        property=SubjectiveProperty.parse(case.case.property_text),
        entity_type=case.case.entity_type,
    )


def case_entity_id(case: SurveyedCase) -> str:
    return entity_id(case.case.entity_type, case.case.entity_name)


def evaluate_table(
    name: str,
    table: OpinionTable,
    test_cases: Iterable[SurveyedCase],
) -> EvaluationScore:
    """Score one interpreter's opinion table against surveyed cases.

    Tied survey cases must already be removed (the paper drops them);
    passing one raises, as correctness would be undefined.
    """
    n_cases = 0
    n_solved = 0
    n_correct = 0
    for surveyed in test_cases:
        if surveyed.is_tie:
            raise ValueError(
                "tied survey cases must be removed before evaluation"
            )
        n_cases += 1
        predicted = table.polarity(case_entity_id(surveyed), case_key(surveyed))
        if predicted is Polarity.NEUTRAL:
            continue
        n_solved += 1
        if predicted is surveyed.majority:
            n_correct += 1
    return EvaluationScore(
        name=name, n_cases=n_cases, n_solved=n_solved, n_correct=n_correct
    )
