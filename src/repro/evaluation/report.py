"""One-shot reproduction report.

Runs the core experiments (survey statistics, Table 3, Figure 12's
endpoints, the four covariate studies, and a Table 5 sample) and
formats a single text report — the quick way to check the
reproduction on a new machine without the benchmark suite:

    python -m repro reproduce

With a tracer, each experiment is timed as a ``section`` span, so
``repro reproduce --trace r.jsonl`` followed by ``repro stats``
shows where the reproduction spends its time.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

from .harness import EvaluationHarness
from .random_sample import RandomSampleStudy
from .studies import APPENDIX_A_STUDIES, BIG_CITIES, run_study


@dataclass
class ReproductionReport:
    """Collected sections of the one-shot run."""

    sections: list[tuple[str, list[str]]]

    def text(self) -> str:
        blocks = []
        for title, lines in self.sections:
            underline = "-" * len(title)
            blocks.append("\n".join((title, underline, *lines)))
        return "\n\n".join(blocks)


def full_report(
    seed: int = 2015,
    fast: bool = True,
    tracer: object | None = None,
    registry: object | None = None,
) -> ReproductionReport:
    """Run the reproduction and collect a report.

    ``fast`` shrinks the Table 5 sample (60 combinations instead of
    803); the rest is identical to the benchmark configuration.
    ``tracer``/``registry`` are duck-typed observability sinks (see
    :mod:`repro.obs`): each experiment opens a ``section`` span and
    bumps the section counter.
    """
    sections: list[tuple[str, list[str]]] = []

    def section_span(name: str):
        if tracer is None:
            return nullcontext()
        return tracer.span(name, kind="section")

    def add_section(title: str, lines: list[str]) -> None:
        sections.append((title, lines))
        if registry is not None:
            registry.inc("repro_report_sections_total")

    with section_span("survey"):
        harness = EvaluationHarness(seed=seed)
        survey = harness.survey
        add_section(
            "Survey (Section 7.3)",
            [
                f"cases: {len(survey.cases)}",
                f"mean agreement: {survey.mean_agreement():.2f}/20 "
                f"(paper: 17/20)",
                f"ties: {survey.tie_fraction():.1%} (paper: ~4%)",
                f"perfect agreement: {survey.perfect_agreement_count()}",
            ],
        )

    with section_span("table3"):
        table3 = harness.table3()
        add_section(
            "Table 3 — method comparison",
            [score.row() for score in table3],
        )

    with section_span("figure12"):
        figure12 = harness.figure12()
        lines = []
        for series in figure12:
            precisions = series.precisions()
            lines.append(
                f"{series.name:22s} precision {precisions[0]:.2f} -> "
                f"{precisions[-1]:.2f} across agreement thresholds"
            )
        add_section("Figure 12 — precision vs agreement", lines)

    with section_span("covariate-studies"):
        lines = []
        for spec in (BIG_CITIES, *APPENDIX_A_STUDIES):
            outcome = run_study(spec, seed=seed)
            lines.append(f"[{spec.name}]")
            lines.append("  " + outcome.majority.row())
            lines.append("  " + outcome.surveyor.row())
        add_section("Figures 3 / 13 — covariate studies", lines)

    with section_span("table5"):
        n_combinations = 60 if fast else 803
        table5 = RandomSampleStudy(
            n_combinations=n_combinations, seed=seed
        ).run()
        add_section(
            f"Table 5 — random sample ({n_combinations} combinations)",
            [score.row() for score in table5],
        )

    return ReproductionReport(sections=sections)
