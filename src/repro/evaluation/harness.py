"""The Section 7 evaluation harness.

Builds the full Table 2 world — five entity types, five properties
each, curated dominant opinions — generates Web evidence from the
user-behaviour model with *heterogeneous per-combination biases* and
*heavy-tailed entity popularity*, surveys a simulated worker pool, and
scores the four interpreters. One harness instance backs Table 3,
Figures 10-12, and (with random sampling) Table 5.

Two bias dimensions are deliberately varied across combinations, since
the paper's core argument is that they do not generalize:

* the polarity bias ``rate_positive / rate_negative`` spans ~0.5x to
  ~20x (people praise cuteness but warn about danger);
* the per-entity popularity is heavy-tailed, so roughly half of all
  pairs receive no statements at all — the regime where counting
  methods lose coverage and Surveyor infers from silence.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from functools import cached_property

from ..baselines import Interpreter, standard_interpreters
from ..core.result import OpinionTable
from ..corpus.author import TrueParameters
from ..corpus.generator import CorpusGenerator, NoiseProfile
from ..corpus.scenario import Scenario, curated_scenario
from ..crowd.ground_truth import ALL_COMBINATIONS, truths_by_property
from ..crowd.survey import SurveyResult, SurveyRunner
from ..extraction.statement import EvidenceCounter
from ..kb.knowledge_base import KnowledgeBase
from ..kb.seeds import evaluation_kb
from ..pipeline.runner import SurveyorPipeline
from .agreement import AgreementSeries, series_for
from .metrics import EvaluationScore, evaluate_table

#: Statement-rate palette: (rate_positive, rate_negative) pairs.
#: Dominated by the Web's strong bias toward positive statements
#: (Figure 3: negative counts are orders of magnitude below positive
#: ones) with a minority of warn-style combinations where negatives
#: dominate ("safe cities"). The ratio spread defeats SMV's single
#: global correction while the per-combination EM adapts.
RATE_PALETTE: tuple[tuple[float, float], ...] = (
    (40.0, 0.5), (30.0, 1.5), (50.0, 0.4), (25.0, 0.5), (35.0, 2.5),
    (45.0, 0.6), (20.0, 1.2), (28.0, 3.0), (15.0, 5.0), (12.0, 10.0),
)

EVALUATION_TYPES = (
    "animal", "celebrity", "city", "profession", "sport",
)


def stable_index(text: str, modulus: int) -> int:
    """Deterministic, platform-independent index from a string."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % modulus


def stable_fraction(text: str) -> float:
    """Deterministic float in [0, 1) from a string."""
    return stable_index(text, 10_000) / 10_000.0


def author_agreement(worker_agreement: float) -> float:
    """Author agreement ``pA`` derived from the worker agreement level.

    The two populations correlate (the paper finds lower worker
    agreement exactly where it expects lower ``pA``, e.g. boring
    sports) but authors are noisier than a focused survey; the mapping
    compresses toward the middle.
    """
    return min(0.95, max(0.6, 0.40 + 0.40 * worker_agreement))


def combination_parameters(
    entity_type: str, property_text: str
) -> TrueParameters:
    """Generative parameters for one combination.

    The author agreement follows the curated worker-agreement level;
    the statement rates come from the palette via a stable hash of the
    combination name, so biases vary across combinations without any
    coordination — the paper's central premise.
    """
    for combination in ALL_COMBINATIONS:
        if (
            combination.entity_type == entity_type
            and combination.property_text == property_text
        ):
            worker_agreement = combination.default_agreement
            break
    else:
        worker_agreement = 0.85
    rate_positive, rate_negative = RATE_PALETTE[
        stable_index(f"{property_text}/{entity_type}", len(RATE_PALETTE))
    ]
    return TrueParameters(
        agreement=author_agreement(worker_agreement),
        rate_positive=rate_positive,
        rate_negative=rate_negative,
    )


def entity_popularity(entity_id: str, seed: int) -> float:
    """Heavy-tailed per-entity fame multiplier.

    Roughly half the entities are rare enough to stay silent: the
    regime that separates Surveyor from the counting baselines
    (Figure 9(a): most entities receive almost no statements).
    """
    rng = random.Random(f"{seed}/{entity_id}")
    roll = rng.random()
    if roll < 0.55:
        return rng.uniform(0.005, 0.03)
    if roll < 0.8:
        return rng.uniform(0.2, 0.6)
    return rng.uniform(0.8, 2.0)


def occurrence_boost(entity_type: str, property_text: str) -> float:
    """Per-combination occurrence bias (Section 2).

    Entities that hold a property are written about more often than
    entities that do not (big cities are mentioned more than small
    ones); the boost multiplies the mention rate of positive-truth
    entities and varies per combination.
    """
    return 5.0 + 5.0 * stable_fraction(
        f"boost/{property_text}/{entity_type}"
    )


def spurious_rates(
    entity_type: str, property_text: str
) -> tuple[float, float]:
    """Fame-independent chatter rates per combination (Section 2).

    The Web yields a trickle of positive-form statements about nearly
    any entity-adjective pairing; negative-form chatter is an order of
    magnitude rarer still. Majority vote has no defence against this
    floor, while the per-combination model absorbs it into the
    disagreeing-author rate.
    """
    fraction = stable_fraction(f"spurious/{property_text}/{entity_type}")
    positive = 0.18 + 0.32 * fraction
    return positive, 0.06 * positive


@dataclass
class EvaluationHarness:
    """End-to-end Section 7 experiment driver."""

    seed: int = 2015
    n_workers: int = 20
    use_text_pipeline: bool = False
    noise: NoiseProfile = field(default_factory=NoiseProfile)
    kb: KnowledgeBase = field(default_factory=evaluation_kb)

    # ------------------------------------------------------------------
    # World construction
    # ------------------------------------------------------------------
    def scenarios(self) -> list[Scenario]:
        """One curated scenario per evaluation type.

        Per-entity fame is shared across the type's properties; on top
        of it, each combination's occurrence boost raises the mention
        rate of the entities that actually hold the property.
        """
        scenarios = []
        for entity_type in EVALUATION_TYPES:
            entities = self.kb.entities_of_type(entity_type)
            truths = truths_by_property(entity_type)
            params = {
                property_text: combination_parameters(
                    entity_type, property_text
                )
                for property_text in truths
            }
            fame = {
                entity.id: entity_popularity(entity.id, self.seed)
                for entity in entities
            }
            by_name = {entity.name.lower(): entity.id for entity in entities}
            popularity_by_property: dict[str, dict[str, float]] = {}
            spurious_by_property: dict[str, tuple[float, float]] = {}
            for property_text, truth_by_name in truths.items():
                boost = occurrence_boost(entity_type, property_text)
                popularity_by_property[property_text] = {
                    by_name[name.lower()]: fame[by_name[name.lower()]]
                    * (boost if positive else 1.0)
                    for name, positive in truth_by_name.items()
                }
                spurious_by_property[property_text] = spurious_rates(
                    entity_type, property_text
                )
            scenarios.append(
                curated_scenario(
                    name=f"eval-{entity_type}",
                    entities=entities,
                    truths=truths,
                    params_by_property=params,
                    popularity_by_property=popularity_by_property,
                    spurious_by_property=spurious_by_property,
                )
            )
        return scenarios

    # ------------------------------------------------------------------
    # Evidence
    # ------------------------------------------------------------------
    @cached_property
    def evidence(self) -> EvidenceCounter:
        """Evidence counts for the whole evaluation world.

        With ``use_text_pipeline`` the corpus is rendered to English
        and run through the annotate-extract pipeline; otherwise the
        counts are probed directly from the generative model (the two
        agree up to rendering noise).
        """
        generator = CorpusGenerator(seed=self.seed, noise=self.noise)
        scenarios = self.scenarios()
        if not self.use_text_pipeline:
            return generator.probe(*scenarios)
        corpus = generator.generate(*scenarios)
        pipeline = SurveyorPipeline(
            kb=self.kb, occurrence_threshold=1
        )
        return pipeline.run(corpus).evidence

    # ------------------------------------------------------------------
    # Survey
    # ------------------------------------------------------------------
    @cached_property
    def survey(self) -> SurveyResult:
        """20 simulated workers over all 500 cases (Section 7.3)."""
        from ..crowd.ground_truth import curated_cases

        runner = SurveyRunner(n_workers=self.n_workers, seed=self.seed)
        return runner.run(curated_cases())

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def interpret_all(
        self, interpreters: list[Interpreter] | None = None
    ) -> dict[str, OpinionTable]:
        """Run each interpreter once over the shared evidence."""
        interpreters = interpreters or standard_interpreters()
        evidence = self.evidence.as_evidence()
        return {
            interpreter.name: interpreter.interpret(evidence, self.kb)
            for interpreter in interpreters
        }

    def table3(
        self, interpreters: list[Interpreter] | None = None
    ) -> list[EvaluationScore]:
        """Coverage / precision / F1 per method (Table 3)."""
        tables = self.interpret_all(interpreters)
        test_cases = self.survey.without_ties()
        return [
            evaluate_table(name, table, test_cases)
            for name, table in tables.items()
        ]

    def figure12(
        self, interpreters: list[Interpreter] | None = None
    ) -> list[AgreementSeries]:
        """Precision/coverage vs agreement threshold per method."""
        tables = self.interpret_all(interpreters)
        return [
            series_for(name, table, self.survey)
            for name, table in tables.items()
        ]
