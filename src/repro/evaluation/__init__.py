"""Evaluation: metrics, agreement curves, correlation, the harness."""

from .agreement import (
    AgreementPoint,
    AgreementSeries,
    agreement_thresholds,
    case_counts_by_threshold,
    series_for,
)
from .correlation import (
    CorrelationReport,
    PolarityPoint,
    correlation_report,
    polarity_points,
)
from .harness import (
    EVALUATION_TYPES,
    EvaluationHarness,
    combination_parameters,
    entity_popularity,
    occurrence_boost,
    spurious_rates,
)
from .ascii_plots import bar_chart, polarity_scatter, sparkline
from .extraction_quality import ExtractionQuality, extraction_quality
from .metrics import EvaluationScore, evaluate_table
from .random_sample import RandomCase, RandomSampleStudy
from .statistics import (
    ExtractionStatistics,
    PercentileCurve,
    extraction_statistics,
)
from .studies import (
    APPENDIX_A_STUDIES,
    BIG_CITIES,
    BIG_LAKES,
    HIGH_MOUNTAINS,
    StudyOutcome,
    StudySpec,
    WEALTHY_COUNTRIES,
    run_study,
)
from .tradeoff import (
    DEFAULT_MARGINS,
    TradeoffPoint,
    decide_with_margin,
    tradeoff_curve,
)

__all__ = [
    "APPENDIX_A_STUDIES",
    "AgreementPoint",
    "AgreementSeries",
    "BIG_CITIES",
    "BIG_LAKES",
    "CorrelationReport",
    "EVALUATION_TYPES",
    "EvaluationHarness",
    "EvaluationScore",
    "ExtractionQuality",
    "ExtractionStatistics",
    "extraction_quality",
    "HIGH_MOUNTAINS",
    "PercentileCurve",
    "PolarityPoint",
    "RandomCase",
    "RandomSampleStudy",
    "DEFAULT_MARGINS",
    "StudyOutcome",
    "StudySpec",
    "TradeoffPoint",
    "WEALTHY_COUNTRIES",
    "agreement_thresholds",
    "bar_chart",
    "decide_with_margin",
    "tradeoff_curve",
    "case_counts_by_threshold",
    "combination_parameters",
    "correlation_report",
    "entity_popularity",
    "evaluate_table",
    "extraction_statistics",
    "occurrence_boost",
    "polarity_points",
    "polarity_scatter",
    "run_study",
    "series_for",
    "sparkline",
    "spurious_rates",
]
