"""Agreement-thresholded evaluation series (Figures 11 and 12).

Figure 11 counts test cases whose worker agreement reaches each
threshold; Figure 12 re-scores every interpreter on each thresholded
subset, showing that Surveyor's precision grows with agreement while
majority vote's does not.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.result import OpinionTable
from ..crowd.survey import SurveyResult
from .metrics import EvaluationScore, evaluate_table


@dataclass(frozen=True, slots=True)
class AgreementPoint:
    """Scores of one interpreter at one agreement threshold."""

    threshold: int
    score: EvaluationScore


@dataclass(frozen=True, slots=True)
class AgreementSeries:
    """Figure 12 series for one interpreter."""

    name: str
    points: tuple[AgreementPoint, ...]

    def precisions(self) -> list[float]:
        return [point.score.precision for point in self.points]

    def coverages(self) -> list[float]:
        return [point.score.coverage for point in self.points]

    def thresholds(self) -> list[int]:
        return [point.threshold for point in self.points]


def agreement_thresholds(survey: SurveyResult) -> list[int]:
    """Thresholds from just-above-tie to unanimity (11..20 for 20)."""
    lowest = survey.n_workers // 2 + 1
    return list(range(lowest, survey.n_workers + 1))


def case_counts_by_threshold(survey: SurveyResult) -> dict[int, int]:
    """Figure 11: #cases with agreement >= threshold."""
    return {
        threshold: len(survey.at_least(threshold))
        for threshold in agreement_thresholds(survey)
    }


def series_for(
    name: str,
    table: OpinionTable,
    survey: SurveyResult,
) -> AgreementSeries:
    """Score one interpreter across all agreement thresholds."""
    points = []
    for threshold in agreement_thresholds(survey):
        subset = survey.at_least(threshold)
        if not subset:
            break
        points.append(
            AgreementPoint(
                threshold=threshold,
                score=evaluate_table(name, table, subset),
            )
        )
    return AgreementSeries(name=name, points=tuple(points))
