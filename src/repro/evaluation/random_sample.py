"""Random-sample evaluation (Appendix D, Table 5).

The paper re-runs the four-way comparison on 803 property-type
combinations sampled from its full result set, seven entities each —
a long-tail population (obscure diseases, minor artists, car models)
where almost nothing is mentioned on the Web. Coverage collapses for
the counting baselines while Surveyor still decides nearly every pair.

We synthesize the same regime: a battery of long-tail entity types with
machine-generated entity names, random adjective properties, very low
fame, and ground truth labeled directly (the paper used expert
annotation rather than AMT for these obscure entities).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..baselines import Interpreter, standard_interpreters
from ..core.result import OpinionTable
from ..core.types import Polarity, PropertyTypeKey, SubjectiveProperty
from ..corpus.author import TrueParameters
from ..corpus.generator import CorpusGenerator
from ..corpus.scenario import PropertySpec, Scenario
from ..kb.entity import Entity
from ..kb.knowledge_base import KnowledgeBase
from .metrics import EvaluationScore

#: Long-tail type vocabulary; names echo the paper's examples
#: ("Hiatal hernia", "Maria Lusitano", "Ford Cougar").
_TAIL_TYPES = (
    "disease", "artist", "car model", "village", "asteroid", "moth",
    "fern", "mineral", "dialect", "folk dance",
)

_NAME_SYLLABLES = (
    "ka", "ri", "mo", "ta", "lu", "ven", "dor", "sil", "ba", "ne",
    "gra", "phi", "os", "ter", "ul", "mi", "zan", "cor", "hel", "ix",
)

_TAIL_ADJECTIVES = (
    "rare", "major", "famous", "dangerous", "popular", "common",
    "exotic", "beautiful", "odd", "significant", "obscure", "harmless",
    "remarkable", "serious", "minor", "graceful", "vivid", "ancient",
)


@dataclass(frozen=True, slots=True)
class RandomCase:
    """One sampled test case with its direct expert label."""

    entity_id: str
    key: PropertyTypeKey
    positive: bool


@dataclass
class RandomSampleStudy:
    """Builds and scores the Appendix D world.

    Parameters mirror the paper: ``n_combinations`` property-type
    pairs *sampled from the mined result set* — i.e. combinations
    whose background entity population produced enough statements for
    a model — with ``entities_per_combination`` randomly drawn (and
    hence mostly obscure) test entities each, plus
    ``n_precision_cases`` expert-labeled cases for precision. Types
    carry two properties each, as an entity type sampled twice would
    in the paper.
    """

    n_combinations: int = 803
    entities_per_combination: int = 7
    background_entities: int = 25
    n_precision_cases: int = 80
    seed: int = 2015
    positive_share: float = 0.25
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_combinations < 1:
            raise ValueError("need at least one combination")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    # World
    # ------------------------------------------------------------------
    def build(self) -> tuple[KnowledgeBase, list[Scenario], list[RandomCase]]:
        """Synthesize the KB, scenarios, and the test-case list."""
        kb = KnowledgeBase()
        scenarios: list[Scenario] = []
        cases: list[RandomCase] = []
        n_types = (self.n_combinations + 1) // 2

        for type_index in range(n_types):
            entity_type = (
                f"{self._rng.choice(_TAIL_TYPES)}_{type_index:04d}"
            )
            n_entities = (
                self.entities_per_combination + self.background_entities
            )
            names: set[str] = set()
            while len(names) < n_entities:
                names.add(self._entity_name())
            entities = [
                Entity.create(name, entity_type)
                for name in sorted(names)
            ]
            kb.add_all(entities)
            # The sampled test entities are obscure; the background
            # population carries the statements that qualified the
            # combination for the result set in the first place.
            test_entities = entities[: self.entities_per_combination]
            popularity = {
                entity.id: self._tail_popularity()
                for entity in test_entities
            }
            popularity.update(
                {
                    entity.id: self._background_popularity()
                    for entity in entities[self.entities_per_combination:]
                }
            )

            n_properties = min(
                2, self.n_combinations - 2 * type_index
            )
            adjectives = self._rng.sample(_TAIL_ADJECTIVES, n_properties)
            specs = []
            for adjective in adjectives:
                property_ = SubjectiveProperty(adjective)
                ground_truth = {
                    entity.id: (
                        Polarity.POSITIVE
                        if self._rng.random() < self.positive_share
                        else Polarity.NEGATIVE
                    )
                    for entity in entities
                }
                specs.append(
                    PropertySpec(
                        property=property_,
                        params=self._tail_parameters(),
                        ground_truth=ground_truth,
                        popularity=popularity,
                        spurious_positive_rate=0.02,
                    )
                )
                key = PropertyTypeKey(
                    property=property_, entity_type=entity_type
                )
                for entity in test_entities:
                    cases.append(
                        RandomCase(
                            entity_id=entity.id,
                            key=key,
                            positive=ground_truth[entity.id]
                            is Polarity.POSITIVE,
                        )
                    )
            scenarios.append(
                Scenario(
                    name=f"tail-{entity_type}",
                    entity_type=entity_type,
                    entities=tuple(entities),
                    specs=tuple(specs),
                )
            )
        return kb, scenarios, cases

    def _entity_name(self) -> str:
        n_syllables = self._rng.randint(2, 4)
        name = "".join(
            self._rng.choice(_NAME_SYLLABLES) for _ in range(n_syllables)
        )
        return name.capitalize()

    def _tail_popularity(self) -> float:
        """Sampled test entities: practically unmentioned."""
        roll = self._rng.random()
        if roll < 0.8:
            return self._rng.uniform(0.0002, 0.005)
        if roll < 0.95:
            return self._rng.uniform(0.02, 0.15)
        return self._rng.uniform(0.3, 1.0)

    def _background_popularity(self) -> float:
        """Background population: ordinary fame mix."""
        roll = self._rng.random()
        if roll < 0.5:
            return self._rng.uniform(0.01, 0.1)
        if roll < 0.85:
            return self._rng.uniform(0.2, 0.8)
        return self._rng.uniform(1.0, 2.5)

    def _tail_parameters(self) -> TrueParameters:
        return TrueParameters(
            agreement=self._rng.uniform(0.75, 0.92),
            rate_positive=self._rng.uniform(10.0, 40.0),
            rate_negative=self._rng.uniform(0.5, 4.0),
        )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def run(
        self, interpreters: list[Interpreter] | None = None
    ) -> list[EvaluationScore]:
        """Table 5: coverage on all cases, precision on a subsample."""
        interpreters = interpreters or standard_interpreters()
        kb, scenarios, cases = self.build()
        evidence = (
            CorpusGenerator(seed=self.seed).probe(*scenarios).as_evidence()
        )
        precision_cases = self._precision_sample(cases)
        scores = []
        for interpreter in interpreters:
            table = interpreter.interpret(evidence, kb)
            scores.append(
                self._score(interpreter.name, table, cases, precision_cases)
            )
        return scores

    def _precision_sample(
        self, cases: list[RandomCase]
    ) -> list[RandomCase]:
        """One randomly chosen case from each of ~80 combinations.

        Mirrors Appendix D: 80 combinations, one entity each, labeled
        directly.
        """
        rng = random.Random(self.seed + 1)
        by_key: dict[PropertyTypeKey, list[RandomCase]] = {}
        for case in cases:
            by_key.setdefault(case.key, []).append(case)
        keys = sorted(by_key, key=str)
        rng.shuffle(keys)
        return [
            rng.choice(by_key[key])
            for key in keys[: self.n_precision_cases]
        ]

    @staticmethod
    def _score(
        name: str,
        table: OpinionTable,
        coverage_cases: list[RandomCase],
        precision_cases: list[RandomCase],
    ) -> EvaluationScore:
        """Coverage over all cases; correctness over the subsample.

        The returned score's ``n_cases``/``n_solved`` reflect the full
        coverage set while ``n_correct`` (and thus precision) reflects
        the expert-labeled subsample, matching the paper's protocol.
        """
        n_solved = sum(
            1
            for case in coverage_cases
            if table.polarity(case.entity_id, case.key)
            is not Polarity.NEUTRAL
        )
        solved_precision = 0
        correct = 0
        for case in precision_cases:
            predicted = table.polarity(case.entity_id, case.key)
            if predicted is Polarity.NEUTRAL:
                continue
            solved_precision += 1
            truth = (
                Polarity.POSITIVE if case.positive else Polarity.NEGATIVE
            )
            if predicted is truth:
                correct += 1
        # Scale correctness back onto the full-coverage denominator so
        # EvaluationScore's derived precision equals the subsample's.
        precision = correct / solved_precision if solved_precision else 0.0
        return EvaluationScore(
            name=name,
            n_cases=len(coverage_cases),
            n_solved=n_solved,
            n_correct=round(precision * n_solved),
        )
