"""Canonical empirical-study setups (Section 2 and Appendix A).

Four covariate-grounded studies, each pairing a subjective property
with an objective attribute it should correlate with:

* ``big city`` over 461 Californian cities vs population (Figure 3);
* ``wealthy country`` vs GDP per capita (Figure 13a);
* ``big lake`` over Swiss lakes vs area (Figure 13b);
* ``high mountain`` over British mountains vs relative height
  (Figure 13c).

Each study yields probe-mode evidence, then compares majority vote
against the probabilistic model on decided fraction and
polarity-covariate correlation — the qualitative comparison the paper
presents in Figures 3(c)/(d) and 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.majority import MajorityVote
from ..baselines.surveyor_adapter import SurveyorInterpreter
from ..core.types import PropertyTypeKey, SubjectiveProperty
from ..corpus.author import TrueParameters
from ..corpus.generator import CorpusGenerator
from ..corpus.scenario import Scenario, covariate_scenario
from ..kb import seeds
from ..kb.entity import Entity
from ..kb.knowledge_base import KnowledgeBase
from .correlation import (
    CorrelationReport,
    correlation_report,
    polarity_points,
)


@dataclass(frozen=True, slots=True)
class StudySpec:
    """One covariate study definition."""

    name: str
    property_text: str
    attribute: str
    threshold: float
    entities_factory: object  # () -> list[Entity]
    occurrence_exponent: float = 0.35
    params: TrueParameters = field(
        default_factory=lambda: TrueParameters(
            agreement=0.85, rate_positive=30.0, rate_negative=1.5
        )
    )
    spurious_positive_rate: float = 0.3

    def entities(self) -> list[Entity]:
        return self.entities_factory()  # type: ignore[operator]

    def scenario(self) -> Scenario:
        return covariate_scenario(
            name=self.name,
            entities=self.entities(),
            property_text=self.property_text,
            attribute=self.attribute,
            threshold=self.threshold,
            params=self.params,
            occurrence_exponent=self.occurrence_exponent,
            spurious_positive_rate=self.spurious_positive_rate,
            spurious_negative_rate=self.spurious_positive_rate * 0.06,
        )

    def key(self) -> PropertyTypeKey:
        entity_type = self.entities()[0].entity_type
        return PropertyTypeKey(
            property=SubjectiveProperty.parse(self.property_text),
            entity_type=entity_type,
        )


#: Figure 3: 461 Californian cities, "big" vs population.
BIG_CITIES = StudySpec(
    name="fig3-big-cities",
    property_text="big",
    attribute="population",
    threshold=250_000.0,
    entities_factory=seeds.california_cities,
)

#: Figure 13(a): countries, "wealthy" vs GDP per capita.
WEALTHY_COUNTRIES = StudySpec(
    name="fig13a-wealthy-countries",
    property_text="wealthy",
    attribute="gdp_per_capita",
    threshold=30_000.0,
    entities_factory=seeds.countries,
    params=TrueParameters(
        agreement=0.85, rate_positive=25.0, rate_negative=2.0
    ),
)

#: Figure 13(b): Swiss lakes, "big" vs area.
BIG_LAKES = StudySpec(
    name="fig13b-big-lakes",
    property_text="big",
    attribute="area_km2",
    threshold=40.0,
    entities_factory=seeds.swiss_lakes,
    params=TrueParameters(
        agreement=0.88, rate_positive=18.0, rate_negative=1.0
    ),
    spurious_positive_rate=0.1,
)

#: Figure 13(c): British mountains, "high" vs relative height.
HIGH_MOUNTAINS = StudySpec(
    name="fig13c-high-mountains",
    property_text="high",
    attribute="relative_height_m",
    threshold=850.0,
    entities_factory=seeds.british_mountains,
    params=TrueParameters(
        agreement=0.87, rate_positive=20.0, rate_negative=1.2
    ),
    spurious_positive_rate=0.1,
)

APPENDIX_A_STUDIES: tuple[StudySpec, ...] = (
    WEALTHY_COUNTRIES, BIG_LAKES, HIGH_MOUNTAINS,
)


@dataclass(frozen=True, slots=True)
class StudyOutcome:
    """Majority-vote vs probabilistic-model comparison for one study."""

    study: str
    majority: CorrelationReport
    surveyor: CorrelationReport

    def summary(self) -> str:
        return "\n".join(
            (f"[{self.study}]", self.majority.row(), self.surveyor.row())
        )


def run_study(spec: StudySpec, seed: int = 2015) -> StudyOutcome:
    """Execute one covariate study end to end (probe-mode evidence)."""
    scenario = spec.scenario()
    kb = KnowledgeBase(scenario.entities)
    evidence = CorpusGenerator(seed=seed).probe(scenario).as_evidence()
    key = spec.key()
    entities = list(scenario.entities)

    majority_table = MajorityVote().interpret(evidence, kb)
    surveyor_table = SurveyorInterpreter(occurrence_threshold=1).interpret(
        evidence, kb
    )
    return StudyOutcome(
        study=spec.name,
        majority=correlation_report(
            "Majority Vote",
            polarity_points(majority_table, key, entities, spec.attribute),
        ),
        surveyor=correlation_report(
            "Surveyor",
            polarity_points(surveyor_table, key, entities, spec.attribute),
        ),
    )
