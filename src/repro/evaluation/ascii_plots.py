"""Terminal-friendly plots for the paper's figures.

Examples and benchmarks run offline without a display, so the figures
are rendered as ASCII: a log-x scatter for Figure 3/13-style
polarity-vs-covariate plots and a bar panel for Figure 10/11-style
counts.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..core.types import Polarity
from .correlation import PolarityPoint

_POLARITY_ROW = {Polarity.POSITIVE: 0, Polarity.NEUTRAL: 1,
                 Polarity.NEGATIVE: 2}
_ROW_LABELS = ("+", "N", "-")


def polarity_scatter(
    points: Sequence[PolarityPoint],
    width: int = 72,
    label: str = "covariate",
) -> str:
    """Figure 3(c)/(d)-style plot: polarity rows over a log-x axis.

    Each column is a log-covariate bucket; a character is drawn in the
    +, N, or − row when any entity in the bucket carries that
    polarity, with digits 2-9 marking multiplicity.
    """
    finite = [p for p in points if p.covariate > 0]
    if not finite:
        return "(no data)"
    low = math.log10(min(p.covariate for p in finite))
    high = math.log10(max(p.covariate for p in finite))
    span = max(high - low, 1e-9)
    grid = [[0] * width for _ in range(3)]
    for point in finite:
        column = int(
            (math.log10(point.covariate) - low) / span * (width - 1)
        )
        row = _POLARITY_ROW[point.polarity]
        grid[row][column] += 1

    lines = []
    for row_index, row in enumerate(grid):
        cells = []
        for count in row:
            if count == 0:
                cells.append(" ")
            elif count == 1:
                cells.append("*")
            else:
                cells.append(str(min(count, 9)))
        lines.append(f"{_ROW_LABELS[row_index]} |{''.join(cells)}|")
    lines.append(
        f"   10^{low:.1f}{' ' * (width - 16)}10^{high:.1f}  ({label}, log)"
    )
    return "\n".join(lines)


def bar_chart(
    items: Sequence[tuple[str, float]],
    width: int = 40,
    fill: str = "#",
) -> str:
    """Figure 10-style horizontal bars."""
    if not items:
        return "(no data)"
    peak = max(value for _, value in items)
    label_width = max(len(label) for label, _ in items)
    lines = []
    for label, value in items:
        bar = fill * (
            0 if peak <= 0 else round(value / peak * width)
        )
        lines.append(f"{label:<{label_width}} {value:>7.4g} {bar}")
    return "\n".join(lines)


def histogram_panel(
    edges: Sequence[float],
    counts: Sequence[int],
    width: int = 40,
) -> str:
    """Bucketed-histogram bars (used by ``repro stats --metrics``).

    ``counts`` has one slot per edge plus a trailing overflow slot;
    each row is labelled with its inclusive upper bound (``le=``,
    Prometheus convention), the last with ``+Inf``.
    """
    labels = [f"le={edge:g}" for edge in edges] + ["le=+Inf"]
    return bar_chart(
        [
            (label, float(count))
            for label, count in zip(labels, counts)
        ],
        width=width,
    )


def sparkline(values: Sequence[float]) -> str:
    """Compact trend line (used for agreement/precision series)."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    low = min(values)
    high = max(values)
    span = high - low
    if span == 0:
        return blocks[3] * len(values)
    return "".join(
        blocks[int((value - low) / span * (len(blocks) - 1))]
        for value in values
    )
