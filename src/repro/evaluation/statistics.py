"""Extraction statistics (Figure 9).

Three percentile curves over the aggregated evidence:

* 9(a) — statements extracted per knowledge-base entity (most entities
  receive almost nothing; a few celebrities dominate);
* 9(b) — statements per property-type combination (again skewed);
* 9(c) — number of properties exceeding the occurrence threshold per
  entity type (few types carry many properties).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..core.surveyor import DEFAULT_OCCURRENCE_THRESHOLD
from ..extraction.statement import EvidenceCounter

#: Percentiles reported along each curve.
PERCENTILES: tuple[int, ...] = (5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99, 100)


@dataclass(frozen=True, slots=True)
class PercentileCurve:
    """One of the Figure 9 curves."""

    label: str
    percentiles: tuple[int, ...]
    values: tuple[float, ...]

    def as_dict(self) -> dict[int, float]:
        return dict(zip(self.percentiles, self.values))

    def row(self) -> str:
        cells = " ".join(
            f"p{p}={v:g}" for p, v in zip(self.percentiles, self.values)
        )
        return f"{self.label}: {cells}"


@dataclass(frozen=True, slots=True)
class ExtractionStatistics:
    """The full Figure 9 bundle."""

    per_entity: PercentileCurve
    per_combination: PercentileCurve
    properties_per_type: PercentileCurve

    def report(self) -> str:
        return "\n".join(
            (
                self.per_entity.row(),
                self.per_combination.row(),
                self.properties_per_type.row(),
            )
        )


def _curve(label: str, values: list[float]) -> PercentileCurve:
    if not values:
        return PercentileCurve(
            label=label,
            percentiles=PERCENTILES,
            values=tuple(0.0 for _ in PERCENTILES),
        )
    array = np.asarray(values, dtype=float)
    return PercentileCurve(
        label=label,
        percentiles=PERCENTILES,
        values=tuple(
            float(np.percentile(array, p)) for p in PERCENTILES
        ),
    )


def extraction_statistics(
    counter: EvidenceCounter,
    all_entity_ids: list[str] | None = None,
    occurrence_threshold: int = DEFAULT_OCCURRENCE_THRESHOLD,
) -> ExtractionStatistics:
    """Compute the Figure 9 curves from aggregated evidence.

    ``all_entity_ids`` supplies the full KB entity population so
    never-mentioned entities count as zeros in curve (a) — Figure 9(a)
    is flat at zero up to the 95th percentile precisely because of
    them.
    """
    per_entity_counts: dict[str, int] = defaultdict(int)
    per_combination: list[float] = []
    per_type_properties: dict[str, int] = defaultdict(int)

    for key in counter.keys():
        combination_total = 0
        for entity_id, counts in counter.counts_for(key).items():
            per_entity_counts[entity_id] += counts.total
            combination_total += counts.total
        per_combination.append(float(combination_total))
        if combination_total >= occurrence_threshold:
            per_type_properties[key.entity_type] += 1

    entity_values = [
        float(per_entity_counts.get(entity_id, 0))
        for entity_id in (all_entity_ids or list(per_entity_counts))
    ]
    return ExtractionStatistics(
        per_entity=_curve("statements per entity", entity_values),
        per_combination=_curve(
            "statements per property-type combination", per_combination
        ),
        properties_per_type=_curve(
            "properties above threshold per type",
            [float(v) for v in per_type_properties.values()],
        ),
    )
