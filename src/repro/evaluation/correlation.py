"""Polarity-vs-covariate correlation analysis (Figure 3 / Figure 13).

The Section 2 and Appendix A studies judge interpretation quality
qualitatively: the mined polarity of ``big city`` should correlate with
population, ``wealthy country`` with GDP per capita, and the method
should decide *every* entity rather than leaving the unmentioned ones
blank. This module quantifies both aspects:

* rank-biserial / point-biserial association between polarity and the
  (log) covariate;
* the decided fraction;
* the covariate separation: median covariate of positive-marked vs
  negative-marked entities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..core.result import OpinionTable
from ..core.types import Polarity, PropertyTypeKey
from ..kb.entity import Entity


@dataclass(frozen=True, slots=True)
class PolarityPoint:
    """One entity's covariate and mined polarity."""

    entity_id: str
    covariate: float
    polarity: Polarity


@dataclass(frozen=True, slots=True)
class CorrelationReport:
    """Association between polarity and covariate for one method.

    ``auc`` is the headline statistic: the probability that a
    positive-marked entity has a higher covariate than a
    negative-marked one (Mann-Whitney). Unlike the point-biserial
    correlation it is insensitive to the (often extreme) class
    imbalance of these studies — 15 genuinely big cities among 461.
    """

    name: str
    n_entities: int
    n_decided: int
    auc: float
    point_biserial: float
    positive_median: float
    negative_median: float

    @property
    def decided_fraction(self) -> float:
        return self.n_decided / self.n_entities if self.n_entities else 0.0

    @property
    def separation(self) -> float:
        """Ratio of medians; >1 means positives sit higher, as expected."""
        if self.negative_median <= 0:
            return math.inf
        return self.positive_median / self.negative_median

    def row(self) -> str:
        return (
            f"{self.name:22s} decided={self.decided_fraction:5.3f} "
            f"auc={self.auc:.3f} r={self.point_biserial:+.3f} "
            f"median+={self.positive_median:.3g} "
            f"median-={self.negative_median:.3g}"
        )


def polarity_points(
    table: OpinionTable,
    key: PropertyTypeKey,
    entities: list[Entity],
    attribute: str,
) -> list[PolarityPoint]:
    """Join mined polarities with the objective covariate."""
    return [
        PolarityPoint(
            entity_id=entity.id,
            covariate=entity.attribute(attribute),
            polarity=table.polarity(entity.id, key),
        )
        for entity in entities
    ]


def correlation_report(
    name: str, points: list[PolarityPoint]
) -> CorrelationReport:
    """Point-biserial correlation of decided polarity vs log-covariate."""
    decided = [p for p in points if p.polarity is not Polarity.NEUTRAL]
    positive_values = [
        p.covariate for p in decided if p.polarity is Polarity.POSITIVE
    ]
    negative_values = [
        p.covariate for p in decided if p.polarity is Polarity.NEGATIVE
    ]
    if decided and positive_values and negative_values:
        labels = np.array(
            [1.0 if p.polarity is Polarity.POSITIVE else 0.0 for p in decided]
        )
        log_cov = np.log10(
            np.maximum([p.covariate for p in decided], 1e-12)
        )
        if np.std(log_cov) > 0 and np.std(labels) > 0:
            r = float(stats.pearsonr(labels, log_cov).statistic)
        else:
            r = 0.0
        u_statistic = stats.mannwhitneyu(
            positive_values, negative_values, alternative="two-sided"
        ).statistic
        auc = float(
            u_statistic / (len(positive_values) * len(negative_values))
        )
    else:
        r = 0.0
        auc = 0.5
    return CorrelationReport(
        name=name,
        n_entities=len(points),
        n_decided=len(decided),
        auc=auc,
        point_biserial=r,
        positive_median=(
            float(np.median(positive_values)) if positive_values else 0.0
        ),
        negative_median=(
            float(np.median(negative_values)) if negative_values else 0.0
        ),
    )
