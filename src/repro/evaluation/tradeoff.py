"""Confidence thresholding: trading coverage for precision (Section 3).

The paper decides at posterior 0.5 but notes a different threshold
trades precision for recall. This module sweeps a confidence margin
``tau``: a pair is decided only when the posterior is at least ``tau``
away from 0.5 on either side. The resulting precision/coverage curve
is the operating characteristic of the mined table.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..core.result import OpinionTable
from ..core.types import Polarity
from ..crowd.survey import SurveyedCase
from .metrics import case_entity_id, case_key

#: Default margins swept by the curve; 0.0 reproduces the paper's rule.
DEFAULT_MARGINS: tuple[float, ...] = (
    0.0, 0.1, 0.2, 0.3, 0.4, 0.45, 0.49, 0.499,
)


@dataclass(frozen=True, slots=True)
class TradeoffPoint:
    """One operating point of the precision/coverage curve."""

    margin: float
    n_cases: int
    n_solved: int
    n_correct: int

    @property
    def coverage(self) -> float:
        return self.n_solved / self.n_cases if self.n_cases else 0.0

    @property
    def precision(self) -> float:
        return self.n_correct / self.n_solved if self.n_solved else 0.0

    def row(self) -> str:
        return (
            f"margin={self.margin:5.3f} coverage={self.coverage:5.3f} "
            f"precision={self.precision:5.3f}"
        )


def decide_with_margin(
    table: OpinionTable, entity_id: str, key, margin: float
) -> Polarity:
    """The paper's rule with a confidence margin around 0.5."""
    opinion = table.get(entity_id, key)
    if opinion is None:
        return Polarity.NEUTRAL
    if opinion.probability > 0.5 + margin:
        return Polarity.POSITIVE
    if opinion.probability < 0.5 - margin:
        return Polarity.NEGATIVE
    return Polarity.NEUTRAL


def tradeoff_curve(
    table: OpinionTable,
    test_cases: Iterable[SurveyedCase],
    margins: Sequence[float] = DEFAULT_MARGINS,
) -> list[TradeoffPoint]:
    """Precision/coverage at each confidence margin."""
    cases = list(test_cases)
    points = []
    for margin in margins:
        if not 0.0 <= margin < 0.5:
            raise ValueError(f"margin must be in [0, 0.5), got {margin}")
        n_solved = 0
        n_correct = 0
        for case in cases:
            if case.is_tie:
                raise ValueError("remove tied cases before evaluating")
            predicted = decide_with_margin(
                table, case_entity_id(case), case_key(case), margin
            )
            if predicted is Polarity.NEUTRAL:
                continue
            n_solved += 1
            if predicted is case.majority:
                n_correct += 1
        points.append(
            TradeoffPoint(
                margin=margin,
                n_cases=len(cases),
                n_solved=n_solved,
                n_correct=n_correct,
            )
        )
    return points
