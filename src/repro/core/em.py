"""Expectation-maximization learning of the model parameters (Section 6).

Algorithm 2 of the paper: alternate between computing posterior opinion
probabilities ``r+_i = Pr(D_i = + | theta, E_i)`` (E-step) and choosing
the parameter vector that maximizes the expected complete-data
log-likelihood ``Q_k`` (M-step). The paper derives a closed-form M-step:
for a fixed agreement value ``pA`` drawn from a small grid, the optimal
statement rates are

    n*p+S = (g++ + g+-) / (g- + pA*g+ - pA*g-)
    n*p-S = (g-+ + g--) / (g+ + pA*g- - pA*g+)

where the ``g`` statistics are responsibility-weighted count sums. Each
iteration is O(m) in the number of entities, which is what let the
authors process 380,000 property-type pairs in ten minutes.

The implementation is vectorized with numpy: the per-entity state is
three aligned arrays (positive counts, negative counts,
responsibilities).

By default the E/M iterations run over *unique* ``<C+, C->`` rows with
multiplicity weights rather than one row per entity — most entities of
a combination have the all-zero tuple, so this collapses the per-
iteration cost from O(entities) to O(distinct tuples). The result is
bit-identical to the dense path: the E-step is elementwise (equal rows
get equal posteriors), and every M-step statistic is an exactly-rounded
sum (``math.fsum``) — on the weighted path each ``weight x term``
product enters the sum as an exact two-float expansion (Dekker's
two-product), so both paths round the same exact rational value once.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np
from scipy.special import gammaln

from .errors import ModelFitError
from .model import UserBehaviorModel
from .params import (
    DEFAULT_AGREEMENT_GRID,
    DEFAULT_INITIAL_PARAMETERS,
    ModelParameters,
)
from .types import EvidenceCounts

_RATE_FLOOR = 1e-9

#: Veltkamp splitting constant for binary64: 2**27 + 1.
_SPLIT = 134217729.0


class _NullSpan:
    """No-op span for untraced runs (duck-types SpanHandle.set)."""

    __slots__ = ()

    def set(self, key, value):  # pragma: no cover - trivial
        pass


_NULL_SPAN = _NullSpan()


@dataclass(frozen=True, slots=True)
class EMTrace:
    """Diagnostics for one EM run.

    ``degraded`` flags a run whose fit was numerically degenerate
    (NaN/inf parameters, posteriors, or likelihood); the learner then
    fell back to the majority-vote baseline for the combination.
    """

    iterations: int
    converged: bool
    log_likelihoods: tuple[float, ...]
    parameters_path: tuple[ModelParameters, ...]
    degraded: bool = False

    @property
    def final_log_likelihood(self) -> float:
        return self.log_likelihoods[-1]

    @property
    def verdict(self) -> str:
        """Telemetry verdict: how this fit ended.

        ``converged`` | ``max-iterations`` | ``degraded-fallback`` —
        the vocabulary used by convergence records and ``repro stats``.
        """
        if self.degraded:
            return "degraded-fallback"
        if self.converged:
            return "converged"
        return "max-iterations"


@dataclass(frozen=True, slots=True)
class EMResult:
    """Learned parameters plus per-entity posteriors and diagnostics."""

    parameters: ModelParameters
    responsibilities: np.ndarray
    trace: EMTrace

    def model(self) -> UserBehaviorModel:
        return UserBehaviorModel(self.parameters)


@dataclass
class EMLearner:
    """Fits :class:`ModelParameters` to one property-type's evidence.

    Parameters
    ----------
    agreement_grid:
        Fixed set of ``pA`` values tried in each M-step (paper
        Section 6). Values must lie in ``(0, 1)``; values at or below
        0.5 make the dominant-opinion labels unidentifiable and values
        of exactly 1 degenerate the negative-rate denominator, so both
        are rejected.
    max_iterations:
        Upper bound ``X`` on EM iterations.
    tolerance:
        Convergence threshold on the change in expected log-likelihood.
    initial_parameters:
        Algorithm 2's initial guess ``theta_0``.
    record_path:
        Keep the per-iteration parameter vectors on the trace —
        required for the ``pA``/``np+S``/``np−S`` trajectories in
        convergence telemetry.
    unique_counts:
        Iterate over unique ``<C+, C->`` tuples with multiplicity
        weights instead of one row per entity (default on). Posteriors
        and the full convergence path are bit-identical either way;
        see the module docstring for why.
    tracer:
        Optional span tracer (anything with a ``span(name, **attrs)``
        context manager). When set, each EM iteration opens an
        ``em_iteration`` span carrying the iteration's expected
        log-likelihood and chosen agreement value.
    """

    agreement_grid: Sequence[float] = DEFAULT_AGREEMENT_GRID
    max_iterations: int = 50
    tolerance: float = 1e-7
    initial_parameters: ModelParameters = DEFAULT_INITIAL_PARAMETERS
    record_path: bool = False
    unique_counts: bool = True
    tracer: object | None = field(default=None, repr=False)
    _grid: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        grid = np.asarray(sorted(set(self.agreement_grid)), dtype=float)
        if grid.size == 0:
            raise ValueError("agreement grid must be non-empty")
        if np.any(grid <= 0.5) or np.any(grid >= 1.0):
            raise ValueError("agreement grid values must lie in (0.5, 1)")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self._grid = grid

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def fit(self, evidence: Iterable[EvidenceCounts]) -> EMResult:
        """Run EM over the evidence of all entities of one type.

        The iterable must contain one tuple per entity *including*
        entities with zero counts — the paper stresses that absence of
        mentions is itself evidence.
        """
        pos, neg = _counts_to_arrays(evidence)
        if pos.size == 0:
            raise ModelFitError(
                "evidence must contain at least one entity"
            )

        # Collapse duplicate <C+, C-> tuples into weighted unique rows;
        # ``inverse`` expands per-row posteriors back to per-entity
        # order on return.
        weights: np.ndarray | None = None
        inverse: np.ndarray | None = None
        if self.unique_counts and pos.size > 1:
            stacked = np.stack((pos, neg), axis=1)
            unique, inverse, multiplicity = np.unique(
                stacked,
                axis=0,
                return_inverse=True,
                return_counts=True,
            )
            if unique.shape[0] < pos.shape[0]:
                pos = np.ascontiguousarray(unique[:, 0])
                neg = np.ascontiguousarray(unique[:, 1])
                weights = multiplicity.astype(float)
            else:
                inverse = None

        theta = self.initial_parameters
        log_likelihoods: list[float] = []
        path: list[ModelParameters] = [theta] if self.record_path else []
        responsibilities = np.full(pos.shape, 0.5)
        converged = False
        iterations = 0
        degraded = False

        try:
            for iterations in range(1, self.max_iterations + 1):
                with self._iteration_span(iterations) as span:
                    responsibilities = self._e_step(pos, neg, theta)
                    theta, expected_ll = self._m_step(
                        pos, neg, responsibilities, weights
                    )
                    span.set("log_likelihood", expected_ll)
                    span.set("agreement", theta.agreement)
                log_likelihoods.append(expected_ll)
                if self.record_path:
                    path.append(theta)
                if (
                    len(log_likelihoods) >= 2
                    and abs(log_likelihoods[-1] - log_likelihoods[-2])
                    <= self.tolerance
                ):
                    converged = True
                    break

            # Final E-step so the posteriors reflect the returned
            # parameters.
            responsibilities = self._e_step(pos, neg, theta)
        except (FloatingPointError, ValueError, ZeroDivisionError):
            # A parameter went NaN/inf mid-iteration (ModelParameters
            # validation rejects such vectors); treat as degenerate.
            degraded = True
        if not degraded and _fit_is_degenerate(
            theta, responsibilities, log_likelihoods
        ):
            degraded = True
        if degraded:
            theta, responsibilities = self._majority_fallback(pos, neg)
            converged = False
        if inverse is not None:
            responsibilities = responsibilities[inverse]
        trace = EMTrace(
            iterations=iterations,
            converged=converged,
            log_likelihoods=tuple(log_likelihoods),
            parameters_path=tuple(path),
            degraded=degraded,
        )
        return EMResult(
            parameters=theta, responsibilities=responsibilities, trace=trace
        )

    def _iteration_span(self, iteration: int):
        if self.tracer is None:
            return nullcontext(_NULL_SPAN)
        return self.tracer.span(
            "em_iteration", kind="em_iteration", iteration=iteration
        )

    def _majority_fallback(
        self, pos: np.ndarray, neg: np.ndarray
    ) -> tuple[ModelParameters, np.ndarray]:
        """Degenerate-fit fallback: majority vote per entity.

        Posteriors become hard votes (1 when positive counts dominate,
        0 when negative, 0.5 on ties) and the parameters revert to the
        initial guess — a usable, clearly-flagged answer instead of a
        NaN-poisoned one.
        """
        responsibilities = np.where(
            pos > neg, 1.0, np.where(neg > pos, 0.0, 0.5)
        )
        return self.initial_parameters, responsibilities

    # ------------------------------------------------------------------
    # E-step
    # ------------------------------------------------------------------
    def _e_step(
        self, pos: np.ndarray, neg: np.ndarray, theta: ModelParameters
    ) -> np.ndarray:
        """Vectorized ``r+_i = Pr(D_i = + | theta, E_i)`` with uniform prior."""
        rates = theta.poisson_rates()
        log_pos = _poisson_log_pmf_vec(
            pos, rates.pos_given_pos
        ) + _poisson_log_pmf_vec(neg, rates.neg_given_pos)
        log_neg = _poisson_log_pmf_vec(
            pos, rates.pos_given_neg
        ) + _poisson_log_pmf_vec(neg, rates.neg_given_neg)
        # Stable sigmoid of the log-odds.
        delta = np.clip(log_neg - log_pos, -700.0, 700.0)
        return 1.0 / (1.0 + np.exp(delta))

    # ------------------------------------------------------------------
    # M-step
    # ------------------------------------------------------------------
    def _m_step(
        self,
        pos: np.ndarray,
        neg: np.ndarray,
        resp: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> tuple[ModelParameters, float]:
        """Closed-form maximization of Q' over the agreement grid.

        Returns the best parameter vector together with its Q' value
        (used as the convergence signal; Q' differs from the true
        expected log-likelihood only by theta-independent constants).

        Every g statistic is the exactly-rounded sum of its per-row
        terms, so collapsing equal rows into one weighted row (the
        ``weights`` path) yields bit-identical values: the exact sum
        of ``w`` equal terms equals the exact ``w x term`` product.
        """
        anti = 1.0 - resp
        g_pp = _weighted_total(pos * resp, weights)
        g_np = _weighted_total(neg * resp, weights)
        g_pn = _weighted_total(pos * anti, weights)
        g_nn = _weighted_total(neg * anti, weights)
        g_pos = _weighted_total(resp, weights)
        g_neg = _weighted_total(anti, weights)

        best: tuple[float, ModelParameters] | None = None
        for p_a in self._grid:
            denom_pos = g_neg + p_a * (g_pos - g_neg)
            denom_neg = g_pos + p_a * (g_neg - g_pos)
            rate_positive = float(
                max(
                    (g_pp + g_pn) / denom_pos if denom_pos > 0 else 0.0,
                    _RATE_FLOOR,
                )
            )
            rate_negative = float(
                max(
                    (g_np + g_nn) / denom_neg if denom_neg > 0 else 0.0,
                    _RATE_FLOOR,
                )
            )
            candidate = ModelParameters(
                agreement=float(p_a),
                rate_positive=rate_positive,
                rate_negative=rate_negative,
            )
            score = _expected_q(
                candidate, g_pp, g_np, g_pn, g_nn, g_pos, g_neg
            )
            if best is None or score > best[0]:
                best = (score, candidate)
        assert best is not None
        return best[1], best[0]


def _expected_q(
    theta: ModelParameters,
    g_pp: float,
    g_np: float,
    g_pn: float,
    g_nn: float,
    g_pos: float,
    g_neg: float,
) -> float:
    """Evaluate Q'(theta) using the sufficient statistics.

    Q' = sum_i [ r_i (c+_i log l++ - l++ + c-_i log l-+ - l-+)
               + (1-r_i)(c+_i log l+- - l+- + c-_i log l-- - l--) ]
    which collapses onto the g statistics.
    """
    rates = theta.poisson_rates()
    log = np.log
    l_pp = max(rates.pos_given_pos, _RATE_FLOOR)
    l_np = max(rates.neg_given_pos, _RATE_FLOOR)
    l_pn = max(rates.pos_given_neg, _RATE_FLOOR)
    l_nn = max(rates.neg_given_neg, _RATE_FLOOR)
    return float(
        g_pp * log(l_pp)
        - g_pos * l_pp
        + g_np * log(l_np)
        - g_pos * l_np
        + g_pn * log(l_pn)
        - g_neg * l_pn
        + g_nn * log(l_nn)
        - g_neg * l_nn
    )


def _fit_is_degenerate(
    theta: ModelParameters,
    responsibilities: np.ndarray,
    log_likelihoods: Sequence[float],
) -> bool:
    """Whether a finished fit is numerically unusable (NaN/inf)."""
    for value in (
        theta.agreement, theta.rate_positive, theta.rate_negative
    ):
        if not math.isfinite(value):
            return True
    if not bool(np.all(np.isfinite(responsibilities))):
        return True
    if log_likelihoods and not math.isfinite(log_likelihoods[-1]):
        return True
    return False


def _two_product(a: float, b: float) -> tuple[float, float]:
    """Dekker's exact product: ``a*b == p + err`` with no rounding.

    The split halves each operand at 26 bits so the partial products
    are exact; used because ``math.fma`` is not available on every
    supported interpreter.
    """
    p = a * b
    a_hi = a * _SPLIT
    a_hi = a_hi - (a_hi - a)
    a_lo = a - a_hi
    b_hi = b * _SPLIT
    b_hi = b_hi - (b_hi - b)
    b_lo = b - b_hi
    err = (
        ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo
    )
    return p, err


def _weighted_total(
    terms: np.ndarray, weights: np.ndarray | None
) -> float:
    """Exactly-rounded (optionally weighted) sum of ``terms``.

    Unweighted, this is ``fsum`` — the correctly-rounded sum of the
    terms. Weighted, each ``w x t`` product joins the summation as an
    exact two-float expansion, so the result is the correctly-rounded
    value of ``sum(w_u * t_u)`` — bit-identical to ``fsum`` over the
    expanded multiset where each ``t_u`` appears ``w_u`` times.
    """
    if weights is None:
        return math.fsum(terms.tolist())
    parts: list[float] = []
    append = parts.append
    for w, t in zip(weights.tolist(), terms.tolist()):
        p, err = _two_product(w, t)
        append(p)
        append(err)
    return math.fsum(parts)


def _counts_to_arrays(
    evidence: Iterable[EvidenceCounts],
) -> tuple[np.ndarray, np.ndarray]:
    """Evidence tuples to aligned (positive, negative) float arrays.

    Fills one pre-allocated array per column instead of materializing
    an intermediate list of pairs plus a 2-D array.
    """
    items = (
        evidence
        if isinstance(evidence, Sequence)
        else list(evidence)
    )
    n = len(items)
    pos = np.empty(n, dtype=float)
    neg = np.empty(n, dtype=float)
    for i, counts in enumerate(items):
        pos[i] = counts.positive
        neg[i] = counts.negative
    return pos, neg


def _poisson_log_pmf_vec(counts: np.ndarray, rate: float) -> np.ndarray:
    """Vectorized Poisson log-pmf; mirrors :func:`repro.core.poisson`."""
    if rate <= 0.0:
        out = np.where(counts == 0, 0.0, -np.inf)
        return out
    return counts * np.log(rate) - rate - gammaln(counts + 1.0)
