"""Structured exception hierarchy for the reproduction.

The paper's pipeline ran on up to 5000 nodes where malformed documents
and worker failures are routine; errors therefore carry enough context
to be quarantined, retried, or reported rather than merely crashing.
Every library-originated failure derives from :class:`ReproError`, so
callers (the CLI, the pipeline runtime) can distinguish expected
operational failures from genuine bugs with one ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all operational errors raised by the library."""


class ExtractionError(ReproError):
    """Annotation or pattern extraction failed for a document/sentence.

    Raised (chained onto the original cause) by the NLP and extraction
    layers so the pipeline can quarantine the offending document into a
    dead-letter record instead of killing its shard.
    """


class ParityError(ExtractionError):
    """The extraction fast path diverged from the reference path.

    Raised only in ``strict_parity`` runs, where every shard is mapped
    by both paths and their evidence counters and statistics are
    compared. A raise here means a fast-path soundness invariant was
    violated — a bug, never an expected operational failure.
    """


class ModelFitError(ReproError, ValueError):
    """Model fitting received invalid input or produced no usable fit.

    Subclasses :class:`ValueError` for backwards compatibility: callers
    that guarded ``learner.fit`` with ``except ValueError`` keep
    working.
    """


class CheckpointError(ReproError):
    """A shard checkpoint is missing fields, corrupt, or unreadable.

    The pipeline treats a corrupt checkpoint as absent (the shard is
    recomputed) and surfaces the event through the run's health report.
    """
