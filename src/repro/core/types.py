"""Core value types shared across the Surveyor pipeline.

The paper's central objects are:

* a *subjective property*: an adjective optionally preceded by adverbs
  (``cute``, ``very big``);
* an *entity* of a typed knowledge base (``kitten`` of type ``animal``);
* an *evidence tuple* ``<C+, C->``: the counts of positive and negative
  statements extracted from the corpus about one entity-property pair;
* an *opinion*: the mined dominant-opinion polarity with its posterior
  probability.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Polarity(enum.Enum):
    """Polarity of a statement or a dominant opinion.

    ``POSITIVE`` means the property applies to the entity, ``NEGATIVE``
    means its negation is claimed, and ``NEUTRAL`` means no decision
    (the paper marks this case ``N``).
    """

    POSITIVE = "+"
    NEGATIVE = "-"
    NEUTRAL = "N"

    def flipped(self) -> "Polarity":
        """Return the opposite polarity; ``NEUTRAL`` stays ``NEUTRAL``."""
        if self is Polarity.POSITIVE:
            return Polarity.NEGATIVE
        if self is Polarity.NEGATIVE:
            return Polarity.POSITIVE
        return Polarity.NEUTRAL

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class SubjectiveProperty:
    """An adjective with optional preceding adverbs.

    >>> SubjectiveProperty("big", ("very",)).text
    'very big'
    """

    adjective: str
    adverbs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.adjective:
            raise ValueError("adjective must be non-empty")
        object.__setattr__(self, "adjective", self.adjective.lower())
        object.__setattr__(
            self, "adverbs", tuple(a.lower() for a in self.adverbs)
        )

    @property
    def text(self) -> str:
        """The surface form, adverbs first (``very big``)."""
        return " ".join((*self.adverbs, self.adjective))

    @classmethod
    def parse(cls, text: str) -> "SubjectiveProperty":
        """Parse a space-separated surface form; last token is the adjective."""
        tokens = text.strip().lower().split()
        if not tokens:
            raise ValueError("property text must be non-empty")
        return cls(adjective=tokens[-1], adverbs=tuple(tokens[:-1]))

    def __str__(self) -> str:
        return self.text


@dataclass(frozen=True, slots=True)
class PropertyTypeKey:
    """Identifies one property-type combination, the unit of model fitting.

    The paper learns one parameter vector per combination such as
    ``(cute, animal)`` because biases do not generalize across either
    axis (Section 2).
    """

    property: SubjectiveProperty
    entity_type: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "entity_type", self.entity_type.lower())

    def __str__(self) -> str:
        return f"{self.property.text} {self.entity_type}"


@dataclass(frozen=True, slots=True)
class EvidenceCounts:
    """The evidence tuple ``<C+, C->`` for one entity-property pair."""

    positive: int
    negative: int

    def __post_init__(self) -> None:
        if self.positive < 0 or self.negative < 0:
            raise ValueError("statement counts must be non-negative")

    @property
    def total(self) -> int:
        return self.positive + self.negative

    def majority(self) -> Polarity:
        """Plain majority vote over the two counters."""
        if self.positive > self.negative:
            return Polarity.POSITIVE
        if self.negative > self.positive:
            return Polarity.NEGATIVE
        return Polarity.NEUTRAL


#: Shared zero-evidence tuple (set as a plain class attribute so it is
#: not mistaken for a dataclass field).
EvidenceCounts.ZERO = EvidenceCounts(0, 0)  # type: ignore[attr-defined]


@dataclass(frozen=True, slots=True)
class Opinion:
    """A mined dominant opinion for one entity-property pair.

    ``probability`` is the posterior ``Pr(D = + | C+, C-)``; polarity is
    positive above 0.5, negative below, neutral at exactly 0.5 (the
    paper then emits no output for the pair).
    """

    entity_id: str
    key: PropertyTypeKey
    probability: float
    evidence: EvidenceCounts = field(default_factory=lambda: EvidenceCounts.ZERO)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    @property
    def polarity(self) -> Polarity:
        if self.probability > 0.5:
            return Polarity.POSITIVE
        if self.probability < 0.5:
            return Polarity.NEGATIVE
        return Polarity.NEUTRAL

    @property
    def decided(self) -> bool:
        """Whether Surveyor emits this pair at all (probability != 0.5)."""
        return self.polarity is not Polarity.NEUTRAL
