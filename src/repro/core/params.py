"""Model parameters for one property-type combination.

The user-behaviour model of Section 5 has three free parameters:

* ``agreement`` (``pA``): probability that an author agrees with the
  dominant opinion on a given entity-property pair;
* ``rate_positive`` (``n * p+S``): expected number of statements from
  authors whose own opinion is positive;
* ``rate_negative`` (``n * p-S``): likewise for negative opinions.

The paper works with the products ``n * p±S`` rather than the raw
per-author probabilities to avoid rounding issues (Section 6); we adopt
the same convention and call them *rates*. From these, the four Poisson
rates of Section 5.2 follow:

    lambda++ = pA * rate_positive        lambda-+ = (1 - pA) * rate_negative
    lambda-- = pA * rate_negative        lambda+- = (1 - pA) * rate_positive

where the subscript is the dominant opinion and the superscript is the
statement polarity.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class PoissonRates:
    """The four Poisson rates ``lambda^{statement}_{dominant}``."""

    pos_given_pos: float  # lambda++
    neg_given_pos: float  # lambda-+
    pos_given_neg: float  # lambda+-
    neg_given_neg: float  # lambda--

    def for_dominant(self, positive_dominant: bool) -> tuple[float, float]:
        """Return ``(lambda+, lambda-)`` for the given dominant opinion."""
        if positive_dominant:
            return self.pos_given_pos, self.neg_given_pos
        return self.pos_given_neg, self.neg_given_neg


@dataclass(frozen=True, slots=True)
class ModelParameters:
    """The learned parameter vector ``theta = <pA, n*p+S, n*p-S>``."""

    agreement: float
    rate_positive: float
    rate_negative: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.agreement <= 1.0:
            raise ValueError(
                f"agreement must be in [0, 1], got {self.agreement}"
            )
        if self.rate_positive < 0 or self.rate_negative < 0:
            raise ValueError("statement rates must be non-negative")

    def poisson_rates(self) -> PoissonRates:
        """Derive the four Poisson rates of Section 5.2."""
        p_a = self.agreement
        return PoissonRates(
            pos_given_pos=p_a * self.rate_positive,
            neg_given_pos=(1.0 - p_a) * self.rate_negative,
            pos_given_neg=(1.0 - p_a) * self.rate_positive,
            neg_given_neg=p_a * self.rate_negative,
        )

    def statement_probabilities(
        self, positive_dominant: bool, n_documents: int
    ) -> tuple[float, float, float]:
        """Per-document probabilities ``(Pr(S=+), Pr(S=-), Pr(S=N))``.

        These are the Multinomial cell probabilities that the Poisson
        product approximates; ``n_documents`` recovers ``p±S`` from the
        stored rates.
        """
        if n_documents <= 0:
            raise ValueError("n_documents must be positive")
        pos_rate, neg_rate = self.poisson_rates().for_dominant(
            positive_dominant
        )
        p_pos = pos_rate / n_documents
        p_neg = neg_rate / n_documents
        if p_pos + p_neg > 1.0:
            raise ValueError(
                "rates exceed document count; Poisson regime violated"
            )
        return p_pos, p_neg, 1.0 - p_pos - p_neg


#: Default starting point for EM (Algorithm 2's "guess initial vector").
#: A mildly optimistic agreement with asymmetric rates breaks the
#: label-swap symmetry of the likelihood in a direction matching the
#: paper's observation that positive statements dominate on the Web.
DEFAULT_INITIAL_PARAMETERS = ModelParameters(
    agreement=0.8, rate_positive=10.0, rate_negative=1.0
)

#: The fixed grid of agreement values tried during the M-step. The paper
#: speeds up maximization by trying "a fixed set of values for pA" and
#: solving the remaining two parameters in closed form.
DEFAULT_AGREEMENT_GRID: tuple[float, ...] = tuple(
    round(0.5 + 0.01 * i, 2) for i in range(1, 50)
)
