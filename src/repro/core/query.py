"""Subjective query answering over a mined opinion table.

The paper's motivation: search queries like ``safe cities`` or
``cute animals`` should be answerable from structured data. This
module parses such queries — one or more subjective properties
followed by a type noun ("calm cheap cities") — and answers them from
an :class:`~repro.core.result.OpinionTable`, ranking entities by the
joint posterior of holding every requested property. Negated terms
("not hectic cities") invert the corresponding posterior.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nlp import lexicon
from .result import OpinionTable
from .types import PropertyTypeKey, SubjectiveProperty


class QueryError(ValueError):
    """Raised when a query cannot be parsed."""


@dataclass(frozen=True, slots=True)
class QueryTerm:
    """One property requirement, possibly negated."""

    property: SubjectiveProperty
    negated: bool = False

    def key(self, entity_type: str) -> PropertyTypeKey:
        return PropertyTypeKey(
            property=self.property, entity_type=entity_type
        )


@dataclass(frozen=True, slots=True)
class SubjectiveQuery:
    """A parsed query: property terms over one entity type."""

    entity_type: str
    terms: tuple[QueryTerm, ...]

    @classmethod
    def parse(cls, text: str) -> "SubjectiveQuery":
        """Parse ``[not] <adj> [[not] <adj> ...] <type-noun>``.

        The final token must be a known type noun (``cities``,
        ``animals``, ...); every other token is an adjective, an
        adverb attaching to the following adjective, or the negator
        ``not`` applying to the next property.

        >>> SubjectiveQuery.parse("calm cheap cities").entity_type
        'city'
        """
        tokens = text.strip().lower().split()
        if len(tokens) < 2:
            raise QueryError(
                "query needs at least one property and a type noun"
            )
        entity_type = lexicon.TYPE_NOUNS.get(tokens[-1])
        if entity_type is None:
            raise QueryError(
                f"unknown type noun {tokens[-1]!r}; known: "
                f"{sorted(set(lexicon.TYPE_NOUNS.values()))}"
            )
        terms: list[QueryTerm] = []
        seen: set[str] = set()
        negate_next = False
        pending_adverbs: list[str] = []

        def emit(adjective: str) -> None:
            nonlocal negate_next, pending_adverbs
            prop = SubjectiveProperty(
                adjective, tuple(pending_adverbs)
            )
            if prop.text in seen:
                raise QueryError(
                    f"duplicate property {prop.text!r} in query"
                )
            seen.add(prop.text)
            terms.append(
                QueryTerm(property=prop, negated=negate_next)
            )
            negate_next = False
            pending_adverbs = []

        for token in tokens[:-1]:
            if token == "not":
                negate_next = True
                continue
            if token in lexicon.ADVERBS:
                pending_adverbs.append(token)
                continue
            emit(token)
        if pending_adverbs:
            # A trailing intensifier with no adjective to attach to.
            # Words like "pretty" double as adjectives ("pretty
            # cities"); recover by reading the last one that way.
            last = pending_adverbs[-1]
            if last in lexicon.ADJECTIVES:
                pending_adverbs = pending_adverbs[:-1]
                emit(last)
            else:
                raise QueryError(
                    f"adverb {last!r} attaches to no adjective "
                    f"(before the type noun {tokens[-1]!r})"
                )
        if negate_next:
            raise QueryError(
                f"dangling 'not' before the type noun {tokens[-1]!r}"
            )
        if not terms:
            raise QueryError("query needs at least one property")
        return cls(entity_type=entity_type, terms=tuple(terms))

    def text(self) -> str:
        parts = []
        for term in self.terms:
            if term.negated:
                parts.append("not")
            parts.append(term.property.text)
        parts.append(self.entity_type)
        return " ".join(parts)


@dataclass(frozen=True, slots=True)
class QueryHit:
    """One ranked answer."""

    entity_id: str
    score: float
    per_term: tuple[float, ...]

    @property
    def confident(self) -> bool:
        """Whether every term individually clears 0.5."""
        return all(p > 0.5 for p in self.per_term)


class QueryEngine:
    """Answers subjective queries against one opinion table.

    Unknown pairs contribute the agnostic prior 0.5 — missing
    knowledge neither qualifies nor disqualifies an entity.
    """

    def __init__(self, table: OpinionTable) -> None:
        self._table = table

    def answer(
        self, query: SubjectiveQuery | str, top: int = 10
    ) -> list[QueryHit]:
        if isinstance(query, str):
            query = SubjectiveQuery.parse(query)
        entity_ids = self._entities_of_type(query.entity_type)
        if not entity_ids:
            return []
        hits = []
        for entity_id in entity_ids:
            per_term = []
            for term in query.terms:
                opinion = self._table.get(
                    entity_id, term.key(query.entity_type)
                )
                probability = (
                    opinion.probability if opinion is not None else 0.5
                )
                if term.negated:
                    probability = 1.0 - probability
                per_term.append(probability)
            score = 1.0
            for probability in per_term:
                score *= probability
            hits.append(
                QueryHit(
                    entity_id=entity_id,
                    score=score,
                    per_term=tuple(per_term),
                )
            )
        hits.sort(key=lambda hit: (-hit.score, hit.entity_id))
        return hits[:top]

    def _entities_of_type(self, entity_type: str) -> list[str]:
        entity_ids = {
            opinion.entity_id
            for key in self._table.keys()
            if key.entity_type == entity_type
            for opinion in self._table.for_key(key)
        }
        return sorted(entity_ids)
