"""Numerically stable Poisson helpers used by the user-behaviour model.

The paper approximates the Multinomial distribution over statement
decisions by a product of Poisson distributions (Section 5.2, citing
McDonald [14] and Roos [18]), because the number of Web documents ``n``
is huge relative to the observed counts. All downstream likelihood
computations therefore reduce to Poisson log-pmf evaluations.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

_LOG_EPS_RATE = 1e-12


def poisson_log_pmf(count: int, rate: float) -> float:
    """Return ``log Pois(count; rate)``.

    A rate of exactly zero is handled as the degenerate distribution at
    zero: ``log 1 = 0`` for ``count == 0`` and ``-inf`` otherwise. Tiny
    positive rates are floored to keep logs finite during EM iterations
    where a parameter may collapse.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if rate < 0:
        raise ValueError(f"rate must be non-negative, got {rate}")
    if rate == 0.0:
        return 0.0 if count == 0 else -math.inf
    rate = max(rate, _LOG_EPS_RATE)
    return count * math.log(rate) - rate - math.lgamma(count + 1)


def poisson_pmf(count: int, rate: float) -> float:
    """Return ``Pois(count; rate)``."""
    log_p = poisson_log_pmf(count, rate)
    return math.exp(log_p) if log_p > -math.inf else 0.0


def multinomial_log_pmf(
    counts: Sequence[int], probabilities: Sequence[float]
) -> float:
    """Log-pmf of the exact Multinomial the Poisson product approximates.

    ``counts`` and ``probabilities`` must have equal length and the
    probabilities must sum to one (within tolerance). Used by the
    ablation bench that quantifies the approximation error.
    """
    if len(counts) != len(probabilities):
        raise ValueError("counts and probabilities must align")
    if any(c < 0 for c in counts):
        raise ValueError("counts must be non-negative")
    total_p = math.fsum(probabilities)
    if not math.isclose(total_p, 1.0, abs_tol=1e-9):
        raise ValueError(f"probabilities must sum to 1, got {total_p}")
    n = sum(counts)
    log_p = math.lgamma(n + 1)
    for count, prob in zip(counts, probabilities):
        log_p -= math.lgamma(count + 1)
        if count:
            if prob <= 0.0:
                return -math.inf
            log_p += count * math.log(prob)
    return log_p


def log_sum_exp(values: Sequence[float]) -> float:
    """Stable ``log(sum(exp(v)))`` over a sequence that may contain -inf."""
    peak = max(values, default=-math.inf)
    if peak == -math.inf:
        return -math.inf
    return peak + math.log(
        math.fsum(math.exp(v - peak) for v in values)
    )


def sample_poisson(rate: float, rng) -> int:
    """Draw one Poisson sample using ``rng`` (a ``random.Random``).

    Knuth's algorithm for small rates; normal approximation with
    rejection of negatives for large rates, adequate for corpus
    simulation where rates rarely exceed a few thousand.
    """
    if rate < 0:
        raise ValueError(f"rate must be non-negative, got {rate}")
    if rate == 0.0:
        return 0
    if rate < 30.0:
        limit = math.exp(-rate)
        product = rng.random()
        count = 0
        while product > limit:
            product *= rng.random()
            count += 1
        return count
    # Normal approximation N(rate, rate) for large rates.
    while True:
        draw = rng.gauss(rate, math.sqrt(rate))
        if draw >= -0.5:
            return max(0, round(draw))
