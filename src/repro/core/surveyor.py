"""The Surveyor driver — Algorithm 1 of the paper.

Given (a) evidence counts grouped by property-type combination and
(b) a knowledge base that can enumerate the entities of a type, Surveyor
fits the user-behaviour model per combination (for combinations whose
total extraction count reaches the occurrence threshold ``rho``) and
emits a dominant opinion for *every* entity of the type — including
entities never mentioned on the Web, for which the absence of evidence
is itself informative.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Protocol

from .em import _NULL_SPAN, EMLearner, EMTrace
from .errors import ModelFitError
from .model import UserBehaviorModel
from .params import ModelParameters
from .result import OpinionTable
from .types import EvidenceCounts, Opinion, Polarity, PropertyTypeKey

#: The paper filters property-type pairs with fewer than 100 evidence
#: sentences before running EM (Section 7.1).
DEFAULT_OCCURRENCE_THRESHOLD = 100


class EntityCatalog(Protocol):
    """The slice of a knowledge base Surveyor needs.

    ``repro.kb.KnowledgeBase`` satisfies this protocol; tests may pass a
    plain dict-backed stub.
    """

    def entity_ids_of_type(self, entity_type: str) -> Iterable[str]:
        """IDs of all entities whose most notable type matches."""
        ...


@dataclass(frozen=True, slots=True)
class FittedCombination:
    """Per property-type fit artefacts, useful for inspection/ablation."""

    key: PropertyTypeKey
    parameters: ModelParameters
    trace: EMTrace
    n_entities: int
    n_statements: int

    def model(self) -> UserBehaviorModel:
        return UserBehaviorModel(self.parameters)


@dataclass(frozen=True, slots=True)
class SurveyorResult:
    """Output of one Surveyor run.

    ``degraded`` lists the combinations whose EM fit was numerically
    degenerate and fell back to the majority-vote baseline; their
    opinions are hard votes rather than model posteriors.
    """

    opinions: OpinionTable
    fits: dict[PropertyTypeKey, FittedCombination]
    skipped: tuple[PropertyTypeKey, ...]
    degraded: tuple[PropertyTypeKey, ...] = ()

    @property
    def n_pairs(self) -> int:
        return len(self.opinions)


@dataclass
class Surveyor:
    """End-to-end evidence interpreter (extraction happens upstream).

    Parameters
    ----------
    catalog:
        Entity enumeration source; combined with the evidence counts to
        include never-mentioned entities with ``<0, 0>`` tuples.
    occurrence_threshold:
        Minimum total statements per property-type combination (``rho``).
    learner:
        EM configuration; a default instance is used when omitted.
    emit_undecided:
        When true, pairs with posterior exactly 0.5 are kept in the
        table as ``NEUTRAL``; the paper drops them (default).
    tracer:
        Optional span tracer; each interpreted combination then opens
        a ``combination`` span (with the learner's ``em_iteration``
        spans nested inside when the learner shares the tracer).
    """

    catalog: EntityCatalog
    occurrence_threshold: int = DEFAULT_OCCURRENCE_THRESHOLD
    learner: EMLearner = field(default_factory=EMLearner)
    emit_undecided: bool = False
    tracer: object | None = field(default=None, repr=False)

    def run(
        self,
        evidence: Mapping[PropertyTypeKey, Mapping[str, EvidenceCounts]],
    ) -> SurveyorResult:
        """Interpret all combinations meeting the occurrence threshold.

        ``evidence`` maps each property-type combination to the per
        entity evidence tuples gathered during extraction; entities of
        the type that are absent from the inner mapping are treated as
        ``<0, 0>``.
        """
        table = OpinionTable()
        fits: dict[PropertyTypeKey, FittedCombination] = {}
        skipped: list[PropertyTypeKey] = []
        degraded: list[PropertyTypeKey] = []

        for key in sorted(evidence, key=str):
            per_entity = evidence[key]
            n_statements = sum(c.total for c in per_entity.values())
            if n_statements < self.occurrence_threshold:
                skipped.append(key)
                continue
            with self._combination_span(key) as span:
                fit = self.fit_combination(key, per_entity)
                fits[key] = fit
                span.set("verdict", fit.trace.verdict)
                span.set("iterations", fit.trace.iterations)
                span.set("n_entities", fit.n_entities)
                span.set("n_statements", fit.n_statements)
                if fit.trace.degraded:
                    # Degenerate fit: the learner fell back to majority
                    # vote, so emit hard votes instead of posteriors.
                    degraded.append(key)
                    table.mark_degraded(key)
                    for entity_id, counts in self._full_evidence(
                        key, per_entity
                    ):
                        opinion = _majority_opinion(
                            entity_id, key, counts
                        )
                        if opinion.decided or self.emit_undecided:
                            table.add(opinion)
                    continue
                model = fit.model()
                for entity_id, counts in self._full_evidence(
                    key, per_entity
                ):
                    opinion = model.opinion(entity_id, key, counts)
                    if opinion.decided or self.emit_undecided:
                        table.add(opinion)
        return SurveyorResult(
            opinions=table,
            fits=fits,
            skipped=tuple(skipped),
            degraded=tuple(degraded),
        )

    def _combination_span(self, key: PropertyTypeKey):
        if self.tracer is None:
            return nullcontext(_NULL_SPAN)
        return self.tracer.span(
            "combination", kind="combination", key=str(key)
        )

    def fit_combination(
        self,
        key: PropertyTypeKey,
        per_entity: Mapping[str, EvidenceCounts],
    ) -> FittedCombination:
        """Fit the model for one combination (no thresholding)."""
        entities = list(self._full_evidence(key, per_entity))
        if not entities:
            raise ModelFitError(
                f"no entities of type {key.entity_type!r} in the catalog "
                "or the evidence"
            )
        result = self.learner.fit(counts for _, counts in entities)
        return FittedCombination(
            key=key,
            parameters=result.parameters,
            trace=result.trace,
            n_entities=len(entities),
            n_statements=sum(c.total for _, c in entities),
        )

    def _full_evidence(
        self,
        key: PropertyTypeKey,
        per_entity: Mapping[str, EvidenceCounts],
    ) -> list[tuple[str, EvidenceCounts]]:
        """Join evidence with the catalog, padding absentees with zeros.

        Entities appearing in the evidence but not in the catalog (e.g.
        a linker matched an alias of an entity filed under another most
        notable type) are still interpreted.
        """
        known = set(self.catalog.entity_ids_of_type(key.entity_type))
        ids = sorted(known | set(per_entity))
        return [
            (entity_id, per_entity.get(entity_id, EvidenceCounts.ZERO))
            for entity_id in ids
        ]


def _majority_opinion(
    entity_id: str, key: PropertyTypeKey, counts: EvidenceCounts
) -> Opinion:
    """Hard majority vote wrapped as an opinion (probability 1/0/0.5)."""
    probability = {
        Polarity.POSITIVE: 1.0,
        Polarity.NEGATIVE: 0.0,
        Polarity.NEUTRAL: 0.5,
    }[counts.majority()]
    return Opinion(
        entity_id=entity_id,
        key=key,
        probability=probability,
        evidence=counts,
    )
