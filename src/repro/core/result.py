"""Queryable store for mined opinions.

Surveyor's output is conceptually a knowledge-base extension: tuples
``<entity, property, polarity>`` with posterior probabilities. The
:class:`OpinionTable` indexes these tuples by entity, by property-type
combination, and by polarity, and supports the query patterns the paper
motivates (``safe cities``, ``cute animals``): given a property-type
key, list the entities whose dominant opinion is positive, ranked by
posterior confidence.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

from .types import Opinion, Polarity, PropertyTypeKey


class OpinionTable:
    """Indexed collection of :class:`Opinion` tuples.

    Besides the tuples themselves the table remembers which
    property-type combinations were *degraded* — their EM fit went
    numerically degenerate and Surveyor fell back to majority vote, so
    their opinions are hard votes rather than model posteriors. Query
    surfaces (CLI, HTTP server) expose the flag so consumers can treat
    those answers with suspicion.
    """

    def __init__(
        self,
        opinions: Iterable[Opinion] = (),
        degraded_keys: Iterable[PropertyTypeKey] = (),
    ) -> None:
        self._by_pair: dict[tuple[str, PropertyTypeKey], Opinion] = {}
        self._by_key: dict[PropertyTypeKey, list[Opinion]] = defaultdict(list)
        self._by_entity: dict[str, list[Opinion]] = defaultdict(list)
        self._degraded: set[PropertyTypeKey] = set(degraded_keys)
        for opinion in opinions:
            self.add(opinion)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, opinion: Opinion) -> None:
        """Insert an opinion, replacing any previous one for the pair."""
        pair = (opinion.entity_id, opinion.key)
        if pair in self._by_pair:
            old = self._by_pair[pair]
            self._by_key[old.key].remove(old)
            self._by_entity[old.entity_id].remove(old)
        self._by_pair[pair] = opinion
        self._by_key[opinion.key].append(opinion)
        self._by_entity[opinion.entity_id].append(opinion)

    def update(self, opinions: Iterable[Opinion]) -> None:
        for opinion in opinions:
            self.add(opinion)

    def mark_degraded(self, key: PropertyTypeKey) -> None:
        """Flag a combination as a degraded (majority-vote) fallback."""
        self._degraded.add(key)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(
        self, entity_id: str, key: PropertyTypeKey
    ) -> Opinion | None:
        return self._by_pair.get((entity_id, key))

    def polarity(
        self, entity_id: str, key: PropertyTypeKey
    ) -> Polarity:
        """Mined polarity for a pair; ``NEUTRAL`` when unknown/undecided."""
        opinion = self.get(entity_id, key)
        return opinion.polarity if opinion else Polarity.NEUTRAL

    def for_key(self, key: PropertyTypeKey) -> list[Opinion]:
        """All opinions for one property-type combination."""
        return list(self._by_key.get(key, ()))

    def for_entity(self, entity_id: str) -> list[Opinion]:
        """All opinions about one entity across properties."""
        return list(self._by_entity.get(entity_id, ()))

    def entities_with(
        self,
        key: PropertyTypeKey,
        polarity: Polarity = Polarity.POSITIVE,
        min_probability: float = 0.0,
    ) -> list[Opinion]:
        """Entities whose dominant opinion matches, ranked by confidence.

        This is the subjective-query answering primitive: for
        ``cute animals``, return the animals most confidently cute.
        """
        selected = [
            op
            for op in self._by_key.get(key, ())
            if op.polarity is polarity
        ]
        if polarity is Polarity.POSITIVE:
            selected = [
                op for op in selected if op.probability >= min_probability
            ]
            selected.sort(key=lambda op: op.probability, reverse=True)
        else:
            selected = [
                op
                for op in selected
                if 1.0 - op.probability >= min_probability
            ]
            selected.sort(key=lambda op: op.probability)
        return selected

    def keys(self) -> list[PropertyTypeKey]:
        return list(self._by_key)

    @property
    def degraded_keys(self) -> frozenset[PropertyTypeKey]:
        """Combinations whose opinions are majority-vote fallbacks."""
        return frozenset(self._degraded)

    def is_degraded(self, key: PropertyTypeKey) -> bool:
        return key in self._degraded

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_pair)

    def __iter__(self) -> Iterator[Opinion]:
        return iter(self._by_pair.values())

    def __contains__(self, pair: tuple[str, PropertyTypeKey]) -> bool:
        return pair in self._by_pair
