"""Connecting subjective properties to objective ones (Section 9).

The paper's outlook: *"We could for instance try to find a lower bound
on the population count of a city starting from which an average user
would call that city big."* This module implements that link: given
mined opinions for one property-type combination and an objective
covariate from the knowledge base, it fits

* a **decision stump** — the covariate threshold that best separates
  positive from negative dominant opinions (the paper's "lower
  bound"), and
* a **logistic curve** — ``Pr(property applies | covariate)`` over the
  log covariate, giving a smooth subjective-to-objective bridge that
  can score entities missing from the mined table entirely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..kb.entity import Entity
from .result import OpinionTable
from .types import Polarity, PropertyTypeKey


@dataclass(frozen=True, slots=True)
class SubjectiveObjectiveLink:
    """A fitted bridge between a subjective property and a covariate.

    ``threshold`` is the stump boundary on the raw covariate;
    ``intercept``/``slope`` parameterize the logistic curve on
    ``log10`` of the covariate. ``accuracy`` is the stump's agreement
    with the mined polarities.
    """

    key: PropertyTypeKey
    attribute: str
    threshold: float
    accuracy: float
    intercept: float
    slope: float
    n_positive: int
    n_negative: int

    def probability(self, covariate: float) -> float:
        """Logistic ``Pr(property applies | covariate)``."""
        if covariate <= 0:
            return 0.0 if self.slope > 0 else 1.0
        z = self.intercept + self.slope * math.log10(covariate)
        return 1.0 / (1.0 + math.exp(-max(min(z, 700.0), -700.0)))

    def applies(self, covariate: float) -> bool:
        """Stump decision for an unseen entity."""
        return covariate > self.threshold

    def describe(self) -> str:
        return (
            f"{self.key}: applies above {self.attribute} ~ "
            f"{self.threshold:,.0f} (stump accuracy "
            f"{self.accuracy:.2f}, logistic midpoint "
            f"{self.logistic_midpoint():,.0f})"
        )

    def logistic_midpoint(self) -> float:
        """Covariate where the logistic crosses 0.5."""
        if self.slope == 0:
            return math.inf
        return 10.0 ** (-self.intercept / self.slope)


class CalibrationError(ValueError):
    """Raised when the opinions cannot support a calibration."""


def fit_link(
    table: OpinionTable,
    key: PropertyTypeKey,
    entities: list[Entity],
    attribute: str,
) -> SubjectiveObjectiveLink:
    """Fit the subjective-to-objective bridge for one combination.

    Uses the *mined* polarities (not any hidden truth): the output is
    the model's own implied objective boundary. Entities without a
    decided opinion or without the attribute are skipped.
    """
    values: list[float] = []
    labels: list[int] = []
    for entity in entities:
        polarity = table.polarity(entity.id, key)
        if polarity is Polarity.NEUTRAL:
            continue
        if attribute not in entity.attributes:
            continue
        values.append(entity.attribute(attribute))
        labels.append(1 if polarity is Polarity.POSITIVE else 0)
    n_positive = sum(labels)
    n_negative = len(labels) - n_positive
    if n_positive == 0 or n_negative == 0:
        raise CalibrationError(
            f"need both polarities to calibrate {key}; got "
            f"{n_positive}+ / {n_negative}-"
        )

    threshold, accuracy = _best_stump(values, labels)
    intercept, slope = _fit_logistic(values, labels)
    return SubjectiveObjectiveLink(
        key=key,
        attribute=attribute,
        threshold=threshold,
        accuracy=accuracy,
        intercept=intercept,
        slope=slope,
        n_positive=n_positive,
        n_negative=n_negative,
    )


def _best_stump(
    values: list[float], labels: list[int]
) -> tuple[float, float]:
    """Threshold maximizing agreement with ``covariate > t -> positive``.

    Candidate boundaries are midpoints between consecutive sorted
    covariates (geometric midpoints, since the quantities are
    log-scaled in nature).
    """
    order = np.argsort(values)
    sorted_values = np.asarray(values, dtype=float)[order]
    sorted_labels = np.asarray(labels, dtype=int)[order]
    n = len(sorted_values)
    total_positive = int(sorted_labels.sum())
    # positives_below[i] = #positives among the first i entities.
    positives_below = np.concatenate(([0], np.cumsum(sorted_labels)))
    best_correct = -1
    best_threshold = sorted_values[0] / 2.0
    for cut in range(n + 1):
        # Entities [0, cut) predicted negative; [cut, n) positive.
        correct = (
            (cut - positives_below[cut])
            + (total_positive - positives_below[cut])
        )
        if correct > best_correct:
            best_correct = int(correct)
            if cut == 0:
                best_threshold = sorted_values[0] / 2.0
            elif cut == n:
                best_threshold = sorted_values[-1] * 2.0
            else:
                lower = max(sorted_values[cut - 1], 1e-12)
                upper = max(sorted_values[cut], lower)
                best_threshold = math.sqrt(lower * upper)
    return best_threshold, best_correct / n


def _fit_logistic(
    values: list[float], labels: list[int]
) -> tuple[float, float]:
    """Maximum-likelihood 1-D logistic regression on log10(covariate)."""
    x = np.log10(np.maximum(np.asarray(values, dtype=float), 1e-12))
    y = np.asarray(labels, dtype=float)

    def negative_log_likelihood(theta: np.ndarray) -> float:
        z = theta[0] + theta[1] * x
        # log(1 + e^z) computed stably.
        log1pexp = np.logaddexp(0.0, z)
        return float(np.sum(log1pexp - y * z))

    result = optimize.minimize(
        negative_log_likelihood,
        x0=np.array([0.0, 1.0]),
        method="Nelder-Mead",
        options={"maxiter": 2000, "xatol": 1e-6, "fatol": 1e-9},
    )
    intercept, slope = result.x
    return float(intercept), float(slope)
