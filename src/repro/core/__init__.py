"""Core of the reproduction: the Surveyor probabilistic model and driver."""

from .calibration import (
    CalibrationError,
    SubjectiveObjectiveLink,
    fit_link,
)
from .em import EMLearner, EMResult, EMTrace
from .errors import (
    CheckpointError,
    ExtractionError,
    ModelFitError,
    ReproError,
)
from .model import UserBehaviorModel
from .params import (
    DEFAULT_AGREEMENT_GRID,
    DEFAULT_INITIAL_PARAMETERS,
    ModelParameters,
    PoissonRates,
)
from .query import (
    QueryEngine,
    QueryError,
    QueryHit,
    SubjectiveQuery,
)
from .result import OpinionTable
from .surveyor import (
    DEFAULT_OCCURRENCE_THRESHOLD,
    FittedCombination,
    Surveyor,
    SurveyorResult,
)
from .types import (
    EvidenceCounts,
    Opinion,
    Polarity,
    PropertyTypeKey,
    SubjectiveProperty,
)

__all__ = [
    "CalibrationError",
    "CheckpointError",
    "DEFAULT_AGREEMENT_GRID",
    "DEFAULT_INITIAL_PARAMETERS",
    "DEFAULT_OCCURRENCE_THRESHOLD",
    "EMLearner",
    "EMResult",
    "EMTrace",
    "EvidenceCounts",
    "ExtractionError",
    "FittedCombination",
    "ModelFitError",
    "ModelParameters",
    "Opinion",
    "OpinionTable",
    "PoissonRates",
    "Polarity",
    "PropertyTypeKey",
    "QueryEngine",
    "QueryError",
    "QueryHit",
    "ReproError",
    "SubjectiveObjectiveLink",
    "SubjectiveQuery",
    "SubjectiveProperty",
    "Surveyor",
    "SurveyorResult",
    "UserBehaviorModel",
    "fit_link",
]
