"""The probabilistic user-behaviour model (Section 5).

Given parameters for one property-type combination, the model assigns
each evidence tuple ``<C+, C->`` a posterior probability that the
dominant opinion on the underlying entity is positive. The generative
story (Figure 7/8 of the paper):

1. the dominant opinion ``D`` is positive or negative with a uniform
   prior (the paper is agnostic: ``Pr(D=+) = Pr(D=-) = 0.5``);
2. each of ``n`` document authors agrees with ``D`` with probability
   ``pA``, forming an opinion ``O``;
3. an author with opinion ``O`` writes a statement of that polarity
   with probability ``p+S`` (if ``O=+``) or ``p-S`` (if ``O=-``),
   otherwise stays silent;
4. counts are sums over authors; in the Poisson limit,
   ``C+ | D`` and ``C- | D`` are independent Poissons with the rates
   derived in :mod:`repro.core.params`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .params import ModelParameters
from .poisson import log_sum_exp, multinomial_log_pmf, poisson_log_pmf
from .types import EvidenceCounts, Opinion, Polarity, PropertyTypeKey

#: The paper's agnostic prior over the dominant opinion.
UNIFORM_LOG_PRIOR = math.log(0.5)


@dataclass(frozen=True)
class UserBehaviorModel:
    """Fitted model for one property-type combination.

    The model is cheap to construct; all heavy lifting happened during
    EM. ``prior_positive`` defaults to the paper's uniform 0.5 but is
    exposed for the empirical-prior ablation.
    """

    parameters: ModelParameters
    prior_positive: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.prior_positive < 1.0:
            raise ValueError(
                f"prior must be in (0, 1), got {self.prior_positive}"
            )

    # ------------------------------------------------------------------
    # Likelihoods
    # ------------------------------------------------------------------
    def log_likelihood(
        self, counts: EvidenceCounts, positive_dominant: bool
    ) -> float:
        """``log Pr(C+ = a, C- = b | D)`` under the Poisson product."""
        rates = self.parameters.poisson_rates()
        pos_rate, neg_rate = rates.for_dominant(positive_dominant)
        return poisson_log_pmf(counts.positive, pos_rate) + poisson_log_pmf(
            counts.negative, neg_rate
        )

    def log_evidence(self, counts: EvidenceCounts) -> float:
        """``log Pr(C+, C-)`` marginalized over the dominant opinion."""
        log_prior_pos = math.log(self.prior_positive)
        log_prior_neg = math.log(1.0 - self.prior_positive)
        return log_sum_exp(
            (
                log_prior_pos + self.log_likelihood(counts, True),
                log_prior_neg + self.log_likelihood(counts, False),
            )
        )

    # ------------------------------------------------------------------
    # Posterior inference
    # ------------------------------------------------------------------
    def posterior_positive(self, counts: EvidenceCounts) -> float:
        """``Pr(D = + | C+, C-)`` — the quantity Surveyor thresholds at 0.5."""
        log_joint_pos = math.log(self.prior_positive) + self.log_likelihood(
            counts, True
        )
        log_joint_neg = math.log(
            1.0 - self.prior_positive
        ) + self.log_likelihood(counts, False)
        if log_joint_pos == -math.inf and log_joint_neg == -math.inf:
            return 0.5
        denominator = log_sum_exp((log_joint_pos, log_joint_neg))
        return math.exp(log_joint_pos - denominator)

    def classify(self, counts: EvidenceCounts) -> Polarity:
        """Threshold the posterior at 0.5 as in Algorithm 1."""
        probability = self.posterior_positive(counts)
        if probability > 0.5:
            return Polarity.POSITIVE
        if probability < 0.5:
            return Polarity.NEGATIVE
        return Polarity.NEUTRAL

    def opinion(
        self, entity_id: str, key: PropertyTypeKey, counts: EvidenceCounts
    ) -> Opinion:
        """Package posterior and evidence into an :class:`Opinion`."""
        return Opinion(
            entity_id=entity_id,
            key=key,
            probability=self.posterior_positive(counts),
            evidence=counts,
        )

    # ------------------------------------------------------------------
    # Exact-multinomial variant (ablation support)
    # ------------------------------------------------------------------
    def posterior_positive_multinomial(
        self, counts: EvidenceCounts, n_documents: int
    ) -> float:
        """Posterior under the exact Multinomial instead of the Poisson
        product — used to quantify the approximation the paper makes.
        """
        log_terms = []
        for positive_dominant, prior in (
            (True, self.prior_positive),
            (False, 1.0 - self.prior_positive),
        ):
            p_pos, p_neg, p_none = self.parameters.statement_probabilities(
                positive_dominant, n_documents
            )
            silent = n_documents - counts.total
            if silent < 0:
                raise ValueError("counts exceed the number of documents")
            log_terms.append(
                math.log(prior)
                + multinomial_log_pmf(
                    (counts.positive, counts.negative, silent),
                    (p_pos, p_neg, p_none),
                )
            )
        denominator = log_sum_exp(log_terms)
        if denominator == -math.inf:
            return 0.5
        return math.exp(log_terms[0] - denominator)
