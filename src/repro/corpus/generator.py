"""Synthetic Web-corpus generation.

The generator is the paper's missing 40 TB snapshot, downscaled: it
draws statement counts from the *exact generative model Surveyor
assumes* (Figure 7) and renders each statement into English through the
template library, one statement per document (authors of two random Web
documents are assumed distinct). On top of the model-faithful signal it
layers the surface noise a real snapshot carries:

* distractor documents mentioning entities without asserting anything;
* non-intrinsic aspect statements ("bad for parking") that the strict
  pattern versions must filter;
* loose-only constructions (broad copulas, direct modifiers) that only
  the relaxed pattern versions extract — fueling the Table 4 deltas.

``probe()`` bypasses text entirely and emits evidence counts directly;
the Section 2 / Appendix A studies use it to scale to hundreds of
entities cheaply.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.poisson import sample_poisson
from ..core.types import Polarity
from ..extraction.statement import EvidenceCounter, EvidenceStatement
from . import templates
from .author import sample_statement_counts
from .document import Document, WebCorpus
from .scenario import PropertySpec, Scenario


@dataclass(frozen=True, slots=True)
class NoiseProfile:
    """Relative rates of the non-signal document classes.

    Rates are per signal statement: a ``distractor_rate`` of 0.5 adds
    one distractor document for every two statements (in expectation),
    plus a floor per entity so even silent entities appear in the
    corpus occasionally.
    """

    distractor_rate: float = 0.5
    non_intrinsic_rate: float = 0.15
    loose_only_rate: float = 0.15
    distractor_floor: float = 0.3
    allow_broad_renderings: bool = True
    #: Fraction of signal statements rendered as a two-sentence
    #: pronoun form ("We visited Tokyo . It is hectic .") — recovering
    #: them requires the annotator's coreference resolver.
    pronoun_statement_rate: float = 0.0


#: A profile with zero noise and only strict renderings, so that
#: extraction (version 4) recovers the generated counts exactly. Plain
#: class attribute — not a dataclass field.
NoiseProfile.CLEAN = NoiseProfile(  # type: ignore[attr-defined]
    distractor_rate=0.0,
    non_intrinsic_rate=0.0,
    loose_only_rate=0.0,
    distractor_floor=0.0,
    allow_broad_renderings=False,
)


@dataclass
class CorpusGenerator:
    """Deterministic corpus builder for a scenario.

    ``region`` tags every generated document with a provenance region
    (Section 2's user-group specialization); generate one corpus per
    region — each region with its own scenario ground truth — and
    merge them to simulate regionally divergent opinion.
    """

    seed: int = 7
    noise: NoiseProfile = NoiseProfile()
    region: str = ""

    def generate(self, *scenarios: Scenario) -> WebCorpus:
        """Render a full corpus for one or more scenarios."""
        rng = random.Random(self.seed)
        corpus = WebCorpus()
        for scenario in scenarios:
            self._generate_scenario(scenario, rng, corpus)
        # Shuffle so documents are not grouped by entity (a real
        # snapshot has no such ordering), deterministically.
        rng.shuffle(corpus.documents)
        for index, document in enumerate(corpus.documents):
            corpus.documents[index] = Document(
                doc_id=f"doc-{self.region or 'web'}-{index:07d}",
                text=document.text,
                region=self.region,
            )
        return corpus

    def probe(self, *scenarios: Scenario) -> EvidenceCounter:
        """Draw evidence counts directly, skipping text rendering.

        Exactly the counts that generating with
        :data:`NoiseProfile.CLEAN` and extracting with pattern
        version 4 recovers (count draws use a per-pair RNG, so the two
        paths coincide) — used by the large studies where rendering
        and parsing would only re-derive the same counters.
        """
        counter = EvidenceCounter()
        for scenario in scenarios:
            for spec in scenario.specs:
                for entity in scenario.entities:
                    positive, negative = self._draw_counts(
                        scenario, spec, entity.id
                    )
                    for _ in range(positive):
                        counter.add(
                            _statement(scenario, spec, entity.id, True)
                        )
                    for _ in range(negative):
                        counter.add(
                            _statement(scenario, spec, entity.id, False)
                        )
        return counter

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _generate_scenario(
        self, scenario: Scenario, rng: random.Random, corpus: WebCorpus
    ) -> None:
        type_noun = scenario.type_noun
        for spec in scenario.specs:
            for entity in scenario.entities:
                surface = entity.name
                positive, negative = self._draw_counts(
                    scenario, spec, entity.id
                )
                corpus.truth[
                    (spec.property.text, scenario.entity_type, entity.id)
                ] = (positive, negative)
                for polarity, count in (
                    (Polarity.POSITIVE, positive),
                    (Polarity.NEGATIVE, negative),
                ):
                    for _ in range(count):
                        if (
                            rng.random()
                            < self.noise.pronoun_statement_rate
                        ):
                            text = templates.render_pronoun_statement(
                                surface, spec.property, polarity, rng
                            )
                            corpus.add(Document("", text))
                            continue
                        text = templates.render_statement(
                            surface,
                            spec.property,
                            type_noun,
                            polarity,
                            rng,
                            allow_broad=self.noise.allow_broad_renderings,
                        )
                        corpus.add(Document("", self._pad(text, surface, rng)))
                self._add_noise_documents(
                    corpus, spec, surface, type_noun,
                    positive + negative, rng,
                )

    def _draw_counts(
        self, scenario: Scenario, spec: PropertySpec, entity_id: str
    ) -> tuple[int, int]:
        """Draw ``(C+, C-)`` for one pair from a dedicated RNG.

        Seeding per pair (rather than consuming the shared stream)
        makes the drawn counts independent of rendering decisions, so
        ``probe()`` and ``generate()`` produce identical counts for
        the same seed.
        """
        rng = random.Random(
            f"{self.seed}/{scenario.name}/{spec.property.text}/{entity_id}"
        )
        positive, negative = sample_statement_counts(
            spec.truth_of(entity_id),
            spec.params,
            rng,
            popularity=spec.popularity_of(entity_id),
        )
        # Fame-independent long-tail chatter (see PropertySpec docs).
        positive += sample_poisson(spec.spurious_positive_rate, rng)
        negative += sample_poisson(spec.spurious_negative_rate, rng)
        return positive, negative

    def _add_noise_documents(
        self,
        corpus: WebCorpus,
        spec: PropertySpec,
        surface: str,
        type_noun: str,
        n_signal: int,
        rng: random.Random,
    ) -> None:
        noise = self.noise
        n_distractors = sample_poisson(
            noise.distractor_rate * n_signal + noise.distractor_floor, rng
        )
        for _ in range(n_distractors):
            corpus.add(Document("", templates.render_distractor(surface, rng)))
        for _ in range(
            sample_poisson(noise.non_intrinsic_rate * n_signal, rng)
        ):
            corpus.add(
                Document(
                    "",
                    templates.render_non_intrinsic(
                        surface, spec.property, rng
                    ),
                )
            )
        for _ in range(
            sample_poisson(noise.loose_only_rate * n_signal, rng)
        ):
            corpus.add(
                Document(
                    "",
                    templates.render_loose_only(
                        surface, spec.property, type_noun, rng
                    ),
                )
            )

    def _pad(
        self, text: str, surface: str, rng: random.Random
    ) -> str:
        """Occasionally append a pattern-free sentence to the document."""
        if self.noise.distractor_rate > 0 and rng.random() < 0.2:
            return f"{text} {templates.render_distractor(surface, rng)}"
        return text


def _statement(
    scenario: Scenario,
    spec: PropertySpec,
    entity_id: str,
    positive: bool,
) -> EvidenceStatement:
    return EvidenceStatement(
        entity_id=entity_id,
        entity_type=scenario.entity_type,
        property=spec.property,
        polarity=Polarity.POSITIVE if positive else Polarity.NEGATIVE,
        pattern="probe",
    )
