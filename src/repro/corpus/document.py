"""Corpus containers: documents, the corpus, and sharding.

A :class:`WebCorpus` stands in for the paper's 40 TB Web snapshot. Each
document models one author's page (the probabilistic model assumes the
chance of two documents sharing an author is negligible, so the
generator emits one opinion statement per document). Sharding mirrors
the distributed layout the paper's 5000-node pipeline consumed.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Document:
    """One Web document: an ID, raw text, and a provenance region.

    ``region`` models the paper's Section 2 note that Surveyor can be
    specialized to a user group by restricting the input to documents
    authored by that group (e.g. by domain extension); empty means
    unknown/global.
    """

    doc_id: str
    text: str
    region: str = ""

    def size_bytes(self) -> int:
        return len(self.text.encode("utf-8"))


@dataclass
class WebCorpus:
    """An ordered collection of documents, optionally with provenance.

    ``truth`` carries the generator's true statement counts per
    (property text, entity type, entity id) so tests can verify the
    extraction pipeline end-to-end; a real corpus would not have it.
    """

    documents: list[Document] = field(default_factory=list)
    truth: dict[tuple[str, str, str], tuple[int, int]] = field(
        default_factory=dict
    )

    def add(self, document: Document) -> None:
        self.documents.append(document)

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self.documents)

    def size_bytes(self) -> int:
        return sum(doc.size_bytes() for doc in self.documents)

    def restricted_to_region(self, region: str) -> "WebCorpus":
        """The sub-corpus authored in one region (Section 2).

        Truth provenance is not split per region; downstream code that
        needs it should track regions at generation time.
        """
        return WebCorpus(
            documents=[
                doc for doc in self.documents if doc.region == region
            ]
        )

    def regions(self) -> list[str]:
        """Distinct regions present, sorted; '' means untagged."""
        return sorted({doc.region for doc in self.documents})

    def merged_with(self, other: "WebCorpus") -> "WebCorpus":
        """Concatenate two corpora (e.g. per-region generations)."""
        merged = WebCorpus(
            documents=[*self.documents, *other.documents],
            truth=dict(self.truth),
        )
        merged.truth.update(other.truth)
        return merged

    def shards(self, n_shards: int) -> list["CorpusShard"]:
        """Split into ``n_shards`` round-robin shards.

        Round-robin (rather than contiguous ranges) balances shard
        sizes even when the generator emits documents grouped by
        entity.
        """
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        buckets: list[list[Document]] = [[] for _ in range(n_shards)]
        for index, document in enumerate(self.documents):
            buckets[index % n_shards].append(document)
        return [
            CorpusShard(shard_id=shard_id, documents=tuple(bucket))
            for shard_id, bucket in enumerate(buckets)
        ]


@dataclass(frozen=True, slots=True)
class CorpusShard:
    """One shard of the corpus, processed by one (simulated) worker."""

    shard_id: int
    documents: Sequence[Document]

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self.documents)
