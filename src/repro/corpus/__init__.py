"""Synthetic Web-corpus substrate: scenarios, authors, rendering."""

from .author import (
    TrueParameters,
    sample_author_action,
    sample_author_opinion,
    sample_statement_counts,
)
from .document import CorpusShard, Document, WebCorpus
from .generator import CorpusGenerator, NoiseProfile
from .scenario import (
    PropertySpec,
    Scenario,
    covariate_scenario,
    curated_scenario,
)

__all__ = [
    "CorpusGenerator",
    "CorpusShard",
    "Document",
    "NoiseProfile",
    "PropertySpec",
    "Scenario",
    "TrueParameters",
    "WebCorpus",
    "covariate_scenario",
    "curated_scenario",
    "sample_author_action",
    "sample_author_opinion",
    "sample_statement_counts",
]
