"""Sentence renderers for the synthetic Web corpus.

Each renderer turns an (entity, property, polarity) triple into English
text whose dependency parse exhibits exactly one instance of one
extraction pattern — so the extraction stage must genuinely solve
negation scoping, embedding, and intrinsicness filtering to recover the
generated counts.

Style frequencies matter for Table 4: a slice of statements renders
with broad copulas (``seems``, ``looks``) or as direct modifiers
(``the cute cat``), which only the loose pattern versions extract, and
another slice renders as non-intrinsic aspect statements, which the
strict versions must reject.
"""

from __future__ import annotations

import random

from ..core.types import Polarity, SubjectiveProperty

#: Broad copulas a slice of authors prefers over "to be".
_BROAD_COPULAS = ("seems", "looks", "feels", "remains")

#: Aspect phrases for non-intrinsic statements ("bad for parking").
ASPECT_PHRASES = (
    "for parking", "for hiking", "for swimming", "for shopping",
    "for children", "for tourists", "in winter", "in summer",
    "at night", "during matches", "for training", "with kids",
)

#: Openers occasionally prepended (the parser skips them).
_OPENERS = ("Honestly ,", "Frankly ,", "Personally ,", "Clearly ,")

#: Distractor sentences mentioning the entity without any pattern.
_DISTRACTORS = (
    "We visited {entity} last summer .",
    "My friends talked about {entity} yesterday .",
    "{entity} appeared in the news again .",
    "Everyone kept asking about {entity} .",
    "There was a long story about {entity} in the paper .",
)

#: Copular statements about an unrelated aspect noun, not the entity.
_ASPECT_SENTENCES = (
    "The food there is wonderful .",
    "The people there are friendly .",
    "The weather was terrible .",
    "The streets are clean .",
)


def _surface(property_: SubjectiveProperty) -> str:
    return property_.text


def render_positive(
    entity: str,
    property_: SubjectiveProperty,
    type_noun: str,
    rng: random.Random,
    allow_broad: bool = True,
) -> str:
    """A sentence asserting the property (net polarity +)."""
    prop = _surface(property_)
    roll = rng.random()
    if roll < 0.40:
        sentence = f"{entity} is {prop} ."
    elif roll < 0.55:
        article = _article(prop)
        sentence = f"{entity} is {article} {prop} {type_noun} ."
    elif roll < 0.60:
        # Appositive fragment, common in listicles and captions.
        article = _article(prop)
        sentence = f"{entity} , {article} {prop} {type_noun} ."
    elif roll < 0.75:
        sentence = f"I think that {entity} is {prop} ."
    elif roll < 0.85 and allow_broad:
        copula = rng.choice(_BROAD_COPULAS)
        sentence = f"{entity} {copula} {prop} ."
    elif roll < 0.93:
        # Double negation resolving to a positive claim.
        sentence = f"I do n't think that {entity} is never {prop} ."
    else:
        article = _article(prop)
        sentence = (
            f"I believe that {entity} is {article} {prop} {type_noun} ."
        )
    return _maybe_open(sentence, rng)


def render_negative(
    entity: str,
    property_: SubjectiveProperty,
    type_noun: str,
    rng: random.Random,
    allow_broad: bool = True,
) -> str:
    """A sentence denying the property (net polarity -)."""
    prop = _surface(property_)
    roll = rng.random()
    if roll < 0.35:
        sentence = f"{entity} is not {prop} ."
    elif roll < 0.55:
        article = _article(prop)
        sentence = f"{entity} is not {article} {prop} {type_noun} ."
    elif roll < 0.75:
        sentence = f"I do n't think that {entity} is {prop} ."
    elif roll < 0.85:
        sentence = f"{entity} is never {prop} ."
    elif roll < 0.93 and allow_broad:
        copula = rng.choice(_BROAD_COPULAS)
        sentence = f"{entity} never {copula} {prop} ."
    else:
        sentence = f"I do n't believe that {entity} is {prop} ."
    return _maybe_open(sentence, rng)


def render_statement(
    entity: str,
    property_: SubjectiveProperty,
    type_noun: str,
    polarity: Polarity,
    rng: random.Random,
    allow_broad: bool = True,
) -> str:
    if polarity is Polarity.POSITIVE:
        return render_positive(entity, property_, type_noun, rng, allow_broad)
    if polarity is Polarity.NEGATIVE:
        return render_negative(entity, property_, type_noun, rng, allow_broad)
    raise ValueError("statement polarity must be positive or negative")


def render_loose_only(
    entity: str,
    property_: SubjectiveProperty,
    type_noun: str,
    rng: random.Random,
) -> str:
    """A statement only the loose pattern versions (1/2) extract.

    Direct attributive modifiers and broad-copula predications; used to
    widen the Table 4 gap between versions.
    """
    prop = _surface(property_)
    # Attributive mentions ("the cute cat") dominate loose usage on the
    # real Web — the reason the paper's amod-only version 1 extracts
    # within 26% of the all-patterns version 2.
    if rng.random() < 0.75:
        return f"The {prop} {type_noun} {entity} ."
    copula = rng.choice(_BROAD_COPULAS)
    return f"{entity} {copula} {prop} ."


def render_pronoun_statement(
    entity: str,
    property_: SubjectiveProperty,
    polarity: Polarity,
    rng: random.Random,
) -> str:
    """A two-sentence document whose claim rides on a pronoun.

    The first sentence mentions the entity without asserting anything;
    the second predicates the property of ``it``. Recovering the
    statement requires pronoun coreference resolution.
    """
    lead = rng.choice(_DISTRACTORS).format(entity=entity)
    prop = _surface(property_)
    if polarity is Polarity.POSITIVE:
        options = (
            f"It is {prop} .",
            f"I think that it is {prop} .",
            f"Honestly , it is {prop} .",
        )
    elif polarity is Polarity.NEGATIVE:
        options = (
            f"It is not {prop} .",
            f"It is never {prop} .",
            f"I do n't think that it is {prop} .",
        )
    else:
        raise ValueError("polarity must be positive or negative")
    return f"{lead} {rng.choice(options)}"


def render_non_intrinsic(
    entity: str,
    property_: SubjectiveProperty,
    rng: random.Random,
) -> str:
    """An aspect-restricted statement ("X is bad for parking").

    Extracted by the unchecked versions, rejected by the intrinsicness
    filter of versions 3/4.
    """
    prop = _surface(property_)
    aspect = rng.choice(ASPECT_PHRASES)
    if rng.random() < 0.5:
        return f"{entity} is {prop} {aspect} ."
    return f"{entity} is not {prop} {aspect} ."


def render_distractor(entity: str, rng: random.Random) -> str:
    """A pattern-free mention of the entity."""
    if rng.random() < 0.7:
        return rng.choice(_DISTRACTORS).format(entity=entity)
    return rng.choice(_ASPECT_SENTENCES)


def _article(prop: str) -> str:
    return "an" if prop[0] in "aeiou" else "a"


def _maybe_open(sentence: str, rng: random.Random) -> str:
    if rng.random() < 0.1:
        return f"{rng.choice(_OPENERS)} {sentence[0].lower()}{sentence[1:]}"
    return sentence
