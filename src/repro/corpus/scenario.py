"""Scenario specifications for corpus generation.

A scenario fixes the synthetic world: which entities exist, which
subjective properties are discussed, what the dominant opinion truly
is per entity, and with which biases authors write about them. The
builders cover the paper's experimental settings:

* :func:`covariate_scenario` — ground truth derived from an objective
  attribute (population for ``big city``, GDP for ``wealthy country``),
  with occurrence bias correlated with the same attribute: the setup
  of Section 2 and Appendix A;
* :func:`curated_scenario` — hand-specified ground truth, the setup of
  the Table 2 / AMT evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.types import Polarity, SubjectiveProperty
from ..kb.entity import Entity
from .author import TrueParameters


@dataclass(frozen=True, slots=True)
class PropertySpec:
    """Generative specification for one property over one entity type.

    ``spurious_positive_rate`` / ``spurious_negative_rate`` model the
    Web's long-tail chatter: a fame-independent expected count of
    statements that do not reflect anyone's considered opinion (quoted
    phrases, jokes, boilerplate). Section 2's empirical study found
    positive hits for nearly every Californian city — including ones
    nobody would call big — which is exactly this floor.
    """

    property: SubjectiveProperty
    params: TrueParameters
    ground_truth: dict[str, Polarity]
    popularity: dict[str, float] = field(default_factory=dict)
    spurious_positive_rate: float = 0.0
    spurious_negative_rate: float = 0.0

    def popularity_of(self, entity_id: str) -> float:
        return self.popularity.get(entity_id, 1.0)

    def truth_of(self, entity_id: str) -> Polarity:
        return self.ground_truth[entity_id]


@dataclass(frozen=True, slots=True)
class Scenario:
    """A complete synthetic-world specification for one entity type."""

    name: str
    entity_type: str
    entities: tuple[Entity, ...]
    specs: tuple[PropertySpec, ...]

    def __post_init__(self) -> None:
        for entity in self.entities:
            if entity.entity_type != self.entity_type:
                raise ValueError(
                    f"entity {entity.id} is not of type {self.entity_type!r}"
                )
        entity_ids = {entity.id for entity in self.entities}
        for spec in self.specs:
            missing = entity_ids - set(spec.ground_truth)
            if missing:
                raise ValueError(
                    f"spec {spec.property.text!r} lacks ground truth for "
                    f"{sorted(missing)[:3]}..."
                )

    @property
    def type_noun(self) -> str:
        return self.entity_type

    def entity_by_id(self, entity_id: str) -> Entity:
        for entity in self.entities:
            if entity.id == entity_id:
                return entity
        raise KeyError(entity_id)


def covariate_scenario(
    name: str,
    entities: list[Entity],
    property_text: str,
    attribute: str,
    threshold: float,
    params: TrueParameters,
    occurrence_exponent: float = 0.35,
    invert: bool = False,
    spurious_positive_rate: float = 0.0,
    spurious_negative_rate: float = 0.0,
) -> Scenario:
    """Scenario whose ground truth follows an objective attribute.

    The dominant opinion is positive iff the entity's attribute exceeds
    ``threshold`` (or falls below it with ``invert``). Popularity —
    the occurrence-bias multiplier — scales as
    ``(attribute / threshold) ** occurrence_exponent``, reproducing the
    paper's observation that big cities are mentioned far more often
    than small ones.
    """
    if not entities:
        raise ValueError("scenario needs at least one entity")
    entity_type = entities[0].entity_type
    property_ = SubjectiveProperty.parse(property_text)
    ground_truth: dict[str, Polarity] = {}
    popularity: dict[str, float] = {}
    for entity in entities:
        value = entity.attribute(attribute)
        above = value > threshold
        positive = above != invert
        ground_truth[entity.id] = (
            Polarity.POSITIVE if positive else Polarity.NEGATIVE
        )
        ratio = max(value, 1e-9) / threshold
        if invert:
            ratio = 1.0 / ratio
        popularity[entity.id] = _clamp(
            math.pow(ratio, occurrence_exponent), 0.01, 50.0
        )
    spec = PropertySpec(
        property=property_,
        params=params,
        ground_truth=ground_truth,
        popularity=popularity,
        spurious_positive_rate=spurious_positive_rate,
        spurious_negative_rate=spurious_negative_rate,
    )
    return Scenario(
        name=name,
        entity_type=entity_type,
        entities=tuple(entities),
        specs=(spec,),
    )


def curated_scenario(
    name: str,
    entities: list[Entity],
    truths: dict[str, dict[str, bool]],
    params_by_property: dict[str, TrueParameters],
    popularity: dict[str, float] | None = None,
    popularity_by_property: dict[str, dict[str, float]] | None = None,
    spurious_by_property: dict[str, tuple[float, float]] | None = None,
) -> Scenario:
    """Scenario with hand-specified ground truth.

    ``truths`` maps property text to per-entity-name booleans;
    ``params_by_property`` supplies the per-property generative biases
    (the paper stresses these differ across property-type pairs).
    ``popularity_by_property`` overrides the shared ``popularity`` for
    individual properties — the hook for per-combination occurrence
    bias, where holding a property makes an entity more talked-about.
    """
    if not entities:
        raise ValueError("scenario needs at least one entity")
    entity_type = entities[0].entity_type
    by_name = {entity.name.lower(): entity for entity in entities}
    specs = []
    for property_text, truth_by_name in truths.items():
        ground_truth: dict[str, Polarity] = {}
        for name_key, positive in truth_by_name.items():
            entity = by_name.get(name_key.lower())
            if entity is None:
                raise KeyError(
                    f"ground truth refers to unknown entity {name_key!r}"
                )
            ground_truth[entity.id] = (
                Polarity.POSITIVE if positive else Polarity.NEGATIVE
            )
        spec_popularity = dict(popularity or {})
        if popularity_by_property and property_text in popularity_by_property:
            spec_popularity.update(popularity_by_property[property_text])
        spurious_pos, spurious_neg = (spurious_by_property or {}).get(
            property_text, (0.0, 0.0)
        )
        specs.append(
            PropertySpec(
                property=SubjectiveProperty.parse(property_text),
                params=params_by_property[property_text],
                ground_truth=ground_truth,
                popularity=spec_popularity,
                spurious_positive_rate=spurious_pos,
                spurious_negative_rate=spurious_neg,
            )
        )
    return Scenario(
        name=name,
        entity_type=entity_type,
        entities=tuple(entities),
        specs=tuple(specs),
    )


def _clamp(value: float, low: float, high: float) -> float:
    return max(low, min(high, value))
