"""Author-level generative sampling.

Implements the exact generative story of the paper's Figure 7: authors
agree with the dominant opinion with probability ``pA`` and express a
positive opinion with probability ``p+S`` / a negative one with
``p-S``. Two sampling granularities are provided:

* :func:`sample_author_action` — one author's opinion and decision,
  used by tests that validate the model against its own story;
* :func:`sample_statement_counts` — the Poisson shortcut over the whole
  author population, used by the corpus generator (equivalent in the
  large-``n`` regime the paper operates in).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.poisson import sample_poisson
from ..core.types import Polarity


@dataclass(frozen=True, slots=True)
class TrueParameters:
    """Ground-truth generative parameters for one property-type pair.

    ``rate_positive``/``rate_negative`` are the population-level
    expected statement counts ``n * p+S`` / ``n * p-S`` for an entity
    of unit popularity.
    """

    agreement: float
    rate_positive: float
    rate_negative: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.agreement <= 1.0:
            raise ValueError("agreement must lie in [0, 1]")
        if self.rate_positive < 0 or self.rate_negative < 0:
            raise ValueError("rates must be non-negative")

    def poisson_rates(
        self, dominant_positive: bool, popularity: float = 1.0
    ) -> tuple[float, float]:
        """Expected ``(C+, C-)`` for an entity with the given dominant
        opinion, scaled by the entity's popularity."""
        p_a = self.agreement
        if dominant_positive:
            share_positive, share_negative = p_a, 1.0 - p_a
        else:
            share_positive, share_negative = 1.0 - p_a, p_a
        return (
            popularity * share_positive * self.rate_positive,
            popularity * share_negative * self.rate_negative,
        )


def sample_author_opinion(
    dominant: Polarity, agreement: float, rng: random.Random
) -> Polarity:
    """One author's opinion given the dominant opinion (layer 2->3)."""
    if dominant is Polarity.NEUTRAL:
        raise ValueError("dominant opinion must be polarized")
    if rng.random() < agreement:
        return dominant
    return dominant.flipped()

def sample_author_action(
    dominant: Polarity,
    params: TrueParameters,
    n_documents: int,
    rng: random.Random,
) -> Polarity:
    """One author's emitted statement: +, -, or N for silence.

    ``n_documents`` converts the population rates back into per-author
    probabilities ``p±S = rate / n``.
    """
    if n_documents <= 0:
        raise ValueError("n_documents must be positive")
    opinion = sample_author_opinion(dominant, params.agreement, rng)
    if opinion is Polarity.POSITIVE:
        p_state = params.rate_positive / n_documents
    else:
        p_state = params.rate_negative / n_documents
    if p_state > 1.0:
        raise ValueError("rates exceed the author population size")
    if rng.random() < p_state:
        return opinion
    return Polarity.NEUTRAL


def sample_statement_counts(
    dominant: Polarity,
    params: TrueParameters,
    rng: random.Random,
    popularity: float = 1.0,
) -> tuple[int, int]:
    """Population-level ``(C+, C-)`` via the Poisson approximation."""
    if dominant is Polarity.NEUTRAL:
        raise ValueError("dominant opinion must be polarized")
    rate_pos, rate_neg = params.poisson_rates(
        dominant is Polarity.POSITIVE, popularity
    )
    return sample_poisson(rate_pos, rng), sample_poisson(rate_neg, rng)
