"""The machine-readable response schema shared by CLI and HTTP.

``repro ask --format json`` / ``repro query --format json`` and the
HTTP server's ``GET /query`` build their payloads through the same two
functions, so the two surfaces cannot drift apart — one test asserts
they are byte-identical over the same opinion table.

Both payload kinds are format-tagged like every other artefact in the
repo (``serve_ask`` / ``serve_query``, version 1) and carry the index
generation they were answered from, plus the degraded-fallback flags
persisted with the table (see docs/robustness.md): a term answered by
a majority-vote fallback rather than a model posterior is marked
``"degraded": true``.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..core.query import QueryHit, SubjectiveQuery
from ..core.types import Opinion, PropertyTypeKey
from .index import OpinionIndex

SERVE_SCHEMA_VERSION = 1


def ask_response(
    query: SubjectiveQuery,
    hits: Iterable[QueryHit],
    index: OpinionIndex,
) -> dict[str, Any]:
    """Response for a free-text conjunctive/negated query."""
    return {
        "format": "serve_ask",
        "version": SERVE_SCHEMA_VERSION,
        "generation": index.generation,
        "query": query.text(),
        "entity_type": query.entity_type,
        "terms": [
            {
                "property": term.property.text,
                "negated": term.negated,
                "degraded": index.is_degraded(
                    term.key(query.entity_type)
                ),
            }
            for term in query.terms
        ],
        "hits": [
            {
                "entity": hit.entity_id,
                "score": hit.score,
                "per_term": list(hit.per_term),
                "confident": hit.confident,
            }
            for hit in hits
        ],
    }


def listing_response(
    key: PropertyTypeKey,
    negative: bool,
    min_probability: float,
    opinions: Iterable[Opinion],
    index: OpinionIndex,
) -> dict[str, Any]:
    """Response for a single-combination listing (``repro query``)."""
    return {
        "format": "serve_query",
        "version": SERVE_SCHEMA_VERSION,
        "generation": index.generation,
        "property": key.property.text,
        "entity_type": key.entity_type,
        "negative": bool(negative),
        "min_probability": float(min_probability),
        "degraded": index.is_degraded(key),
        "hits": [
            {
                "entity": opinion.entity_id,
                "probability": opinion.probability,
                "positive": opinion.evidence.positive,
                "negative": opinion.evidence.negative,
            }
            for opinion in opinions
        ],
    }
