"""The machine-readable response schema shared by CLI and HTTP.

``repro ask --format json`` / ``repro query --format json`` and the
HTTP server's ``GET /query`` build their payloads through the same
functions, so the two surfaces cannot drift apart — one test asserts
they are byte-identical over the same opinion table. The same holds
for failures: every 4xx/5xx body (and the CLI's JSON-mode error
output) goes through :func:`error_response`, pinned by a golden-file
test.

All payload kinds are format-tagged like every other artefact in the
repo (``serve_ask`` / ``serve_query`` / ``serve_batch`` /
``serve_error``, version 2) and carry the index generation they were
answered from. Two distinct "degraded" notions coexist and must not be
conflated:

* ``"degraded"`` on a term or listing — the *combination* was answered
  by a majority-vote fallback rather than a model posterior, a
  property of the mined table (see docs/robustness.md).
* ``"degraded_mode"`` at the top level — the *server* is answering
  from its last good snapshot because a reload failed or the storage
  breaker is open (version 2 addition; see "Serving resilience" in
  docs/robustness.md). Builders always emit ``false``; the server
  stamps ``true`` post-cache so cached entries stay state-free.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..core.params import ModelParameters
from ..core.query import QueryHit, SubjectiveQuery
from ..core.types import Opinion, PropertyTypeKey
from ..extraction.provenance import PairProvenance
from .index import OpinionIndex

SERVE_SCHEMA_VERSION = 2


def ask_response(
    query: SubjectiveQuery,
    hits: Iterable[QueryHit],
    index: OpinionIndex,
) -> dict[str, Any]:
    """Response for a free-text conjunctive/negated query."""
    return {
        "format": "serve_ask",
        "version": SERVE_SCHEMA_VERSION,
        "generation": index.generation,
        "degraded_mode": False,
        "query": query.text(),
        "entity_type": query.entity_type,
        "terms": [
            {
                "property": term.property.text,
                "negated": term.negated,
                "degraded": index.is_degraded(
                    term.key(query.entity_type)
                ),
            }
            for term in query.terms
        ],
        "hits": [
            {
                "entity": hit.entity_id,
                "score": hit.score,
                "per_term": list(hit.per_term),
                "confident": hit.confident,
            }
            for hit in hits
        ],
    }


def listing_response(
    key: PropertyTypeKey,
    negative: bool,
    min_probability: float,
    opinions: Iterable[Opinion],
    index: OpinionIndex,
) -> dict[str, Any]:
    """Response for a single-combination listing (``repro query``)."""
    return {
        "format": "serve_query",
        "version": SERVE_SCHEMA_VERSION,
        "generation": index.generation,
        "degraded_mode": False,
        "property": key.property.text,
        "entity_type": key.entity_type,
        "negative": bool(negative),
        "min_probability": float(min_probability),
        "degraded": index.is_degraded(key),
        "hits": [
            {
                "entity": opinion.entity_id,
                "probability": opinion.probability,
                "positive": opinion.evidence.positive,
                "negative": opinion.evidence.negative,
            }
            for opinion in opinions
        ],
    }


def explain_response(
    entity_id: str,
    key: PropertyTypeKey,
    opinion: Opinion,
    index: OpinionIndex,
    *,
    pair: PairProvenance | None = None,
    model: ModelParameters | None = None,
    convergence: dict[str, Any] | None = None,
    lineage_available: bool = False,
) -> dict[str, Any]:
    """Full lineage for one answer (``repro explain`` / ``GET
    /explain``).

    The posterior and counts come from the opinion table; ``model``
    is the combination's learned ``(pA, p+S, p-S)``, ``convergence``
    its EM verdict, and ``pair`` the bounded statement samples — all
    three from the provenance sidecar, each ``null`` when the sidecar
    (or that pair's entry) is absent. ``lineage_available`` reports
    whether a sidecar was loaded at all, so clients can distinguish
    "no provenance captured" from "this pair had no evidence".
    """
    return {
        "format": "serve_explain",
        "version": SERVE_SCHEMA_VERSION,
        "generation": index.generation,
        "degraded_mode": False,
        "entity": entity_id,
        "property": key.property.text,
        "entity_type": key.entity_type,
        "posterior": opinion.probability,
        "polarity": str(opinion.polarity),
        "decided": opinion.decided,
        "evidence": {
            "positive": opinion.evidence.positive,
            "negative": opinion.evidence.negative,
        },
        "degraded": index.is_degraded(key),
        "model": (
            None
            if model is None
            else {
                "agreement": model.agreement,
                "rate_positive": model.rate_positive,
                "rate_negative": model.rate_negative,
            }
        ),
        "convergence": (
            None if convergence is None else dict(convergence)
        ),
        "lineage": {
            "available": bool(lineage_available),
            "positive_seen": (
                None if pair is None else pair.positive_seen
            ),
            "negative_seen": (
                None if pair is None else pair.negative_seen
            ),
            "samples": (
                []
                if pair is None
                else [sample.to_dict() for sample in pair.samples]
            ),
        },
    }


def batch_response(
    results: list[dict[str, Any]], generation: int
) -> dict[str, Any]:
    """Envelope for ``POST /batch``: one entry per submitted query."""
    return {
        "format": "serve_batch",
        "version": SERVE_SCHEMA_VERSION,
        "generation": generation,
        "degraded_mode": False,
        "results": results,
    }


def error_response(
    code: str,
    message: str,
    *,
    retry_after: float | None = None,
    degraded: bool = False,
    request_id: str | None = None,
) -> dict[str, Any]:
    """The one error envelope for every 4xx/5xx body, HTTP and CLI.

    ``code`` is the stable machine-readable discriminator
    (``bad_request``, ``not_found``, ``rate_limited``, ``overloaded``,
    ``deadline_exceeded``, ``draining``, ``reload_failed``,
    ``breaker_open``, ``rollback_unavailable``, ...); ``error`` keeps
    the human-readable message under the key earlier clients already
    parse. ``retry_after`` mirrors the HTTP ``Retry-After`` header in
    seconds (null when retrying is not the remedy), and ``degraded``
    reports whether the server is in degraded mode at rejection time.
    ``request_id`` joins the error to its access-log line and trace
    span; the HTTP server always supplies the id it echoed in
    ``X-Request-Id``, while the CLI path has no request and emits
    null. Still schema version 2: adding a key clients never parsed
    breaks nobody, and the CLI/HTTP byte-parity test pins both sides
    moving together.
    """
    return {
        "format": "serve_error",
        "version": SERVE_SCHEMA_VERSION,
        "code": code,
        "error": message,
        "retry_after": retry_after,
        "degraded": bool(degraded),
        "request_id": request_id,
    }
