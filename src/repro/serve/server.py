"""Concurrent HTTP query server over a mined opinion table.

The paper's motivating workload — search queries like ``safe cities``
answered from structured data — is a *serving* workload: mine once,
answer millions of low-latency lookups. This module is that serving
layer, stdlib-only.

:class:`OpinionService` is the engine for *both* serving cores: the
asyncio event loop in :mod:`repro.serve.aio` (the ``repro serve``
default, with ``--workers N`` multi-process mode) routes requests
into the same service object this module's threaded
:class:`ReproServer` does, so every response contract below is shared
byte-for-byte. The thread-per-connection front end survives behind
``--legacy-threaded`` until the migration window closes; new
front-end behaviour belongs in :mod:`repro.serve.aio`.

* :class:`OpinionService` — the engine: an immutable
  :class:`~repro.serve.index.OpinionIndex` snapshot, a generation-
  scoped :class:`~repro.serve.cache.QueryCache`, admission control
  (per-client token buckets + a bounded queue, see
  :mod:`~repro.serve.admission`), per-request deadlines, and safe
  hot-reload: candidate artefacts are validated off to the side
  (load, schema check, smoke query), swapped in with one reference
  assignment only on success, and the previous generation is kept for
  one-step rollback. A failed reload quarantines the artefact, flips
  the service *degraded* (still answering, from the last good
  snapshot, with ``degraded_mode`` stamped into responses), and feeds
  a circuit breaker that fails further reloads fast.
* :class:`ReproServer` — a ``ThreadingHTTPServer`` exposing
  ``GET /query`` (free-text or property+type), ``POST /batch``,
  ``GET /healthz`` (health state machine: ``healthy`` / ``degraded``
  / ``draining``), ``GET /metrics`` (Prometheus exposition from the
  shared :class:`~repro.obs.metrics.MetricsRegistry`),
  ``POST /admin/reload``, and ``POST /admin/rollback``. Every
  4xx/5xx body is the one :func:`~repro.serve.schema.error_response`
  envelope.
* :func:`install_signal_handlers` — SIGHUP triggers a reload of the
  source artefact; SIGTERM begins a graceful drain (stop accepting,
  finish in-flight, exit 0) when a server is supplied, else a clean
  exit (used by ``repro serve``).

Every handled request is counted, latency-observed into a streaming
histogram (with the request id attached as an exemplar), accounted
against the availability and latency SLOs (:mod:`repro.obs.slo`),
appended to the JSONL access log when one is configured, and — when a
tracer is attached — head-sampled into a ``serve.request`` span with
an always-keep rule for slow or failed requests. Spans are adopted
into the server's trace under a lock — the per-process tracer is not
itself thread-safe. Each request carries an ``X-Request-Id``
(client-supplied or generated) echoed on every response and stamped
into error envelopes, access-log lines, and kept spans, so one id
joins all three records.
"""

from __future__ import annotations

import itertools
import json
import math
import re
import secrets
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlsplit

from ..core.query import QueryError, SubjectiveQuery
from ..core.result import OpinionTable
from ..corpus.document import Document
from ..core.types import (
    Opinion,
    Polarity,
    PropertyTypeKey,
    SubjectiveProperty,
)
from ..extraction.provenance import ProvenanceIndex
from ..obs.drift import DriftReport, compare_tables
from ..obs.histogram import WindowedHistogram
from ..obs.metrics import MetricsRegistry
from ..obs.slo import SLO_STATES, SloTracker
from ..obs.trace import Tracer
from ..storage import load, provenance_path_for
from .access_log import AccessLog
from .admission import (
    DEFAULT_CLIENT_BURST,
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_QUEUE_TIMEOUT,
    DEFAULT_REQUEST_DEADLINE,
    AdmissionController,
    AdmissionDecision,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
)
from .cache import DEFAULT_MAX_ENTRIES, QueryCache
from .faults import InjectedDisconnect, ServeFaultInjector
from .index import OpinionIndex
from .schema import (
    ask_response,
    batch_response,
    error_response,
    explain_response,
    listing_response,
)

DEFAULT_MAX_INFLIGHT = 32
DEFAULT_TOP = 10
#: Upper bounds keeping one request's work predictable.
MAX_TOP = 1000
MAX_BATCH_QUERIES = 256
MAX_BODY_BYTES = 1 << 20

#: Health state machine, exposed in /healthz and as a gauge.
HEALTH_STATES = {"healthy": 0, "degraded": 1, "draining": 2}
#: Failed-artefact records kept for /healthz (newest last).
MAX_QUARANTINE_RECORDS = 16

#: Head-sampling default: keep every Nth request's span (1 = all).
DEFAULT_TRACE_SAMPLE = 1
#: Tail rule: a request at least this slow keeps its span regardless
#: of the sampling decision — the outliers are what traces are *for*.
DEFAULT_TRACE_SLOW_SECONDS = 0.5
#: Rolling window behind the /healthz latency block.
LATENCY_WINDOW_SECONDS = 300.0

#: Client-supplied request ids must look like ids, not payloads.
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def new_request_id() -> str:
    """A fresh 16-hex-char request id."""
    return secrets.token_hex(8)


class ServeError(ValueError):
    """A request problem (becomes a 4xx/5xx error envelope).

    ``code`` is the stable machine-readable discriminator carried in
    the response body; ``retry_after`` mirrors the ``Retry-After``
    header when retrying is the remedy.
    """

    def __init__(
        self,
        message: str,
        status: int = 400,
        *,
        code: str | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        if code is None:
            code = "bad_request" if status < 500 else "internal"
        self.code = code
        self.retry_after = retry_after


def resolve_opinion(
    table: OpinionTable,
    entity_id: str,
    property_text: str,
    entity_type: str | None = None,
) -> tuple[PropertyTypeKey, Opinion]:
    """Find the one opinion ``/explain`` is about.

    With an explicit ``entity_type`` the lookup is exact; without one
    the property must resolve to a single combination across the
    entity's opinions — ambiguity is a 400 listing the candidate
    types, absence a 404. Shared by the CLI and the HTTP route so
    both surfaces resolve identically.
    """
    try:
        prop = SubjectiveProperty.parse(property_text)
    except ValueError as error:
        raise ServeError(str(error)) from None
    if entity_type is not None:
        key = PropertyTypeKey(property=prop, entity_type=entity_type)
        opinion = table.get(entity_id, key)
        if opinion is None:
            raise ServeError(
                f"no opinion for entity {entity_id!r} and property "
                f"{prop.text!r} of type {entity_type!r}",
                status=404,
                code="not_found",
            )
        return key, opinion
    matches = [
        opinion
        for opinion in table.for_entity(entity_id)
        if opinion.key.property == prop
    ]
    if not matches:
        raise ServeError(
            f"no opinion for entity {entity_id!r} and property "
            f"{prop.text!r}",
            status=404,
            code="not_found",
        )
    if len(matches) > 1:
        types = sorted(
            opinion.key.entity_type for opinion in matches
        )
        raise ServeError(
            f"property {prop.text!r} is ambiguous for entity "
            f"{entity_id!r}; pass type= one of {', '.join(types)}"
        )
    return matches[0].key, matches[0]


def load_provenance_sidecar(
    source: str | Path | None,
) -> ProvenanceIndex | None:
    """Load the lineage sidecar next to an opinions artefact.

    Best-effort by design: a missing or unreadable sidecar degrades
    ``/explain`` to counts-only answers, it never blocks serving (or
    a reload) of a perfectly good opinion table.
    """
    if source is None:
        return None
    path = provenance_path_for(source)
    if not path.exists():
        return None
    try:
        sidecar = load(path)
    except Exception:
        return None
    if not isinstance(sidecar, ProvenanceIndex):
        return None
    return sidecar


class OpinionService:
    """The query engine behind the HTTP API (usable standalone).

    ``ask``/``listing`` return ``(response_dict, cached)``. Queries run
    against a single index snapshot taken at entry, so a concurrent
    :meth:`swap` can never hand a request half of each table.
    """

    def __init__(
        self,
        table: OpinionTable,
        *,
        source_path: str | Path | None = None,
        cache_size: int = DEFAULT_MAX_ENTRIES,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        request_deadline: float = DEFAULT_REQUEST_DEADLINE,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        queue_timeout: float = DEFAULT_QUEUE_TIMEOUT,
        client_rate: float = 0.0,
        client_burst: float = DEFAULT_CLIENT_BURST,
        fault_injector: ServeFaultInjector | None = None,
        reload_breaker: CircuitBreaker | None = None,
        access_log: AccessLog | None = None,
        slo: SloTracker | None = None,
        trace_sample: int = DEFAULT_TRACE_SAMPLE,
        trace_slow_seconds: float = DEFAULT_TRACE_SLOW_SECONDS,
        provenance: ProvenanceIndex | None = None,
        drift_guard_fraction: float | None = None,
        ingest_pipeline: Any | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be at least 1, got {max_inflight}"
            )
        if request_deadline <= 0:
            raise ValueError(
                "request_deadline must be positive, "
                f"got {request_deadline}"
            )
        if trace_sample < 1:
            raise ValueError(
                f"trace_sample must be >= 1, got {trace_sample}"
            )
        if drift_guard_fraction is not None and not (
            0.0 < drift_guard_fraction <= 1.0
        ):
            raise ValueError(
                "drift_guard_fraction must be in (0, 1], got "
                f"{drift_guard_fraction}"
            )
        self.source_path = (
            Path(source_path) if source_path is not None else None
        )
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self.tracer = tracer
        self.max_inflight = int(max_inflight)
        self.request_deadline = float(request_deadline)
        self.cache = QueryCache(cache_size, self.registry)
        self.admission = AdmissionController(
            self.max_inflight,
            queue_depth=queue_depth,
            queue_timeout=queue_timeout,
            client_rate=client_rate,
            client_burst=client_burst,
        )
        self.faults = fault_injector
        self.reload_breaker = (
            reload_breaker
            if reload_breaker is not None
            else CircuitBreaker()
        )
        self.access_log = access_log
        self.slo = slo if slo is not None else SloTracker()
        self.trace_sample = int(trace_sample)
        self.trace_slow_seconds = float(trace_slow_seconds)
        self.latency_window = WindowedHistogram(
            window_seconds=LATENCY_WINDOW_SECONDS
        )
        # Lock-free head-sampling counter: itertools.count.__next__
        # is atomic in CPython, so the hot path takes _trace_lock
        # only for the spans it actually keeps.
        self._trace_seen = itertools.count(1)
        self._swap_lock = threading.Lock()
        self._trace_lock = threading.Lock()
        # Serializes whole ingest cycles (journal append -> refit ->
        # publish); _swap_lock is still taken for the swap itself so
        # ingests and file reloads interleave safely.
        self._ingest_lock = threading.Lock()
        self.ingest_pipeline = ingest_pipeline
        self._index = OpinionIndex(table, generation=1)
        self._current_table = table
        self._current_source = self.source_path
        self._current_provenance = provenance
        # One atomic attribute carrying the whole serving snapshot, so
        # /explain never reads the new table against the old sidecar
        # mid-swap.
        self._live: tuple[
            OpinionIndex, OpinionTable, ProvenanceIndex | None
        ] = (self._index, table, provenance)
        self._previous: (
            tuple[
                OpinionTable, Path | None, ProvenanceIndex | None
            ]
            | None
        ) = None
        self._degraded_reason: str | None = None
        self._quarantine: list[dict[str, Any]] = []
        self.drift_guard_fraction = drift_guard_fraction
        self._last_drift: dict[str, Any] | None = None
        self._drift_alarm: str | None = None
        # Sidecar cache: (path, stat signature) -> loaded index, so a
        # reload whose sidecar file did not change skips the re-parse
        # while a rewritten sidecar (new mtime/size) is re-read and
        # /explain lineage follows the new generation. The loaded
        # index is cached alongside the signature — never resolved
        # through _current_provenance — so rollback or an intervening
        # swap cannot alias the cache onto the wrong generation.
        self._sidecar_cache: (
            tuple[tuple[str, int, int], ProvenanceIndex | None] | None
        ) = None
        if provenance is not None and self.source_path is not None:
            signature = self._sidecar_signature(self.source_path)
            if signature is not None:
                self._sidecar_cache = (signature, provenance)
        self._publish_gauges()

    # ------------------------------------------------------------------
    # Health state machine
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether responses come from a last-good snapshot."""
        return self._degraded_reason is not None

    def health_state(self) -> str:
        """``healthy`` / ``degraded`` / ``draining`` (draining wins)."""
        if self.admission.draining:
            return "draining"
        if self.degraded:
            return "degraded"
        return "healthy"

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------
    @property
    def index(self) -> OpinionIndex:
        """The live snapshot (one atomic attribute read)."""
        return self._index

    def swap(
        self,
        table: OpinionTable,
        source: str | Path | None = None,
        provenance: ProvenanceIndex | None = None,
    ) -> OpinionIndex:
        """Atomically replace the live table (trusted caller path).

        The replacement index is built *before* publication and
        installed with a single reference assignment; requests either
        see the old generation or the new one, never a mixture. Stale
        cache entries are purged eagerly so memory is not held by
        answers no one can receive anymore. The outgoing generation is
        retained for one-step :meth:`rollback`.
        """
        with self._swap_lock:
            index = OpinionIndex(
                table, generation=self._index.generation + 1
            )
            self._publish(table, source, index, provenance)
            return index

    def _publish(
        self,
        table: OpinionTable,
        source: str | Path | None,
        index: OpinionIndex,
        provenance: ProvenanceIndex | None = None,
        trigger: str = "reload",
    ) -> DriftReport:
        """Install a validated (table, index) pair; callers hold
        ``_swap_lock``. Returns the generation-drift report against
        the table being retired."""
        drift = compare_tables(self._current_table, table)
        self._previous = (
            self._current_table,
            self._current_source,
            self._current_provenance,
        )
        self._current_table = table
        self._current_source = (
            Path(source) if source is not None else None
        )
        self._current_provenance = provenance
        self._index = index
        self._live = (index, table, provenance)
        self.cache.purge_generations(index.generation)
        self.registry.inc("repro_serve_reloads_total")
        self._degraded_reason = None
        self.reload_breaker.record_success()
        self._note_drift(drift, trigger, index.generation)
        self._publish_gauges()
        return drift

    def _note_drift(
        self, drift: DriftReport, trigger: str, generation: int
    ) -> None:
        """Publish one snapshot swap's drift: gauges, the /healthz
        line, the opt-in guard, and a structured stderr record."""
        registry = self.registry
        registry.set_gauge(
            "repro_serve_generation_flips", drift.flips
        )
        registry.set_gauge(
            "repro_serve_generation_flip_fraction",
            drift.flip_fraction,
        )
        registry.set_gauge(
            "repro_serve_generation_pairs_added", drift.added
        )
        registry.set_gauge(
            "repro_serve_generation_pairs_removed", drift.removed
        )
        registry.set_gauge(
            "repro_serve_generation_entity_churn",
            drift.entity_churn,
        )
        registry.set_gauge(
            "repro_serve_generation_delta_max", drift.delta_max
        )
        summary = drift.summary()
        self._last_drift = {"trigger": trigger, **summary}
        guard = self.drift_guard_fraction
        if (
            guard is not None
            and drift.common
            and drift.flip_fraction > guard
        ):
            self._drift_alarm = (
                f"{trigger} flipped {drift.flips} of "
                f"{drift.common} answers "
                f"({drift.flip_fraction:.1%} > guard {guard:.1%})"
            )
            registry.inc("repro_serve_drift_alarms_total")
        else:
            self._drift_alarm = None
        print(
            json.dumps(
                {
                    "event": "serve.generation_drift",
                    "trigger": trigger,
                    "generation": generation,
                    "alarm": self._drift_alarm,
                    **summary,
                },
                sort_keys=True,
            ),
            file=sys.stderr,
            flush=True,
        )

    def _validate_candidate(
        self, table: Any, source: Path
    ) -> OpinionIndex:
        """Vet a candidate artefact before it can touch live traffic.

        Checks the artefact kind, rejects empty tables (a truncated
        file decodes to nothing), scans every posterior for NaN/Inf
        leaks, then builds the replacement index off to the side and
        smoke-queries it. Raises ``ValueError`` with a reason on any
        failure; nothing observable changes until the caller publishes
        the returned index.
        """
        if not isinstance(table, OpinionTable):
            raise ValueError(
                f"{source} is not an opinions artefact"
            )
        if len(table) == 0:
            raise ValueError(
                f"{source} holds no opinions (truncated artefact?)"
            )
        for opinion in table:
            if not (
                math.isfinite(opinion.probability)
                and 0.0 <= opinion.probability <= 1.0
            ):
                raise ValueError(
                    f"{source} has a posterior outside [0, 1] for "
                    f"entity {opinion.entity_id!r}"
                )
        index = OpinionIndex(
            table, generation=self._index.generation + 1
        )
        smoke_key = table.keys()[0]
        if not (
            index.entities_with(smoke_key, Polarity.POSITIVE)
            or index.entities_with(smoke_key, Polarity.NEGATIVE)
        ):
            raise ValueError(
                f"smoke query over {smoke_key} returned nothing"
            )
        return index

    def _note_reload_failure(
        self, source: Path, error: Exception
    ) -> None:
        """Quarantine a bad artefact: counters, bounded record, one
        structured log line, degraded mode, breaker feedback."""
        reason = f"{type(error).__name__}: {error}"
        self.registry.inc("repro_serve_reload_failures_total")
        self.registry.inc("repro_serve_quarantined_artefacts_total")
        self._quarantine.append(
            {"source": str(source), "reason": reason}
        )
        del self._quarantine[:-MAX_QUARANTINE_RECORDS]
        self._degraded_reason = f"reload of {source} failed: {reason}"
        self.reload_breaker.record_failure()
        self._publish_gauges()
        print(
            json.dumps(
                {
                    "event": "serve.reload_failed",
                    "source": str(source),
                    "reason": reason,
                    "live_generation": self._index.generation,
                    "breaker": self.reload_breaker.state,
                },
                sort_keys=True,
            ),
            file=sys.stderr,
            flush=True,
        )

    def _sidecar_signature(
        self, source: str | Path
    ) -> tuple[str, int, int] | None:
        """Freshness fingerprint of an artefact's lineage sidecar:
        (path, mtime_ns, size), or None when the file is absent."""
        path = provenance_path_for(source)
        try:
            stat = path.stat()
        except OSError:
            return None
        return (str(path), stat.st_mtime_ns, stat.st_size)

    def _load_sidecar(
        self, source: str | Path
    ) -> ProvenanceIndex | None:
        """Load the sidecar next to ``source``, skipping the re-parse
        when its stat signature matches the last load. A rewritten
        sidecar (mtime or size moved) is always re-read, so /explain
        lineage follows the generation a reload just installed."""
        signature = self._sidecar_signature(source)
        if signature is None:
            return None
        cached = self._sidecar_cache
        if cached is not None and cached[0] == signature:
            return cached[1]
        sidecar = load_provenance_sidecar(source)
        self._sidecar_cache = (signature, sidecar)
        return sidecar

    def reload(self, path: str | Path | None = None) -> dict[str, Any]:
        """Validate the opinions artefact off to the side, then swap.

        Any failure (missing file, wrong artefact kind, empty or
        corrupt table, failed smoke query) leaves the current index
        serving, quarantines the artefact, marks the service degraded,
        and counts against the reload circuit breaker; once the
        breaker opens, further reloads fail fast with 503 until the
        cooldown elapses.
        """
        source = Path(path) if path is not None else self.source_path
        if source is None:
            raise ServeError(
                "no opinions path configured to reload from"
            )
        if not self.reload_breaker.allow():
            retry_after = self.reload_breaker.retry_after()
            raise ServeError(
                "reload breaker is open after repeated failures; "
                f"retry in {retry_after:.1f}s",
                status=503,
                code="breaker_open",
                retry_after=retry_after,
            )
        with self._swap_lock:
            try:
                fault = (
                    self.faults.reload_fault()
                    if self.faults is not None
                    else None
                )
                if fault is not None:
                    self.registry.inc(
                        "repro_serve_faults_injected_total"
                    )
                if fault == "corrupt":
                    raise ValueError(
                        "injected fault: artefact unreadable"
                    )
                table = load(source)
                if fault == "truncate":
                    table = OpinionTable()
                index = self._validate_candidate(table, source)
                if fault == "fail_swap":
                    raise ValueError("injected fault: swap failed")
            except Exception as error:
                self._note_reload_failure(source, error)
                raise ServeError(
                    "reload failed, previous table still live: "
                    f"{error}",
                    status=500,
                    code="reload_failed",
                ) from None
            drift = self._publish(
                table, source, index, self._load_sidecar(source)
            )
        return {
            "status": "reloaded",
            "source": str(source),
            "generation": index.generation,
            "opinions": index.n_opinions,
            "drift": drift.summary(),
        }

    def rollback(self) -> dict[str, Any]:
        """Return to the previous generation (one step), or clear a
        degraded flag when there is nothing to return to."""
        with self._swap_lock:
            if self._previous is not None:
                table, source, provenance = self._previous
                index = OpinionIndex(
                    table, generation=self._index.generation + 1
                )
                drift = compare_tables(self._current_table, table)
                self._previous = None
                self._current_table = table
                self._current_source = source
                self._current_provenance = provenance
                self._index = index
                self._live = (index, table, provenance)
                self.cache.purge_generations(index.generation)
                self._degraded_reason = None
                self.reload_breaker.reset()
                self.registry.inc("repro_serve_rollbacks_total")
                self._note_drift(
                    drift, "rollback", index.generation
                )
                self._publish_gauges()
                return {
                    "status": "rolled_back",
                    "source": (
                        str(source) if source is not None else None
                    ),
                    "generation": index.generation,
                    "opinions": index.n_opinions,
                    "drift": drift.summary(),
                }
            if self._degraded_reason is not None:
                # Degraded but never successfully swapped: generation 1
                # is still live, so "rolling back" is clearing the flag
                # and giving reloads another chance.
                self._degraded_reason = None
                self.reload_breaker.reset()
                self.registry.inc("repro_serve_rollbacks_total")
                self._publish_gauges()
                return {
                    "status": "cleared",
                    "generation": self._index.generation,
                    "opinions": self._index.n_opinions,
                }
        raise ServeError(
            "no previous generation to roll back to",
            status=409,
            code="rollback_unavailable",
        )

    def ingest(
        self,
        documents: list[Document],
        request_id: str | None = None,
    ) -> dict[str, Any]:
        """Journal a document batch, fold its evidence in, and swap
        the refitted table live (the streaming write path).

        Requires an attached :class:`~repro.ingest.IngestPipeline`
        (``repro serve --ingest-journal``); 409 otherwise. The whole
        cycle — durable append, incremental extract, dirty-set refit,
        artefact publish, validated swap — runs under ``_ingest_lock``
        so concurrent posts serialize; the swap itself still takes
        ``_swap_lock``, interleaving safely with file reloads. The
        published artefacts land at the configured opinions path, so a
        restart reloads the latest generation from disk.
        """
        pipeline = self.ingest_pipeline
        if pipeline is None:
            raise ServeError(
                "no ingest journal attached to this server "
                "(start with --ingest-journal)",
                status=409,
                code="ingest_unavailable",
            )
        if not documents:
            raise ServeError("ingest batch holds no documents")
        started = time.perf_counter()
        started_unix = time.time()
        with self._ingest_lock:
            report = pipeline.ingest(documents)
            out = self.source_path
            swapped = False
            drift: DriftReport | None = None
            index = self._index
            if len(report.table) > 0:
                if out is not None:
                    pipeline.publish(
                        report,
                        out,
                        started_unix=started_unix,
                        duration_seconds=(
                            time.perf_counter() - started
                        ),
                    )
                    # The freshly written sidecar is this report's
                    # lineage; prime the cache so a follow-up file
                    # reload does not re-parse it.
                    signature = self._sidecar_signature(out)
                    if signature is not None:
                        self._sidecar_cache = (
                            signature, report.provenance
                        )
                with self._swap_lock:
                    try:
                        index = self._validate_candidate(
                            table=report.table,
                            source=(
                                out
                                if out is not None
                                else pipeline.journal.directory
                            ),
                        )
                    except ValueError as error:
                        raise ServeError(
                            "ingest produced an unservable table: "
                            f"{error}",
                            status=500,
                            code="ingest_failed",
                        ) from None
                    drift = self._publish(
                        report.table,
                        out,
                        index,
                        report.provenance,
                        trigger="ingest",
                    )
                swapped = True
        freshness = time.perf_counter() - started
        self.registry.observe(
            "repro_ingest_freshness_seconds",
            freshness,
            exemplar=request_id,
        )
        return {
            "status": "ingested" if swapped else "accepted",
            "documents": report.documents,
            "statements": report.statements,
            "journal_offset": report.journal_offset,
            "dirty_combinations": len(report.dirty),
            "refitted": report.refitted,
            "generation": index.generation,
            "opinions": index.n_opinions,
            "freshness_seconds": round(freshness, 6),
            "drift": None if drift is None else drift.summary(),
        }

    def _publish_gauges(self) -> None:
        self.registry.set_gauge(
            "repro_serve_index_generation", self._index.generation
        )
        self.registry.set_gauge(
            "repro_serve_index_opinions", self._index.n_opinions
        )
        self.registry.set_gauge(
            "repro_serve_health_state",
            HEALTH_STATES[self.health_state()],
        )

    # ------------------------------------------------------------------
    # Admission control and drain
    # ------------------------------------------------------------------
    def admit(self, client_id: str | None = None) -> AdmissionDecision:
        """One admission attempt (truthy = admitted); pair every
        success with :meth:`release`."""
        return self.admission.admit(client_id)

    def release(self) -> None:
        self.admission.release()

    def begin_drain(self) -> None:
        """Stop admitting work; ``/healthz`` flips to ``draining``."""
        self.admission.begin_drain()
        self._publish_gauges()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until in-flight requests finish; False on timeout."""
        return self.admission.wait_idle(timeout)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _stamp(self, response: dict[str, Any]) -> dict[str, Any]:
        """Mark a response as degraded-mode when serving from a
        last-good snapshot. Cached entries stay state-free (always
        ``degraded_mode: false``); the healthy path returns the dict
        untouched, the degraded path a shallow copy."""
        if self._degraded_reason is None:
            return response
        stamped = dict(response)
        stamped["degraded_mode"] = True
        return stamped

    def ask(
        self,
        text: str,
        top: int = DEFAULT_TOP,
        index: OpinionIndex | None = None,
        deadline: Deadline | None = None,
    ) -> tuple[dict[str, Any], bool]:
        """Answer a free-text query, via the cache when possible.

        The cache key uses the whitespace-normalised raw text, so a
        hit skips even query parsing.
        """
        top = _check_top(top)
        index = index if index is not None else self._index
        normalized = " ".join(text.lower().split())
        key = (index.generation, "ask", normalized, top)
        cached = self.cache.get(key)
        if cached is not None:
            return self._stamp(cached), True
        if self.faults is not None and self.faults.on_query(
            normalized
        ):
            self.registry.inc("repro_serve_faults_injected_total")
        try:
            query = SubjectiveQuery.parse(text)
        except QueryError as error:
            raise ServeError(f"cannot parse query: {error}") from None
        response = ask_response(
            query,
            index.answer(query, top=top, deadline=deadline),
            index,
        )
        self.cache.put(key, response)
        return self._stamp(response), False

    def listing(
        self,
        property_text: str,
        entity_type: str,
        *,
        negative: bool = False,
        min_probability: float = 0.0,
        top: int = DEFAULT_TOP,
        index: OpinionIndex | None = None,
        deadline: Deadline | None = None,
    ) -> tuple[dict[str, Any], bool]:
        """Single-combination listing (the ``repro query`` semantics)."""
        top = _check_top(top)
        if not 0.0 <= min_probability <= 1.0:
            raise ServeError(
                "min_probability must be in [0, 1], "
                f"got {min_probability}"
            )
        index = index if index is not None else self._index
        try:
            key = PropertyTypeKey(
                property=SubjectiveProperty.parse(property_text),
                entity_type=entity_type,
            )
        except ValueError as error:
            raise ServeError(str(error)) from None
        cache_key = (
            index.generation,
            "listing",
            str(key),
            bool(negative),
            float(min_probability),
            top,
        )
        cached = self.cache.get(cache_key)
        if cached is not None:
            return self._stamp(cached), True
        if deadline is not None:
            deadline.checkpoint("listing")
        polarity = (
            Polarity.NEGATIVE if negative else Polarity.POSITIVE
        )
        opinions = index.entities_with(
            key, polarity, min_probability=min_probability
        )[:top]
        response = listing_response(
            key, negative, min_probability, opinions, index
        )
        self.cache.put(cache_key, response)
        return self._stamp(response), False

    def explain(
        self,
        entity_id: str,
        property_text: str,
        entity_type: str | None = None,
        deadline: Deadline | None = None,
    ) -> tuple[dict[str, Any], bool]:
        """Full lineage for one answer (``GET /explain``).

        Resolves the (entity, property[, type]) target against the
        live table, then joins the posterior with the provenance
        sidecar's counts, sampled sentences, model parameters, and
        convergence verdict. Reads the whole serving snapshot from
        one atomic attribute, so a concurrent swap can never pair the
        new table with the old sidecar.
        """
        index, table, provenance = self._live
        normalized = " ".join(property_text.lower().split())
        cache_key = (
            index.generation,
            "explain",
            entity_id,
            normalized,
            entity_type or "",
        )
        cached = self.cache.get(cache_key)
        if cached is not None:
            return self._stamp(cached), True
        if deadline is not None:
            deadline.checkpoint("explain")
        key, opinion = resolve_opinion(
            table, entity_id, property_text, entity_type
        )
        response = explain_response(
            entity_id,
            key,
            opinion,
            index,
            pair=(
                provenance.for_pair(key, entity_id)
                if provenance is not None
                else None
            ),
            model=(
                provenance.model_for(key)
                if provenance is not None
                else None
            ),
            convergence=(
                provenance.convergence_for(key)
                if provenance is not None
                else None
            ),
            lineage_available=provenance is not None,
        )
        self.cache.put(cache_key, response)
        return self._stamp(response), False

    def batch(
        self,
        queries: list[str],
        top: int = DEFAULT_TOP,
        deadline: Deadline | None = None,
        request_id: str | None = None,
    ) -> dict[str, Any]:
        """Answer many free-text queries against ONE index snapshot.

        With a ``request_id`` every item of the response carries it,
        so chaos-bench audits can attribute each sub-answer to the
        batch's access-log line. Items are stamped on copies — cached
        entries stay shared and id-free.
        """
        if len(queries) > MAX_BATCH_QUERIES:
            raise ServeError(
                f"batch of {len(queries)} exceeds the limit of "
                f"{MAX_BATCH_QUERIES}"
            )
        index = self._index
        results: list[dict[str, Any]] = []
        for text in queries:
            if deadline is not None:
                deadline.checkpoint("batch")
            try:
                response, _ = self.ask(
                    text, top=top, index=index, deadline=deadline
                )
            except ServeError as error:
                response = {"error": str(error), "query": text}
            if request_id is not None:
                response = dict(response)
                response["request_id"] = request_id
            results.append(response)
        return self._stamp(batch_response(results, index.generation))

    def fault_response(self, path: str) -> None:
        """Chaos hook: maybe sever the connection pre-response."""
        if self.faults is None:
            return
        try:
            self.faults.on_response(path)
        except InjectedDisconnect:
            self.registry.inc("repro_serve_faults_injected_total")
            raise

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def observe_request(
        self,
        *,
        method: str,
        path: str,
        status: int,
        seconds: float,
        cached: bool | None = None,
        request_id: str | None = None,
        client: str | None = None,
        code: str | None = None,
        items: int | None = None,
    ) -> None:
        """Account one handled request: metrics (with the request id
        as the histogram exemplar), SLO windows, the rolling latency
        window, the access log, and a head-sampled span. ``items`` is
        the sub-query count for ``POST /batch`` lines."""
        registry = self.registry
        registry.inc("repro_serve_requests_total")
        if status == 503:
            registry.inc("repro_serve_rejected_total")
        elif status >= 500:
            registry.inc("repro_serve_errors_total")
        registry.observe(
            "repro_serve_request_seconds", seconds,
            exemplar=request_id,
        )
        self.slo.record(status, seconds)
        self.latency_window.observe(seconds, request_id)
        if self.access_log is not None:
            self.access_log.write(
                request_id=request_id,
                method=method,
                path=path,
                status=status,
                seconds=seconds,
                cached=cached,
                code=code,
                client=client,
                generation=self._index.generation,
                items=items,
            )
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return
        # Head sampling with a tail rule: every Nth request keeps its
        # span, and slow or failed requests ALWAYS keep theirs.
        sampled = next(self._trace_seen) % self.trace_sample == 0
        if not (
            sampled
            or seconds >= self.trace_slow_seconds
            or status >= 500
        ):
            return
        attrs: dict[str, Any] = {
            "method": method,
            "path": path,
            "http_status": status,
        }
        if cached is not None:
            attrs["cached"] = cached
        if request_id is not None:
            attrs["request_id"] = request_id
        if code is not None:
            attrs["code"] = code
        record = {
            "span_id": 0,
            "parent_id": None,
            "name": "serve.request",
            "kind": "span",
            "start_unix": time.time() - seconds,
            "duration": seconds,
            "attrs": attrs,
            # 503/429 is deliberate shedding, not a failure.
            "status": (
                "error" if status >= 500 and status != 503 else "ok"
            ),
        }
        # Tracer internals are not thread-safe; adoption assigns this
        # span a fresh id under the service's lock.
        with self._trace_lock:
            tracer.adopt([record])

    def publish_slo_gauges(self) -> None:
        """Refresh the burn-rate gauges (called before /metrics
        renders so scrapes always see current windows)."""
        rates = self.slo.burn_rates()
        registry = self.registry
        registry.set_gauge(
            "repro_serve_availability_burn_fast",
            rates["availability"]["fast"],
        )
        registry.set_gauge(
            "repro_serve_availability_burn_slow",
            rates["availability"]["slow"],
        )
        registry.set_gauge(
            "repro_serve_latency_burn_fast",
            rates["latency"]["fast"],
        )
        registry.set_gauge(
            "repro_serve_latency_burn_slow",
            rates["latency"]["slow"],
        )
        registry.set_gauge(
            "repro_serve_slo_state",
            SLO_STATES.index(self.slo.state()),
        )

    def latency_summary(self) -> dict[str, Any]:
        """The /healthz recent-latency block (rolling window)."""
        merged = self.latency_window.merged()
        p50, p95, p99 = merged.quantiles((0.5, 0.95, 0.99))
        return {
            "window_seconds": self.latency_window.window_seconds,
            "count": merged.count,
            "p50": p50,
            "p95": p95,
            "p99": p99,
        }

    def healthz(self) -> dict[str, Any]:
        index = self._index
        return {
            "status": self.health_state(),
            "generation": index.generation,
            "opinions": index.n_opinions,
            "combinations": index.n_keys,
            "entity_types": index.entity_types(),
            "degraded_combinations": sorted(
                str(key) for key in index.degraded_keys
            ),
            "degraded_reason": self._degraded_reason,
            "breaker": self.reload_breaker.state,
            "rollback_available": self._previous is not None,
            "quarantine": list(self._quarantine),
            "max_inflight": self.max_inflight,
            "admission": self.admission.stats(),
            "cache": self.cache.stats(),
            "slo": self.slo.report(),
            "latency": self.latency_summary(),
            "drift": self._last_drift,
            "drift_alarm": self._drift_alarm,
        }


def _check_top(top: Any) -> int:
    try:
        top = int(top)
    except (TypeError, ValueError):
        raise ServeError(f"top must be an integer, got {top!r}")
    if not 1 <= top <= MAX_TOP:
        raise ServeError(
            f"top must be in [1, {MAX_TOP}], got {top}"
        )
    return top


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------

class ReproServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`OpinionService`."""

    daemon_threads = True

    def __init__(
        self, address: tuple[str, int], service: OpinionService
    ) -> None:
        super().__init__(address, ServeHandler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]


class ServeHandler(BaseHTTPRequestHandler):
    """Routes requests into the service; JSON in, JSON out."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/2"
    # Headers and body flush as separate writes; without TCP_NODELAY
    # Nagle + delayed ACK turns every response into a ~40 ms stall.
    disable_nagle_algorithm = True

    #: Paths that bypass admission control: health and telemetry must
    #: stay reachable exactly when the server is saturated, and the
    #: admin endpoints are the operator's way *out* of an incident —
    #: gating a rollback behind the overload it is meant to fix would
    #: be self-defeating.
    UNGATED = ("/healthz", "/metrics", "/admin/reload",
               "/admin/rollback", "/admin/ingest")

    #: Set per request in _handle before any response is written.
    request_id: str = ""
    #: Sub-query count of the current request (POST /batch only);
    #: reset per request, surfaced as the access-log line's "items".
    batch_items: int | None = None

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        pass  # request logging is the metrics/trace layer's job

    @property
    def service(self) -> OpinionService:
        return self.server.service

    def _resolve_request_id(self) -> str:
        """Honour a well-formed client ``X-Request-Id``, else mint
        one. Malformed ids are replaced, not echoed — a header is not
        a place to reflect arbitrary bytes back at a client."""
        supplied = self.headers.get("X-Request-Id", "")
        if supplied and _REQUEST_ID_RE.match(supplied):
            return supplied
        return new_request_id()

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        *,
        cached: bool | None = None,
        retry_after: float | None = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.request_id:
            self.send_header("X-Request-Id", self.request_id)
        if cached is not None:
            self.send_header("X-Cache", "hit" if cached else "miss")
        if retry_after is None and status in (429, 503):
            retry_after = 1.0
        if retry_after is not None:
            self.send_header(
                "Retry-After",
                str(max(1, math.ceil(retry_after))),
            )
        self.end_headers()
        self.wfile.write(body)

    def _send_error(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: float | None = None,
    ) -> None:
        self._send_json(
            status,
            error_response(
                code,
                message,
                retry_after=retry_after,
                degraded=self.service.degraded,
                request_id=self.request_id or None,
            ),
            retry_after=retry_after,
        )

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4"
        )
        self.send_header("Content-Length", str(len(body)))
        if self.request_id:
            self.send_header("X-Request-Id", self.request_id)
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise ServeError(
                f"body of {length} bytes exceeds "
                f"{MAX_BODY_BYTES}", status=413,
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ServeError(f"malformed JSON body: {error}")
        if not isinstance(payload, dict):
            raise ServeError("JSON body must be an object")
        return payload

    # -- request entry points ------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def _client_id(self) -> str:
        """Rate-limit key: explicit header, else the peer address."""
        return (
            self.headers.get("X-Client-Id")
            or self.client_address[0]
        )

    def _handle(self, method: str) -> None:
        started = time.perf_counter()
        path = urlsplit(self.path).path
        status = 500
        cached: bool | None = None
        code: str | None = None
        self.request_id = self._resolve_request_id()
        self.batch_items = None
        client = self._client_id()
        service = self.service
        gated = path not in self.UNGATED
        if gated:
            decision = service.admit(client)
            if not decision:
                status = decision.status
                code = decision.code
                if status == 429:
                    service.registry.inc(
                        "repro_serve_rate_limited_total"
                    )
                self._send_error(
                    decision.status,
                    decision.code,
                    decision.message,
                    retry_after=decision.retry_after,
                )
                service.observe_request(
                    method=method,
                    path=path,
                    status=status,
                    seconds=time.perf_counter() - started,
                    request_id=self.request_id,
                    client=client,
                    code=code,
                )
                return
        deadline = (
            Deadline(service.request_deadline) if gated else None
        )
        try:
            status, cached = self._route(method, path, deadline)
        except DeadlineExceeded as error:
            status = 503
            code = "deadline_exceeded"
            service.registry.inc(
                "repro_serve_deadline_exceeded_total"
            )
            self._send_error(
                status, code, str(error),
                retry_after=1.0,
            )
        except ServeError as error:
            status = error.status
            code = error.code
            self._send_error(
                status, error.code, str(error),
                retry_after=error.retry_after,
            )
        except (BrokenPipeError, ConnectionResetError):
            status = 499  # client went away mid-response
            code = "client_disconnect"
            self.close_connection = True
        except Exception as error:  # pragma: no cover - defensive
            status = 500
            code = "internal"
            try:
                self._send_error(
                    status,
                    code,
                    f"{type(error).__name__}: {error}",
                )
            except OSError:
                pass
        finally:
            if gated:
                service.release()
            service.observe_request(
                method=method,
                path=path,
                status=status,
                seconds=time.perf_counter() - started,
                cached=cached,
                request_id=self.request_id,
                client=client,
                code=code,
                items=self.batch_items,
            )

    # -- routing --------------------------------------------------------
    def _route(
        self, method: str, path: str, deadline: Deadline | None
    ) -> tuple[int, bool | None]:
        if method == "GET" and path == "/query":
            return self._get_query(deadline)
        if method == "GET" and path == "/explain":
            return self._get_explain(deadline)
        if method == "GET" and path == "/healthz":
            self._send_json(200, self.service.healthz())
            return 200, None
        if method == "GET" and path == "/metrics":
            # Burn-rate gauges are derived from rolling windows, so
            # they are recomputed at scrape time, not write time.
            self.service.publish_slo_gauges()
            self._send_text(200, self.service.registry.exposition())
            return 200, None
        if method == "POST" and path == "/batch":
            return self._post_batch(deadline)
        if method == "POST" and path == "/admin/reload":
            return self._post_reload()
        if method == "POST" and path == "/admin/rollback":
            self._send_json(200, self.service.rollback())
            return 200, None
        if method == "POST" and path == "/admin/ingest":
            return self._post_ingest()
        raise ServeError(
            f"no route for {method} {path}", status=404,
            code="not_found",
        )

    def _params(self) -> dict[str, str]:
        query = urlsplit(self.path).query
        return {
            key: values[-1]
            for key, values in parse_qs(query).items()
        }

    def _get_query(
        self, deadline: Deadline | None
    ) -> tuple[int, bool]:
        params = self._params()
        top = params.get("top", DEFAULT_TOP)
        if "q" in params:
            response, cached = self.service.ask(
                params["q"], top=top, deadline=deadline
            )
        elif "property" in params and "type" in params:
            try:
                min_probability = float(
                    params.get("min_probability", 0.0)
                )
            except ValueError:
                raise ServeError(
                    "min_probability must be a number"
                )
            response, cached = self.service.listing(
                params["property"],
                params["type"],
                negative=params.get("negative", "")
                in ("1", "true", "yes"),
                min_probability=min_probability,
                top=top,
                deadline=deadline,
            )
        else:
            raise ServeError(
                "need either ?q=<free text> or "
                "?property=<adj>&type=<entity type>"
            )
        self.service.fault_response("/query")
        self._send_json(200, response, cached=cached)
        return 200, cached

    def _get_explain(
        self, deadline: Deadline | None
    ) -> tuple[int, bool]:
        params = self._params()
        entity = params.get("entity")
        prop = params.get("property")
        if not entity or not prop:
            raise ServeError(
                "need entity=<id> and property=<adjective> "
                "(optional type=<entity type>)"
            )
        response, cached = self.service.explain(
            entity,
            prop,
            entity_type=params.get("type"),
            deadline=deadline,
        )
        self.service.fault_response("/explain")
        self._send_json(200, response, cached=cached)
        return 200, cached

    def _post_batch(
        self, deadline: Deadline | None
    ) -> tuple[int, None]:
        payload = self._read_json_body()
        queries = payload.get("queries")
        if not isinstance(queries, list) or not all(
            isinstance(q, str) for q in queries
        ):
            raise ServeError(
                "body must be {\"queries\": [<string>, ...]}"
            )
        self.batch_items = len(queries)
        response = self.service.batch(
            queries,
            top=payload.get("top", DEFAULT_TOP),
            deadline=deadline,
            request_id=self.request_id or None,
        )
        self.service.fault_response("/batch")
        self._send_json(200, response)
        return 200, None

    def _post_reload(self) -> tuple[int, None]:
        payload = self._read_json_body()
        path = payload.get("path")
        if path is not None and not isinstance(path, str):
            raise ServeError("reload path must be a string")
        try:
            summary = self.service.reload(path)
        except ServeError:
            raise
        except Exception as error:  # pragma: no cover - defensive
            raise ServeError(
                f"reload failed, previous table still live: {error}",
                status=500,
                code="reload_failed",
            ) from None
        self._send_json(200, summary)
        return 200, None

    def _post_ingest(self) -> tuple[int, None]:
        payload = self._read_json_body()
        documents = documents_from_payload(payload)
        self.batch_items = len(documents)
        summary = self.service.ingest(
            documents, request_id=self.request_id or None
        )
        self._send_json(200, summary)
        return 200, None


def documents_from_payload(
    payload: dict[str, Any],
) -> list[Document]:
    """Parse a ``POST /admin/ingest`` body into documents.

    Accepted shape: ``{"documents": [<string> | {"text": ...,
    "doc_id"?, "region"?}, ...]}``. A bare string is a document body
    with no id — the journal assigns ``ingested-<offset>`` ids at
    commit time.
    """
    rows = payload.get("documents")
    if not isinstance(rows, list) or not rows:
        raise ServeError(
            "body must be {\"documents\": [<string> | "
            "{\"text\": ...}, ...]} with at least one document"
        )
    documents: list[Document] = []
    for position, row in enumerate(rows):
        if isinstance(row, str):
            row = {"text": row}
        if not isinstance(row, dict) or not isinstance(
            row.get("text"), str
        ) or not row["text"].strip():
            raise ServeError(
                f"documents[{position}] needs a non-empty "
                "\"text\" string"
            )
        doc_id = row.get("doc_id", "")
        region = row.get("region", "")
        if not isinstance(doc_id, str) or not isinstance(
            region, str
        ):
            raise ServeError(
                f"documents[{position}]: doc_id and region must "
                "be strings"
            )
        documents.append(
            Document(doc_id=doc_id, text=row["text"], region=region)
        )
    return documents


def build_server(
    service: OpinionService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ReproServer:
    """Bind a server (port 0 picks an ephemeral port)."""
    return ReproServer((host, port), service)


def install_signal_handlers(
    service: OpinionService,
    server: ReproServer | None = None,
) -> None:
    """Wire SIGHUP → hot reload, SIGTERM → graceful drain.

    With a ``server``, SIGTERM flips the service to ``draining``
    (new work is rejected with 503, ``/healthz`` reports it) and asks
    the accept loop to stop from a helper thread — calling
    ``server.shutdown()`` inline would deadlock against the
    ``serve_forever`` loop running on this same main thread. The CLI
    then waits for in-flight requests (``--drain-timeout``) before
    exiting 0. Without a server (legacy callers), SIGTERM raises
    ``SystemExit(0)`` as before.

    Call from the main thread of ``repro serve`` only; tests drive
    ``server.shutdown()`` directly instead.
    """
    if hasattr(signal, "SIGHUP"):
        def _reload(signum: int, frame: Any) -> None:
            try:
                summary = service.reload()
                print(
                    f"repro serve: reloaded {summary['source']} "
                    f"(generation {summary['generation']}, "
                    f"{summary['opinions']} opinions)",
                    file=sys.stderr,
                    flush=True,
                )
            except Exception as error:
                print(
                    "repro serve: reload failed, previous table "
                    f"still live: {error}",
                    file=sys.stderr,
                    flush=True,
                )

        signal.signal(signal.SIGHUP, _reload)

    def _terminate(signum: int, frame: Any) -> None:
        if server is None:
            raise SystemExit(0)
        service.begin_drain()
        print(
            "repro serve: draining (finishing in-flight requests)",
            file=sys.stderr,
            flush=True,
        )
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _terminate)
