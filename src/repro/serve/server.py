"""Concurrent HTTP query server over a mined opinion table.

The paper's motivating workload — search queries like ``safe cities``
answered from structured data — is a *serving* workload: mine once,
answer millions of low-latency lookups. This module is that serving
layer, stdlib-only:

* :class:`OpinionService` — the engine: an immutable
  :class:`~repro.serve.index.OpinionIndex` snapshot, a generation-
  scoped :class:`~repro.serve.cache.QueryCache`, bounded in-flight
  admission control, and atomic hot-reload (build the new index off to
  the side, swap one reference, purge stale cache entries — readers
  always see a wholly consistent table).
* :class:`ReproServer` — a ``ThreadingHTTPServer`` exposing
  ``GET /query`` (free-text or property+type), ``POST /batch``,
  ``GET /healthz``, ``GET /metrics`` (Prometheus exposition from the
  shared :class:`~repro.obs.metrics.MetricsRegistry`), and
  ``POST /admin/reload``.
* :func:`install_signal_handlers` — SIGHUP triggers a reload of the
  source artefact, SIGTERM a clean exit (used by ``repro serve``).

Every handled request is counted, latency-observed, and (when a tracer
is attached) recorded as a ``serve.request`` span adopted into the
server's trace under a lock — the per-process tracer is not itself
thread-safe.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlsplit

from ..core.query import QueryError, SubjectiveQuery
from ..core.result import OpinionTable
from ..core.types import Polarity, PropertyTypeKey, SubjectiveProperty
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..storage import load
from .cache import DEFAULT_MAX_ENTRIES, QueryCache
from .index import OpinionIndex
from .schema import ask_response, listing_response

DEFAULT_MAX_INFLIGHT = 32
DEFAULT_TOP = 10
#: Upper bounds keeping one request's work predictable.
MAX_TOP = 1000
MAX_BATCH_QUERIES = 256
MAX_BODY_BYTES = 1 << 20


class ServeError(ValueError):
    """A client-side request problem (becomes a 4xx response)."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class OpinionService:
    """The query engine behind the HTTP API (usable standalone).

    ``ask``/``listing`` return ``(response_dict, cached)``. Queries run
    against a single index snapshot taken at entry, so a concurrent
    :meth:`swap` can never hand a request half of each table.
    """

    def __init__(
        self,
        table: OpinionTable,
        *,
        source_path: str | Path | None = None,
        cache_size: int = DEFAULT_MAX_ENTRIES,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be at least 1, got {max_inflight}"
            )
        self.source_path = (
            Path(source_path) if source_path is not None else None
        )
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self.tracer = tracer
        self.max_inflight = int(max_inflight)
        self.cache = QueryCache(cache_size, self.registry)
        self._inflight = threading.Semaphore(self.max_inflight)
        self._swap_lock = threading.Lock()
        self._trace_lock = threading.Lock()
        self._index = OpinionIndex(table, generation=1)
        self._publish_gauges()

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------
    @property
    def index(self) -> OpinionIndex:
        """The live snapshot (one atomic attribute read)."""
        return self._index

    def swap(self, table: OpinionTable) -> OpinionIndex:
        """Atomically replace the live table.

        The replacement index is built *before* publication and
        installed with a single reference assignment; requests either
        see the old generation or the new one, never a mixture. Stale
        cache entries are purged eagerly so memory is not held by
        answers no one can receive anymore.
        """
        with self._swap_lock:
            index = OpinionIndex(
                table, generation=self._index.generation + 1
            )
            self._index = index
            self.cache.purge_generations(index.generation)
            self.registry.inc("repro_serve_reloads_total")
            self._publish_gauges()
            return index

    def reload(self, path: str | Path | None = None) -> dict[str, Any]:
        """Re-load the opinions artefact and swap it in.

        Any failure (missing file, wrong artefact kind) leaves the
        current index serving; the error propagates to the caller.
        """
        source = Path(path) if path is not None else self.source_path
        if source is None:
            raise ServeError(
                "no opinions path configured to reload from"
            )
        table = load(source)
        if not isinstance(table, OpinionTable):
            raise ServeError(
                f"{source} is not an opinions artefact", status=400
            )
        index = self.swap(table)
        return {
            "status": "reloaded",
            "source": str(source),
            "generation": index.generation,
            "opinions": index.n_opinions,
        }

    def _publish_gauges(self) -> None:
        self.registry.set_gauge(
            "repro_serve_index_generation", self._index.generation
        )
        self.registry.set_gauge(
            "repro_serve_index_opinions", self._index.n_opinions
        )

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def admit(self) -> bool:
        """Take an in-flight slot; False means shed the request."""
        return self._inflight.acquire(blocking=False)

    def release(self) -> None:
        self._inflight.release()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def ask(
        self,
        text: str,
        top: int = DEFAULT_TOP,
        index: OpinionIndex | None = None,
    ) -> tuple[dict[str, Any], bool]:
        """Answer a free-text query, via the cache when possible.

        The cache key uses the whitespace-normalised raw text, so a
        hit skips even query parsing.
        """
        top = _check_top(top)
        index = index if index is not None else self._index
        normalized = " ".join(text.lower().split())
        key = (index.generation, "ask", normalized, top)
        cached = self.cache.get(key)
        if cached is not None:
            return cached, True
        try:
            query = SubjectiveQuery.parse(text)
        except QueryError as error:
            raise ServeError(f"cannot parse query: {error}") from None
        response = ask_response(
            query, index.answer(query, top=top), index
        )
        self.cache.put(key, response)
        return response, False

    def listing(
        self,
        property_text: str,
        entity_type: str,
        *,
        negative: bool = False,
        min_probability: float = 0.0,
        top: int = DEFAULT_TOP,
        index: OpinionIndex | None = None,
    ) -> tuple[dict[str, Any], bool]:
        """Single-combination listing (the ``repro query`` semantics)."""
        top = _check_top(top)
        if not 0.0 <= min_probability <= 1.0:
            raise ServeError(
                "min_probability must be in [0, 1], "
                f"got {min_probability}"
            )
        index = index if index is not None else self._index
        try:
            key = PropertyTypeKey(
                property=SubjectiveProperty.parse(property_text),
                entity_type=entity_type,
            )
        except ValueError as error:
            raise ServeError(str(error)) from None
        cache_key = (
            index.generation,
            "listing",
            str(key),
            bool(negative),
            float(min_probability),
            top,
        )
        cached = self.cache.get(cache_key)
        if cached is not None:
            return cached, True
        polarity = (
            Polarity.NEGATIVE if negative else Polarity.POSITIVE
        )
        opinions = index.entities_with(
            key, polarity, min_probability=min_probability
        )[:top]
        response = listing_response(
            key, negative, min_probability, opinions, index
        )
        self.cache.put(cache_key, response)
        return response, False

    def batch(
        self, queries: list[str], top: int = DEFAULT_TOP
    ) -> dict[str, Any]:
        """Answer many free-text queries against ONE index snapshot."""
        if len(queries) > MAX_BATCH_QUERIES:
            raise ServeError(
                f"batch of {len(queries)} exceeds the limit of "
                f"{MAX_BATCH_QUERIES}"
            )
        index = self._index
        results: list[dict[str, Any]] = []
        for text in queries:
            try:
                response, _ = self.ask(text, top=top, index=index)
            except ServeError as error:
                response = {"error": str(error), "query": text}
            results.append(response)
        return {
            "format": "serve_batch",
            "version": 1,
            "generation": index.generation,
            "results": results,
        }

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def observe_request(
        self,
        *,
        method: str,
        path: str,
        status: int,
        seconds: float,
        cached: bool | None = None,
    ) -> None:
        """Account one handled request (metrics + optional span)."""
        registry = self.registry
        registry.inc("repro_serve_requests_total")
        if status == 503:
            registry.inc("repro_serve_rejected_total")
        elif status >= 500:
            registry.inc("repro_serve_errors_total")
        registry.observe("repro_serve_request_seconds", seconds)
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return
        attrs: dict[str, Any] = {
            "method": method,
            "path": path,
            "http_status": status,
        }
        if cached is not None:
            attrs["cached"] = cached
        record = {
            "span_id": 0,
            "parent_id": None,
            "name": "serve.request",
            "kind": "span",
            "start_unix": time.time() - seconds,
            "duration": seconds,
            "attrs": attrs,
            # 503 is deliberate shedding, not a failure.
            "status": (
                "error" if status >= 500 and status != 503 else "ok"
            ),
        }
        # Tracer internals are not thread-safe; adoption assigns this
        # span a fresh id under the service's lock.
        with self._trace_lock:
            tracer.adopt([record])

    def healthz(self) -> dict[str, Any]:
        index = self._index
        return {
            "status": "ok",
            "generation": index.generation,
            "opinions": index.n_opinions,
            "combinations": index.n_keys,
            "entity_types": index.entity_types(),
            "degraded_combinations": sorted(
                str(key) for key in index.degraded_keys
            ),
            "max_inflight": self.max_inflight,
            "cache": self.cache.stats(),
        }


def _check_top(top: Any) -> int:
    try:
        top = int(top)
    except (TypeError, ValueError):
        raise ServeError(f"top must be an integer, got {top!r}")
    if not 1 <= top <= MAX_TOP:
        raise ServeError(
            f"top must be in [1, {MAX_TOP}], got {top}"
        )
    return top


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------

class ReproServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`OpinionService`."""

    daemon_threads = True

    def __init__(
        self, address: tuple[str, int], service: OpinionService
    ) -> None:
        super().__init__(address, ServeHandler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]


class ServeHandler(BaseHTTPRequestHandler):
    """Routes requests into the service; JSON in, JSON out."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"
    # Headers and body flush as separate writes; without TCP_NODELAY
    # Nagle + delayed ACK turns every response into a ~40 ms stall.
    disable_nagle_algorithm = True

    #: Paths that bypass admission control: health and telemetry must
    #: stay reachable exactly when the server is saturated.
    UNGATED = ("/healthz", "/metrics")

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        pass  # request logging is the metrics/trace layer's job

    @property
    def service(self) -> OpinionService:
        return self.server.service

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        *,
        cached: bool | None = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if cached is not None:
            self.send_header("X-Cache", "hit" if cached else "miss")
        if status == 503:
            self.send_header("Retry-After", "1")
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise ServeError(
                f"body of {length} bytes exceeds "
                f"{MAX_BODY_BYTES}", status=413,
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ServeError(f"malformed JSON body: {error}")
        if not isinstance(payload, dict):
            raise ServeError("JSON body must be an object")
        return payload

    # -- request entry points ------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def _handle(self, method: str) -> None:
        started = time.perf_counter()
        path = urlsplit(self.path).path
        status = 500
        cached: bool | None = None
        gated = path not in self.UNGATED
        if gated and not self.service.admit():
            status = 503
            self._send_json(
                status,
                {
                    "error": "server is at its in-flight request "
                    "limit; retry shortly"
                },
            )
            self.service.observe_request(
                method=method,
                path=path,
                status=status,
                seconds=time.perf_counter() - started,
            )
            return
        try:
            status, cached = self._route(method, path)
        except ServeError as error:
            status = error.status
            self._send_json(status, {"error": str(error)})
        except BrokenPipeError:
            status = 499  # client went away mid-response
        except Exception as error:  # pragma: no cover - defensive
            status = 500
            try:
                self._send_json(
                    status,
                    {"error": f"{type(error).__name__}: {error}"},
                )
            except OSError:
                pass
        finally:
            if gated:
                self.service.release()
            self.service.observe_request(
                method=method,
                path=path,
                status=status,
                seconds=time.perf_counter() - started,
                cached=cached,
            )

    # -- routing --------------------------------------------------------
    def _route(
        self, method: str, path: str
    ) -> tuple[int, bool | None]:
        if method == "GET" and path == "/query":
            return self._get_query()
        if method == "GET" and path == "/healthz":
            self._send_json(200, self.service.healthz())
            return 200, None
        if method == "GET" and path == "/metrics":
            self._send_text(200, self.service.registry.exposition())
            return 200, None
        if method == "POST" and path == "/batch":
            return self._post_batch()
        if method == "POST" and path == "/admin/reload":
            return self._post_reload()
        raise ServeError(
            f"no route for {method} {path}", status=404
        )

    def _params(self) -> dict[str, str]:
        query = urlsplit(self.path).query
        return {
            key: values[-1]
            for key, values in parse_qs(query).items()
        }

    def _get_query(self) -> tuple[int, bool]:
        params = self._params()
        top = params.get("top", DEFAULT_TOP)
        if "q" in params:
            response, cached = self.service.ask(
                params["q"], top=top
            )
        elif "property" in params and "type" in params:
            try:
                min_probability = float(
                    params.get("min_probability", 0.0)
                )
            except ValueError:
                raise ServeError(
                    "min_probability must be a number"
                )
            response, cached = self.service.listing(
                params["property"],
                params["type"],
                negative=params.get("negative", "")
                in ("1", "true", "yes"),
                min_probability=min_probability,
                top=top,
            )
        else:
            raise ServeError(
                "need either ?q=<free text> or "
                "?property=<adj>&type=<entity type>"
            )
        self._send_json(200, response, cached=cached)
        return 200, cached

    def _post_batch(self) -> tuple[int, None]:
        payload = self._read_json_body()
        queries = payload.get("queries")
        if not isinstance(queries, list) or not all(
            isinstance(q, str) for q in queries
        ):
            raise ServeError(
                "body must be {\"queries\": [<string>, ...]}"
            )
        response = self.service.batch(
            queries, top=payload.get("top", DEFAULT_TOP)
        )
        self._send_json(200, response)
        return 200, None

    def _post_reload(self) -> tuple[int, None]:
        payload = self._read_json_body()
        path = payload.get("path")
        if path is not None and not isinstance(path, str):
            raise ServeError("reload path must be a string")
        try:
            summary = self.service.reload(path)
        except ServeError:
            raise
        except Exception as error:
            # Corrupt/missing artefact: keep serving the old table.
            raise ServeError(
                f"reload failed, previous table still live: {error}",
                status=500,
            ) from None
        self._send_json(200, summary)
        return 200, None


def build_server(
    service: OpinionService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ReproServer:
    """Bind a server (port 0 picks an ephemeral port)."""
    return ReproServer((host, port), service)


def install_signal_handlers(service: OpinionService) -> None:
    """Wire SIGHUP → hot reload, SIGTERM → clean exit.

    Call from the main thread of ``repro serve`` only; tests drive
    ``server.shutdown()`` directly instead.
    """
    if hasattr(signal, "SIGHUP"):
        def _reload(signum: int, frame: Any) -> None:
            try:
                summary = service.reload()
                print(
                    f"repro serve: reloaded {summary['source']} "
                    f"(generation {summary['generation']}, "
                    f"{summary['opinions']} opinions)",
                    file=sys.stderr,
                    flush=True,
                )
            except Exception as error:
                print(
                    "repro serve: reload failed, previous table "
                    f"still live: {error}",
                    file=sys.stderr,
                    flush=True,
                )

        signal.signal(signal.SIGHUP, _reload)

    def _terminate(signum: int, frame: Any) -> None:
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
