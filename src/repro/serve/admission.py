"""Admission control for the query server: budgets before work.

The serving workload is "answer millions of low-latency lookups" — the
failure mode that matters is *overload*, and the defence is refusing
work early and explicitly instead of queueing without bound. This
module holds the primitives the HTTP layer composes (see
docs/robustness.md, "Serving resilience"):

* :class:`Deadline` — a per-request wall-clock budget checked at
  query-evaluation checkpoints; an expired budget raises
  :class:`DeadlineExceeded`, which the server maps to 503 with a
  ``deadline_exceeded`` error body. A request that cannot finish in
  time is shed mid-flight rather than allowed to pile up behind the
  next one.
* :class:`TokenBucket` — the classic refill-over-time limiter, one per
  client, so a single chatty client exhausts *its* budget (429) before
  it can exhaust the server's (503).
* :class:`AdmissionController` — per-client buckets (LRU-bounded, so an
  adversarial client-id stream cannot grow memory), a bounded wait
  queue in front of the in-flight slots, and the ``draining`` latch
  used by graceful shutdown. Every rejection is a typed
  :class:`AdmissionDecision` carrying the HTTP status, error code, and
  ``Retry-After`` hint the response should surface.
* :class:`AsyncAdmissionController` — the same decisions, re-expressed
  for an event loop: plain counters and a deque of waiter futures
  instead of a semaphore and condition variables, so the asyncio
  server's hot path takes **no locks at all**. It shares
  :class:`TokenBucket`, the LRU bucket map, and every rejection
  message with the threaded controller, so ``/healthz`` admission
  stats and error envelopes are byte-identical across both cores.
* :class:`CircuitBreaker` — consecutive-failure breaker for the
  storage/reload path: once reloads keep failing, further attempts
  fail fast for a cooldown instead of hammering a broken artefact
  store, and the server keeps answering from its last good snapshot.

Everything takes an injectable monotonic ``clock`` so tests are
deterministic; nothing here imports the HTTP layer.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass

from ..core.errors import ReproError

#: Default per-request wall-clock budget (seconds).
DEFAULT_REQUEST_DEADLINE = 0.25
#: Requests allowed to wait for an in-flight slot before shedding.
DEFAULT_QUEUE_DEPTH = 16
#: How long one queued request may wait for a slot (seconds).
DEFAULT_QUEUE_TIMEOUT = 0.05
#: Default per-client burst allowance (tokens).
DEFAULT_CLIENT_BURST = 20.0
#: Distinct client buckets kept before the LRU evicts the coldest.
DEFAULT_MAX_CLIENTS = 1024


class DeadlineExceeded(ReproError):
    """A request ran past its wall-clock budget (becomes a 503)."""


class Deadline:
    """One request's wall-clock budget.

    Created at admission, threaded through query evaluation, and
    checked at *checkpoints* — the evaluation loop is cooperative, so
    enforcement happens at the points where abandoning the request is
    safe and cheap.
    """

    __slots__ = ("budget", "_expires", "_clock")

    def __init__(
        self, budget_seconds: float, clock=time.monotonic
    ) -> None:
        if budget_seconds <= 0:
            raise ValueError(
                f"deadline budget must be positive, got {budget_seconds}"
            )
        self.budget = float(budget_seconds)
        self._clock = clock
        self._expires = clock() + self.budget

    def remaining(self) -> float:
        """Seconds left; negative once the budget is spent."""
        return self._expires - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def checkpoint(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            suffix = f" (at {where})" if where else ""
            raise DeadlineExceeded(
                f"request deadline of {self.budget * 1000:.0f} ms "
                f"exceeded{suffix}"
            )


class TokenBucket:
    """Refill-over-time rate limiter (not internally locked; the
    :class:`AdmissionController` serialises access)."""

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_clock")

    def __init__(
        self, rate: float, burst: float, clock=time.monotonic
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be at least 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = self.burst
        self._clock = clock
        self._stamp = clock()

    def _refill(self, now: float) -> None:
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def try_take(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; False means over the limit."""
        self._refill(self._clock())
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available again."""
        self._refill(self._clock())
        deficit = tokens - self._tokens
        return max(0.0, deficit / self.rate)


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """The outcome of one admission attempt.

    Truthy iff the request was admitted; a rejection carries the HTTP
    status (429 per-client, 503 global/draining), the stable error
    code for the response envelope, and a ``Retry-After`` hint.
    """

    admitted: bool
    status: int = 200
    code: str = "admitted"
    message: str = ""
    retry_after: float | None = None

    def __bool__(self) -> bool:
        return self.admitted


ADMITTED = AdmissionDecision(admitted=True)


def _draining_decision() -> AdmissionDecision:
    return AdmissionDecision(
        admitted=False,
        status=503,
        code="draining",
        message="server is draining; connection will not be "
        "served",
    )


def _overloaded_decision() -> AdmissionDecision:
    return AdmissionDecision(
        admitted=False,
        status=503,
        code="overloaded",
        message="server is at its in-flight request "
        "limit; retry shortly",
        retry_after=1.0,
    )


def _rate_limited_decision(
    client_id: str, retry_after: float
) -> AdmissionDecision:
    return AdmissionDecision(
        admitted=False,
        status=429,
        code="rate_limited",
        message=f"client {client_id!r} is over its rate "
        "limit; slow down",
        retry_after=retry_after,
    )


class ClientBuckets:
    """LRU-bounded per-client :class:`TokenBucket` map.

    Not internally locked: the threaded controller calls it under its
    mutex, the async controller from the single event-loop thread.
    Shared so both cores evict, refill, and hint ``Retry-After``
    identically (and so one test suite covers both).
    """

    __slots__ = ("rate", "burst", "max_clients", "_clock", "_buckets")

    def __init__(
        self,
        rate: float,
        burst: float,
        max_clients: int,
        clock=time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = int(max_clients)
        self._clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    def __len__(self) -> int:
        return len(self._buckets)

    def check(self, client_id: str) -> float | None:
        """None = allowed; else the client's Retry-After in seconds.

        Touching a client refreshes it in the LRU; past
        ``max_clients`` the coldest bucket is evicted, so an
        adversarial client-id stream cannot grow memory (an evicted
        idle client simply starts over with a full burst).
        """
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, self._clock)
            self._buckets[client_id] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client_id)
        if bucket.try_take():
            return None
        return bucket.retry_after()


class CircuitBreaker:
    """Consecutive-failure breaker with a cooldown and half-open probe.

    ``closed`` lets everything through; ``failure_threshold``
    consecutive failures trip it ``open``, where :meth:`allow` fails
    fast until ``cooldown_seconds`` elapse; the first call after the
    cooldown is the ``half_open`` probe — its success closes the
    breaker, its failure re-opens it for another cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                "failure_threshold must be at least 1, "
                f"got {failure_threshold}"
            )
        if cooldown_seconds <= 0:
            raise ValueError(
                f"cooldown must be positive, got {cooldown_seconds}"
            )
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether the protected operation may run right now."""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if (
                    self._clock() - self._opened_at
                    >= self.cooldown_seconds
                ):
                    self._state = "half_open"
                    return True
                return False
            return True  # half_open: the probe is in flight

    def retry_after(self) -> float:
        """Seconds until the next half-open probe is allowed."""
        with self._lock:
            if self._state != "open":
                return 0.0
            return max(
                0.0,
                self.cooldown_seconds
                - (self._clock() - self._opened_at),
            )

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if (
                self._state == "half_open"
                or self._failures >= self.failure_threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()

    def reset(self) -> None:
        """Operator override (rollback closes the breaker)."""
        self.record_success()


class AdmissionController:
    """Per-client token buckets + bounded global admission queue.

    Replaces the bare in-flight semaphore of PR 4: over-limit clients
    are rejected with 429 before they can starve everyone else, a
    short bounded queue absorbs micro-bursts, anything beyond it is
    shed with 503, and :meth:`begin_drain` flips the controller into
    the draining state used by graceful shutdown (new work rejected,
    :meth:`wait_idle` waits for in-flight work to finish).
    """

    def __init__(
        self,
        max_inflight: int = 32,
        *,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        queue_timeout: float = DEFAULT_QUEUE_TIMEOUT,
        client_rate: float = 0.0,
        client_burst: float = DEFAULT_CLIENT_BURST,
        max_clients: int = DEFAULT_MAX_CLIENTS,
        clock=time.monotonic,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be at least 1, got {max_inflight}"
            )
        if queue_depth < 0:
            raise ValueError(
                f"queue_depth must be non-negative, got {queue_depth}"
            )
        if queue_timeout < 0:
            raise ValueError(
                f"queue_timeout must be non-negative, got {queue_timeout}"
            )
        if client_rate < 0:
            raise ValueError(
                f"client_rate must be non-negative, got {client_rate}"
            )
        if max_clients < 1:
            raise ValueError(
                f"max_clients must be at least 1, got {max_clients}"
            )
        self.max_inflight = int(max_inflight)
        self.queue_depth = int(queue_depth)
        self.queue_timeout = float(queue_timeout)
        self.client_rate = float(client_rate)
        self.client_burst = float(client_burst)
        self.max_clients = int(max_clients)
        self._clock = clock
        self._slots = threading.Semaphore(self.max_inflight)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._buckets = ClientBuckets(
            client_rate or 1.0, client_burst, max_clients, clock
        )
        self._inflight = 0
        self._waiting = 0
        self._draining = False
        self.admitted_total = 0
        self.rate_limited_total = 0
        self.shed_total = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _client_allowed(self, client_id: str) -> float | None:
        """None = allowed; else the client's Retry-After in seconds."""
        with self._lock:
            return self._buckets.check(client_id)

    def admit(self, client_id: str | None = None) -> AdmissionDecision:
        """One admission attempt; pair every success with :meth:`release`."""
        if self._draining:
            return _draining_decision()
        if self.client_rate > 0 and client_id:
            retry_after = self._client_allowed(client_id)
            if retry_after is not None:
                self.rate_limited_total += 1
                return _rate_limited_decision(client_id, retry_after)
        acquired = self._slots.acquire(blocking=False)
        if not acquired:
            with self._lock:
                if self._waiting >= self.queue_depth:
                    queue_full = True
                else:
                    queue_full = False
                    self._waiting += 1
            if queue_full:
                self.shed_total += 1
                return _overloaded_decision()
            try:
                acquired = self._slots.acquire(
                    timeout=self.queue_timeout
                )
            finally:
                with self._lock:
                    self._waiting -= 1
            if not acquired:
                self.shed_total += 1
                return _overloaded_decision()
        if self._draining:
            # Lost the race with begin_drain(): give the slot back.
            self._slots.release()
            return _draining_decision()
        with self._lock:
            self._inflight += 1
            self.admitted_total += 1
        return ADMITTED

    def release(self) -> None:
        self._slots.release()
        with self._idle:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.notify_all()

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no request is in flight; False on timeout."""
        with self._idle:
            return self._idle.wait_for(
                lambda: self._inflight <= 0, timeout=timeout
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, float | int | bool]:
        """Snapshot for ``/healthz``."""
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "inflight": self._inflight,
                "waiting": self._waiting,
                "queue_depth": self.queue_depth,
                "client_rate": self.client_rate,
                "client_burst": self.client_burst,
                "clients_tracked": len(self._buckets),
                "admitted": self.admitted_total,
                "rate_limited": self.rate_limited_total,
                "shed": self.shed_total,
                "draining": self._draining,
            }


class AsyncAdmissionController:
    """Event-loop-native admission: same decisions, zero locks.

    The threaded :class:`AdmissionController` pays a semaphore and a
    mutex per request; on an event loop every touch happens on the one
    loop thread, so this variant uses plain integer slot accounting
    and a deque of waiter futures instead. ``release`` hands a freed
    slot directly to the oldest live waiter (FIFO, no wakeup storm).

    The decision surface is identical to the sync controller: the same
    :class:`AdmissionDecision` messages, the same :class:`TokenBucket`
    refill maths through the shared :class:`ClientBuckets` LRU, and a
    :meth:`stats` snapshot with the same keys, so ``/healthz`` and
    error envelopes do not change between serving cores.

    Protocol: call :meth:`poll` first. A decision settles the request
    immediately; ``None`` means "the queue has room — ``await``
    :meth:`wait_for_slot`" (which resolves to a decision within
    ``queue_timeout``). Pair every admitted decision with
    :meth:`release`. :meth:`admit` is the sync-compatible facade used
    by shared tests and :class:`~repro.serve.server.OpinionService`
    delegation; unable to block, it sheds where the threaded
    controller would have queued.
    """

    def __init__(
        self,
        max_inflight: int = 32,
        *,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        queue_timeout: float = DEFAULT_QUEUE_TIMEOUT,
        client_rate: float = 0.0,
        client_burst: float = DEFAULT_CLIENT_BURST,
        max_clients: int = DEFAULT_MAX_CLIENTS,
        clock=time.monotonic,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be at least 1, got {max_inflight}"
            )
        if queue_depth < 0:
            raise ValueError(
                f"queue_depth must be non-negative, got {queue_depth}"
            )
        if queue_timeout < 0:
            raise ValueError(
                f"queue_timeout must be non-negative, got {queue_timeout}"
            )
        if client_rate < 0:
            raise ValueError(
                f"client_rate must be non-negative, got {client_rate}"
            )
        if max_clients < 1:
            raise ValueError(
                f"max_clients must be at least 1, got {max_clients}"
            )
        self.max_inflight = int(max_inflight)
        self.queue_depth = int(queue_depth)
        self.queue_timeout = float(queue_timeout)
        self.client_rate = float(client_rate)
        self.client_burst = float(client_burst)
        self.max_clients = int(max_clients)
        self._clock = clock
        self._buckets = ClientBuckets(
            client_rate or 1.0, client_burst, max_clients, clock
        )
        self._available = self.max_inflight
        self._waiters: deque[asyncio.Future] = deque()
        self._inflight = 0
        self._draining = False
        self._idle_event: asyncio.Event | None = None
        self.admitted_total = 0
        self.rate_limited_total = 0
        self.shed_total = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def poll(self, client_id: str | None = None) -> AdmissionDecision | None:
        """One lock-free admission attempt.

        Returns a decision (truthy = admitted, pair with
        :meth:`release`), or ``None`` when the request should wait for
        a slot via :meth:`wait_for_slot`.
        """
        if self._draining:
            return _draining_decision()
        if self.client_rate > 0 and client_id:
            retry_after = self._buckets.check(client_id)
            if retry_after is not None:
                self.rate_limited_total += 1
                return _rate_limited_decision(client_id, retry_after)
        if self._available > 0:
            self._available -= 1
            self._inflight += 1
            self.admitted_total += 1
            return ADMITTED
        if (
            self.queue_timeout <= 0
            or len(self._waiters) >= self.queue_depth
        ):
            self.shed_total += 1
            return _overloaded_decision()
        return None

    async def wait_for_slot(self) -> AdmissionDecision:
        """Wait (bounded by ``queue_timeout``) for a freed slot.

        Resolves to ``ADMITTED`` when :meth:`release` hands this
        waiter a slot in time, else the same ``overloaded`` 503 the
        threaded controller sheds with.
        """
        fut = asyncio.get_running_loop().create_future()
        self._waiters.append(fut)
        try:
            await asyncio.wait_for(fut, self.queue_timeout)
        except asyncio.TimeoutError:
            self._discard(fut)
            self.shed_total += 1
            return _overloaded_decision()
        except asyncio.CancelledError:
            self._discard(fut)
            raise
        if self._draining:
            # Lost the race with begin_drain(): give the slot back.
            self._return_slot()
            return _draining_decision()
        self._inflight += 1
        self.admitted_total += 1
        return ADMITTED

    def _discard(self, fut: asyncio.Future) -> None:
        try:
            self._waiters.remove(fut)
        except ValueError:
            # Already granted by release(); the abandoned grant's slot
            # goes back into circulation.
            if fut.done() and not fut.cancelled():
                self._return_slot()

    def _return_slot(self) -> None:
        while self._waiters:
            fut = self._waiters.popleft()
            if not fut.done():
                fut.set_result(True)
                return
        self._available += 1

    def admit(self, client_id: str | None = None) -> AdmissionDecision:
        """Sync-compatible attempt (never waits; sheds instead)."""
        decision = self.poll(client_id)
        if decision is None:
            self.shed_total += 1
            return _overloaded_decision()
        return decision

    def release(self) -> None:
        self._inflight -= 1
        self._return_slot()
        if self._inflight <= 0 and self._idle_event is not None:
            self._idle_event.set()

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        self._draining = True
        if self._inflight <= 0 and self._idle_event is not None:
            self._idle_event.set()

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        return self._inflight

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Sync facade: in-flight work can only finish while the loop
        runs, so this cannot block — it reports the current state.
        The async drain path awaits :meth:`wait_idle_async`."""
        return self._inflight <= 0

    async def wait_idle_async(
        self, timeout: float | None = None
    ) -> bool:
        """Wait until no request is in flight; False on timeout."""
        if self._inflight <= 0:
            return True
        if self._idle_event is None:
            self._idle_event = asyncio.Event()
        try:
            await asyncio.wait_for(
                self._idle_event.wait(), timeout
            )
        except asyncio.TimeoutError:
            return False
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, float | int | bool]:
        """Snapshot for ``/healthz`` (same keys as the threaded
        controller)."""
        return {
            "max_inflight": self.max_inflight,
            "inflight": self._inflight,
            "waiting": len(self._waiters),
            "queue_depth": self.queue_depth,
            "client_rate": self.client_rate,
            "client_burst": self.client_burst,
            "clients_tracked": len(self._buckets),
            "admitted": self.admitted_total,
            "rate_limited": self.rate_limited_total,
            "shed": self.shed_total,
            "draining": self._draining,
        }
