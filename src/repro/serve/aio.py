"""Asyncio serving core: the event-loop front end of ``repro serve``.

The threaded :class:`~repro.serve.server.ReproServer` spends most of
each request on thread handoff, socket teardown, and lock traffic —
``bench_serving`` measured ~1.16k req/s against an index that answers
~9k q/s. This module replaces thread-per-connection with one
:class:`asyncio.Protocol` per *connection*, keep-alive reuse, and an
inline fast path that answers a cached query without ever creating a
task, so the hot path is: parse bytes → lock-free admission
(:class:`~repro.serve.admission.AsyncAdmissionController`) → service
lookup → one ``transport.write``.

Contracts are inherited, not reimplemented: requests are routed into
the same :class:`~repro.serve.server.OpinionService` engine the
threaded server uses, so the v2 JSON schema, snapshot-swap
reload/rollback with validation, degraded-mode stamping, per-request
deadlines, chaos fault hooks, access-log lines, exemplar histograms,
and SLO burn gauges are byte-identical across both cores. The only
new moving parts are:

* **Serialized-body cache** — ``json.dumps`` dominates a cached hit
  (~30µs vs ~2µs for the lookup), so rendered response *bytes* are
  LRU-cached keyed by the identity of the service's cached response
  dict. The service cache already owns correctness (generation
  purges, degraded stamping happens on copies), so byte reuse is safe
  exactly when the service returned its shared cached object.
* **Awaiting without blocking** — requests that must wait (a full
  admission queue) or that run blocking work (``/admin/reload``,
  ``/admin/ingest`` file IO) move to a task with ``pause_reading`` on
  the transport; everything else completes inline.
* **Multi-worker hooks** — with a :class:`~repro.serve.workers.WorkerRuntime`
  attached, ``/metrics`` merges every worker's pickled registry
  snapshot, and successful reload/ingest swaps bump the shared epoch
  and nudge the supervisor to SIGHUP the sibling workers (see
  :mod:`repro.serve.workers`).

``repro serve`` runs this core by default; ``--legacy-threaded``
keeps the old server until the migration completes.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import socket
import sys
import time
from collections import OrderedDict
from typing import Any, Callable
from urllib.parse import parse_qs

from .admission import (
    AdmissionController,
    AdmissionDecision,
    AsyncAdmissionController,
    Deadline,
    DeadlineExceeded,
)
from .schema import error_response
from .server import (
    DEFAULT_TOP,
    MAX_BODY_BYTES,
    OpinionService,
    ServeError,
    ServeHandler,
    _REQUEST_ID_RE,
    documents_from_payload,
    new_request_id,
)

#: Paths that bypass admission control — same tuple as the threaded
#: handler, so saturation can never gate health, telemetry, or the
#: operator's way out of an incident.
UNGATED = ServeHandler.UNGATED

#: Admin routes whose handlers do blocking file IO; they run in a
#: worker thread so the event loop keeps answering queries during a
#: reload or an ingest refit.
_THREAD_ROUTES = ("/admin/reload", "/admin/ingest")

#: Request heads larger than this are rejected outright (no
#: legitimate client sends kilobytes of headers to this API).
MAX_HEADER_BYTES = 64 * 1024

#: Rendered-body LRU entries (each pins its response dict alive, so
#: ids can never collide while an entry is live).
DEFAULT_BODY_CACHE = 4096

_CRLF = b"\r\n"
_HEAD_END = b"\r\n\r\n"
_SERVER_HDR = b"Server: repro-serve/2"
_CT_JSON = b"Content-Type: application/json"
_CT_TEXT = b"Content-Type: text/plain; version=0.0.4"

_REASONS = {
    200: b"OK",
    400: b"Bad Request",
    404: b"Not Found",
    409: b"Conflict",
    413: b"Request Entity Too Large",
    429: b"Too Many Requests",
    500: b"Internal Server Error",
    501: b"Not Implemented",
    503: b"Service Unavailable",
}
_STATUS_LINES = {
    status: b"HTTP/1.1 %d %s" % (status, reason)
    for status, reason in _REASONS.items()
}


def _status_line(status: int) -> bytes:
    line = _STATUS_LINES.get(status)
    if line is None:
        line = b"HTTP/1.1 %d Status" % status
        _STATUS_LINES[status] = line
    return line


def async_admission_from(
    sync: AdmissionController,
) -> AsyncAdmissionController:
    """An event-loop controller with a sync controller's config."""
    return AsyncAdmissionController(
        sync.max_inflight,
        queue_depth=sync.queue_depth,
        queue_timeout=sync.queue_timeout,
        client_rate=sync.client_rate,
        client_burst=sync.client_burst,
        max_clients=sync.max_clients,
    )


class _Request:
    """One parsed request in flight (cheap per-request state)."""

    __slots__ = (
        "method",
        "path",
        "query",
        "body",
        "request_id",
        "client",
        "started",
        "batch_items",
        "close_after",
    )

    def __init__(
        self,
        method: str,
        path: str,
        query: str,
        body: bytes,
        request_id: str,
        client: str,
        started: float,
        close_after: bool,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.body = body
        self.request_id = request_id
        self.client = client
        self.started = started
        self.batch_items: int | None = None
        self.close_after = close_after


class HttpProtocol(asyncio.Protocol):
    """One keep-alive HTTP/1.1 connection on the event loop.

    Parsing is hand-rolled over a bytes buffer: requests this API
    receives are a few hundred bytes with a handful of headers, and
    ``http.server``'s file-object machinery is most of what made the
    threaded core slow. A request whose handling never awaits is
    answered inline from ``data_received`` — no task, no scheduling
    round-trip; requests that must wait (admission queue, admin file
    IO) move to a task while the transport's reading is paused, so
    pipelined bytes sit in the kernel until the connection is free.
    """

    __slots__ = (
        "server",
        "service",
        "transport",
        "buf",
        "peer_host",
        "closed",
        "busy",
        "task",
    )

    def __init__(self, server: "AsyncReproServer") -> None:
        self.server = server
        self.service = server.service
        self.transport: asyncio.Transport | None = None
        self.buf = b""
        self.peer_host = ""
        self.closed = False
        self.busy = False
        self.task: asyncio.Task | None = None

    # -- connection lifecycle ------------------------------------------
    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]
        sock = transport.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            except OSError:  # pragma: no cover - platform quirk
                pass
        peer = transport.get_extra_info("peername")
        self.peer_host = (
            peer[0] if isinstance(peer, tuple) else "unknown"
        )
        self.server.connections.add(self)

    def connection_lost(self, exc: Exception | None) -> None:
        self.closed = True
        self.server.connections.discard(self)
        if self.task is not None and not self.task.done():
            self.task.cancel()

    # -- byte stream ----------------------------------------------------
    def data_received(self, data: bytes) -> None:
        self.buf = self.buf + data if self.buf else data
        if not self.busy:
            self._pump()

    def _pump(self) -> None:
        try:
            self._pump_inner()
        except (BrokenPipeError, ConnectionResetError):
            self._abort()
        except Exception:  # pragma: no cover - defensive
            self._abort()
            raise

    def _pump_inner(self) -> None:
        """Parse and dispatch framed requests until the buffer runs
        dry or a request moves to a task (which resumes the pump)."""
        while not self.closed:
            head_end = self.buf.find(_HEAD_END)
            if head_end < 0:
                if len(self.buf) > MAX_HEADER_BYTES:
                    self._protocol_error(
                        400, "request head too large"
                    )
                return
            head = self.buf[:head_end]
            line_end = head.find(_CRLF)
            request_line = head if line_end < 0 else head[:line_end]
            parts = request_line.split()
            if len(parts) != 3:
                self._protocol_error(400, "malformed request line")
                return
            headers: dict[bytes, bytes] = {}
            if line_end >= 0:
                for raw in head[line_end + 2:].split(_CRLF):
                    key, sep, value = raw.partition(b":")
                    if sep:
                        headers[key.strip().lower()] = value.strip()
            length = 0
            raw_length = headers.get(b"content-length")
            if raw_length is not None:
                try:
                    length = int(raw_length)
                except ValueError:
                    self._protocol_error(
                        400, "malformed Content-Length"
                    )
                    return
            if length > MAX_BODY_BYTES:
                # Mirror the threaded 413 envelope; the unread body
                # cannot be skipped safely, so the connection closes.
                self._oversized_body(parts, headers, length)
                return
            body_start = head_end + 4
            if len(self.buf) - body_start < length:
                return  # body still in flight
            body = self.buf[body_start:body_start + length]
            self.buf = self.buf[body_start + length:]
            if not self._dispatch(parts, headers, body):
                return  # a task owns the connection now

    # -- request dispatch ----------------------------------------------
    def _dispatch(
        self,
        parts: list[bytes],
        headers: dict[bytes, bytes],
        body: bytes,
    ) -> bool:
        """Handle one framed request; False when a task continues it."""
        started = time.perf_counter()
        try:
            method = parts[0].decode("ascii")
            target = parts[1].decode("ascii")
        except UnicodeDecodeError:
            self._protocol_error(400, "malformed request line")
            return False
        q = target.find("?")
        if q < 0:
            path, query = target, ""
        else:
            path, query = target[:q], target[q + 1:]
        raw_id = headers.get(b"x-request-id")
        request_id = ""
        if raw_id:
            supplied = raw_id.decode("latin-1")
            if _REQUEST_ID_RE.match(supplied):
                request_id = supplied
        if not request_id:
            request_id = new_request_id()
        raw_client = headers.get(b"x-client-id")
        client = (
            raw_client.decode("latin-1")
            if raw_client
            else self.peer_host
        )
        close_after = (
            headers.get(b"connection", b"").lower() == b"close"
            or parts[2] == b"HTTP/1.0"
        )
        ctx = _Request(
            method, path, query, body, request_id, client,
            started, close_after,
        )
        if method not in ("GET", "POST"):
            # The threaded stdlib core answers 501 for unknown verbs;
            # here it is the standard envelope.
            self._send_error(
                ctx, 501, "not_implemented",
                f"unsupported method {method!r}",
            )
            self._observe(ctx, 501, None, "not_implemented")
            return True
        service = self.service
        gated = path not in UNGATED
        if gated:
            decision = self.server.admission.poll(client)
            if decision is None:
                self._start_task(self._queued(ctx))
                return False
            if not decision.admitted:
                self._reject(ctx, decision)
                return True
        elif ctx.method == "POST" and path in _THREAD_ROUTES:
            self._start_task(self._admin(ctx))
            return False
        if gated and service.faults is not None:
            # Chaos mode: injected sleeps/disconnects must not stall
            # the event loop (they would serialise every connection
            # and defer signal delivery), so admitted requests run on
            # worker threads, as the threaded core did.
            self._start_task(self._offloaded(ctx))
            return False
        self._finish(ctx, gated)
        return True

    async def _offloaded(self, ctx: _Request) -> None:
        """Continuation for an admitted request under fault injection:
        the whole state machine runs on a worker thread."""
        try:
            await asyncio.to_thread(self._finish, ctx, True)
        finally:
            if not self.closed:
                self._resume()

    def _start_task(self, coro) -> None:
        self.busy = True
        if self.transport is not None:
            self.transport.pause_reading()
        self.task = self.server.loop.create_task(coro)

    def _resume(self) -> None:
        self.busy = False
        self.task = None
        if not self.closed and self.transport is not None:
            self.transport.resume_reading()
            self._pump()

    def _reject(
        self, ctx: _Request, decision: AdmissionDecision
    ) -> None:
        """Answer and account an admission rejection."""
        if decision.status == 429:
            self.service.registry.inc(
                "repro_serve_rate_limited_total"
            )
        status: int = decision.status
        code: str | None = decision.code
        try:
            self._send_decision(ctx, decision)
        except (BrokenPipeError, ConnectionResetError):
            status, code = 499, "client_disconnect"
            self._abort()
        self._observe(ctx, status, None, code)

    async def _queued(self, ctx: _Request) -> None:
        """Continuation for a request parked in the admission queue."""
        try:
            decision = await self.server.admission.wait_for_slot()
            if not decision.admitted:
                self._reject(ctx, decision)
                return
            if self.service.faults is not None:
                await asyncio.to_thread(self._finish, ctx, True)
            else:
                self._finish(ctx, gated=True)
        except asyncio.CancelledError:
            # Connection lost while queued; nothing to answer.
            raise
        finally:
            if not self.closed:
                self._resume()

    async def _admin(self, ctx: _Request) -> None:
        """Continuation for /admin/reload and /admin/ingest: blocking
        artefact IO runs in a thread so queries keep flowing."""
        service = self.service
        status = 500
        code: str | None = None
        try:
            payload = self._json_body(ctx)
            if ctx.path == "/admin/reload":
                path = payload.get("path")
                if path is not None and not isinstance(path, str):
                    raise ServeError("reload path must be a string")
                summary = await asyncio.to_thread(
                    self.server.run_reload, path
                )
            else:
                documents = documents_from_payload(payload)
                ctx.batch_items = len(documents)
                summary = await asyncio.to_thread(
                    self.server.run_ingest,
                    documents,
                    ctx.request_id or None,
                )
            status = 200
            self._send_json(ctx, 200, summary)
        except asyncio.CancelledError:
            raise
        except ServeError as error:
            status = error.status
            code = error.code
            self._send_error(
                ctx, status, error.code, str(error),
                retry_after=error.retry_after,
            )
        except (BrokenPipeError, ConnectionResetError):
            status = 499
            code = "client_disconnect"
            self._abort()
        except Exception as error:  # pragma: no cover - defensive
            status = 500
            code = "internal"
            try:
                self._send_error(
                    ctx, 500, "internal",
                    f"{type(error).__name__}: {error}",
                )
            except OSError:
                pass
        finally:
            self._observe(ctx, status, None, code)
            if not self.closed:
                self._resume()

    def _finish(self, ctx: _Request, gated: bool) -> None:
        """The request state machine — a faithful port of the threaded
        handler's ``_handle`` body (statuses, codes, metrics, and the
        observe-in-finally ordering are contract)."""
        service = self.service
        status = 500
        cached: bool | None = None
        code: str | None = None
        deadline = (
            Deadline(service.request_deadline) if gated else None
        )
        try:
            status, cached = self._route(ctx, deadline)
        except DeadlineExceeded as error:
            status = 503
            code = "deadline_exceeded"
            service.registry.inc(
                "repro_serve_deadline_exceeded_total"
            )
            self._send_error(
                ctx, status, code, str(error), retry_after=1.0
            )
        except ServeError as error:
            status = error.status
            code = error.code
            self._send_error(
                ctx, status, error.code, str(error),
                retry_after=error.retry_after,
            )
        except (BrokenPipeError, ConnectionResetError):
            status = 499  # client went away (or chaos said it did)
            code = "client_disconnect"
            self._abort()
        except Exception as error:  # pragma: no cover - defensive
            status = 500
            code = "internal"
            try:
                self._send_error(
                    ctx, 500, "internal",
                    f"{type(error).__name__}: {error}",
                )
            except OSError:
                pass
        finally:
            if gated:
                self.server.admission.release()
            self._observe(ctx, status, cached, code)

    # -- routing --------------------------------------------------------
    def _route(
        self, ctx: _Request, deadline: Deadline | None
    ) -> tuple[int, bool | None]:
        method, path = ctx.method, ctx.path
        service = self.service
        if method == "GET" and path == "/query":
            return self._get_query(ctx, deadline)
        if method == "GET" and path == "/explain":
            return self._get_explain(ctx, deadline)
        if method == "GET" and path == "/healthz":
            self._send_json(ctx, 200, service.healthz())
            return 200, None
        if method == "GET" and path == "/metrics":
            self._send_text(200, ctx, self.server.render_metrics())
            return 200, None
        if method == "POST" and path == "/batch":
            return self._post_batch(ctx, deadline)
        if method == "POST" and path == "/admin/rollback":
            self._send_json(ctx, 200, service.rollback())
            return 200, None
        raise ServeError(
            f"no route for {method} {path}", status=404,
            code="not_found",
        )

    def _params(self, ctx: _Request) -> dict[str, str]:
        if not ctx.query:
            return {}
        return {
            key: values[-1]
            for key, values in parse_qs(ctx.query).items()
        }

    def _get_query(
        self, ctx: _Request, deadline: Deadline | None
    ) -> tuple[int, bool]:
        params = self._params(ctx)
        top = params.get("top", DEFAULT_TOP)
        service = self.service
        if "q" in params:
            response, cached = service.ask(
                params["q"], top=top, deadline=deadline
            )
        elif "property" in params and "type" in params:
            try:
                min_probability = float(
                    params.get("min_probability", 0.0)
                )
            except ValueError:
                raise ServeError(
                    "min_probability must be a number"
                )
            response, cached = service.listing(
                params["property"],
                params["type"],
                negative=params.get("negative", "")
                in ("1", "true", "yes"),
                min_probability=min_probability,
                top=top,
                deadline=deadline,
            )
        else:
            raise ServeError(
                "need either ?q=<free text> or "
                "?property=<adj>&type=<entity type>"
            )
        service.fault_response("/query")
        self._send_response(ctx, response, cached)
        return 200, cached

    def _get_explain(
        self, ctx: _Request, deadline: Deadline | None
    ) -> tuple[int, bool]:
        params = self._params(ctx)
        entity = params.get("entity")
        prop = params.get("property")
        if not entity or not prop:
            raise ServeError(
                "need entity=<id> and property=<adjective> "
                "(optional type=<entity type>)"
            )
        response, cached = self.service.explain(
            entity,
            prop,
            entity_type=params.get("type"),
            deadline=deadline,
        )
        self.service.fault_response("/explain")
        self._send_response(ctx, response, cached)
        return 200, cached

    def _post_batch(
        self, ctx: _Request, deadline: Deadline | None
    ) -> tuple[int, None]:
        payload = self._json_body(ctx)
        queries = payload.get("queries")
        if not isinstance(queries, list) or not all(
            isinstance(q, str) for q in queries
        ):
            raise ServeError(
                "body must be {\"queries\": [<string>, ...]}"
            )
        ctx.batch_items = len(queries)
        response = self.service.batch(
            queries,
            top=payload.get("top", DEFAULT_TOP),
            deadline=deadline,
            request_id=ctx.request_id or None,
        )
        self.service.fault_response("/batch")
        self._send_json(ctx, 200, response)
        return 200, None

    def _json_body(self, ctx: _Request) -> dict[str, Any]:
        if not ctx.body:
            return {}
        try:
            payload = json.loads(ctx.body)
        except json.JSONDecodeError as error:
            raise ServeError(f"malformed JSON body: {error}")
        if not isinstance(payload, dict):
            raise ServeError("JSON body must be an object")
        return payload

    # -- responses ------------------------------------------------------
    def _send_response(
        self, ctx: _Request, response: dict[str, Any], cached: bool
    ) -> None:
        """Send a query/listing/explain 200, reusing rendered bytes.

        The service returns its *shared* cached dict on a healthy hit
        (degraded stamping copies, so a degraded response is never the
        shared object); bytes keyed by that object's identity are
        exact for as long as the entry pins the dict alive."""
        body: bytes | None = None
        cache = self.server.body_cache
        if not self.service.degraded and self._on_loop():
            key = id(response)
            entry = cache.get(key)
            if entry is not None and entry[0] is response:
                cache.move_to_end(key)
                body = entry[1]
            else:
                body = json.dumps(
                    response, sort_keys=True
                ).encode()
                cache[key] = (response, body)
                if len(cache) > self.server.body_cache_size:
                    cache.popitem(last=False)
        if body is None:
            body = json.dumps(response, sort_keys=True).encode()
        self._write(ctx, 200, _CT_JSON, body, cached=cached)

    def _send_json(
        self,
        ctx: _Request,
        status: int,
        payload: dict[str, Any],
        *,
        cached: bool | None = None,
        retry_after: float | None = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self._write(
            ctx, status, _CT_JSON, body,
            cached=cached, retry_after=retry_after,
        )

    def _send_text(
        self, status: int, ctx: _Request, text: str
    ) -> None:
        self._write(ctx, status, _CT_TEXT, text.encode())

    def _send_error(
        self,
        ctx: _Request,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: float | None = None,
    ) -> None:
        self._send_json(
            ctx,
            status,
            error_response(
                code,
                message,
                retry_after=retry_after,
                degraded=self.service.degraded,
                request_id=ctx.request_id or None,
            ),
            retry_after=retry_after,
        )

    def _send_decision(
        self, ctx: _Request, decision: AdmissionDecision
    ) -> None:
        self._send_error(
            ctx,
            decision.status,
            decision.code,
            decision.message,
            retry_after=decision.retry_after,
        )

    def _write(
        self,
        ctx: _Request,
        status: int,
        content_type: bytes,
        body: bytes,
        *,
        cached: bool | None = None,
        retry_after: float | None = None,
    ) -> None:
        transport = self.transport
        if (
            self.closed
            or transport is None
            or transport.is_closing()
        ):
            raise BrokenPipeError("connection already closed")
        parts = [
            _status_line(status),
            _SERVER_HDR,
            content_type,
            b"Content-Length: %d" % len(body),
        ]
        if ctx.request_id:
            parts.append(
                b"X-Request-Id: " + ctx.request_id.encode("ascii")
            )
        if cached is not None:
            parts.append(
                b"X-Cache: hit" if cached else b"X-Cache: miss"
            )
        if retry_after is None and status in (429, 503):
            retry_after = 1.0
        if retry_after is not None:
            parts.append(
                b"Retry-After: %d" % max(1, math.ceil(retry_after))
            )
        if ctx.close_after:
            parts.append(b"Connection: close")
        data = _CRLF.join(parts) + _HEAD_END + body
        if self._on_loop():
            transport.write(data)
            if ctx.close_after:
                self.closed = True
                transport.close()
        else:
            # Offloaded (chaos-mode) handlers run on worker threads;
            # asyncio transports are loop-affine, so hand the fully
            # rendered response to the loop. The connection is paused
            # while its task runs, so ordering is preserved.
            if ctx.close_after:
                self.closed = True
            self.server.loop.call_soon_threadsafe(
                self._write_from_thread, transport, data,
                ctx.close_after,
            )

    def _on_loop(self) -> bool:
        try:
            return asyncio.get_running_loop() is self.server.loop
        except RuntimeError:
            return False

    @staticmethod
    def _write_from_thread(
        transport: asyncio.Transport, data: bytes, close: bool
    ) -> None:
        if transport.is_closing():
            return
        transport.write(data)
        if close:
            transport.close()

    def _abort(self) -> None:
        """Close after a mid-response disconnect (499): a FIN, not an
        RST, so earlier pipelined responses still flush."""
        self.closed = True
        transport = self.transport
        if transport is None:
            return
        if self._on_loop():
            transport.close()
        else:
            self.server.loop.call_soon_threadsafe(transport.close)

    def _protocol_error(self, status: int, message: str) -> None:
        """Unparseable framing: answer an envelope and close (the
        byte stream cannot be trusted for another request)."""
        ctx = _Request(
            "", "", "", b"", new_request_id(), self.peer_host,
            time.perf_counter(), True,
        )
        try:
            self._send_error(ctx, status, "bad_request", message)
        except (BrokenPipeError, OSError):
            pass
        self.closed = True
        if self.transport is not None:
            self.transport.close()

    def _oversized_body(
        self,
        parts: list[bytes],
        headers: dict[bytes, bytes],
        length: int,
    ) -> None:
        """Same 413 message as the threaded ``_read_json_body``."""
        raw_id = headers.get(b"x-request-id", b"")
        supplied = raw_id.decode("latin-1") if raw_id else ""
        request_id = (
            supplied
            if supplied and _REQUEST_ID_RE.match(supplied)
            else new_request_id()
        )
        ctx = _Request(
            parts[0].decode("ascii", "replace"),
            "", "", b"", request_id, self.peer_host,
            time.perf_counter(), True,
        )
        try:
            self._send_error(
                ctx, 413, "bad_request",
                f"body of {length} bytes exceeds "
                f"{MAX_BODY_BYTES}",
            )
        except (BrokenPipeError, OSError):
            pass
        self.closed = True
        if self.transport is not None:
            self.transport.close()

    # -- accounting -----------------------------------------------------
    def _observe(
        self,
        ctx: _Request,
        status: int,
        cached: bool | None,
        code: str | None,
    ) -> None:
        self.service.observe_request(
            method=ctx.method,
            path=ctx.path,
            status=status,
            seconds=time.perf_counter() - ctx.started,
            cached=cached,
            request_id=ctx.request_id,
            client=ctx.client,
            code=code,
            items=ctx.batch_items,
        )


class AsyncReproServer:
    """The asyncio server: one listener, one service, N connections.

    Owns the loop-side plumbing the protocol instances share: the
    lock-free admission controller, the rendered-body cache, the
    reload/ingest bridges (with multi-worker epoch hooks), and the
    merged ``/metrics`` view. Start with :meth:`start`; stop with
    :meth:`close_listener` + :meth:`wait_connections_closed`.
    """

    def __init__(
        self,
        service: OpinionService,
        *,
        runtime: Any | None = None,
        ingest_factory: Callable[[], Any] | None = None,
        body_cache_size: int = DEFAULT_BODY_CACHE,
    ) -> None:
        self.service = service
        if isinstance(service.admission, AsyncAdmissionController):
            self.admission = service.admission
        else:
            # Adopt the configured limits; the service delegates
            # admit/stats/drain to this controller from now on.
            self.admission = async_admission_from(service.admission)
            service.admission = self.admission
        self.runtime = runtime
        self.ingest_factory = ingest_factory
        self.body_cache: OrderedDict[int, tuple[dict, bytes]] = (
            OrderedDict()
        )
        self.body_cache_size = int(body_cache_size)
        self.connections: set[HttpProtocol] = set()
        self.loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self.port = 0

    # -- lifecycle ------------------------------------------------------
    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        sock: socket.socket | None = None,
    ) -> None:
        self.loop = asyncio.get_running_loop()
        if sock is not None:
            self._server = await self.loop.create_server(
                lambda: HttpProtocol(self), sock=sock
            )
        else:
            self._server = await self.loop.create_server(
                lambda: HttpProtocol(self), host, port
            )
        self.port = self._server.sockets[0].getsockname()[1]

    def close_listener(self) -> None:
        if self._server is not None:
            self._server.close()

    async def wait_closed(self) -> None:
        if self._server is not None:
            await self._server.wait_closed()

    def close_connections(self) -> None:
        """Drop every open connection (after the drain finished)."""
        for protocol in list(self.connections):
            protocol.closed = True
            if protocol.transport is not None:
                protocol.transport.close()

    # -- admin bridges (run inside worker threads) ---------------------
    def run_reload(self, path: str | None) -> dict[str, Any]:
        """``/admin/reload`` body: the threaded route's defensive
        wrapper plus the multi-worker epoch bump on success."""
        try:
            summary = self.service.reload(path)
        except ServeError:
            raise
        except Exception as error:  # pragma: no cover - defensive
            raise ServeError(
                f"reload failed, previous table still live: {error}",
                status=500,
                code="reload_failed",
            ) from None
        self._after_swap("reload", path)
        return summary

    def run_ingest(
        self, documents: list, request_id: str | None
    ) -> dict[str, Any]:
        """``/admin/ingest`` body. In multi-worker mode the whole
        cycle serialises on a cross-process journal lock, and a
        pipeline whose persisted state moved underneath (a sibling
        ingested first) is rebuilt from disk before appending — the
        journal's ``DuplicateOffsetError`` guard means a stale writer
        would otherwise corrupt nothing but fail loudly."""
        service = self.service
        if self.runtime is None or service.ingest_pipeline is None:
            summary = service.ingest(documents, request_id)
            self._after_swap("ingest", None)
            return summary
        with self.runtime.ingest_lock():
            self._resync_pipeline()
            summary = service.ingest(documents, request_id)
        self._after_swap("ingest", None)
        return summary

    def _resync_pipeline(self) -> None:
        from ..ingest.state import load_state

        pipeline = self.service.ingest_pipeline
        disk = load_state(pipeline.journal.directory)
        if (
            disk.applied_offset != pipeline.state.applied_offset
            or disk.generation != pipeline.state.generation
        ):
            if self.ingest_factory is None:  # pragma: no cover
                raise ServeError(
                    "ingest state changed on disk and no factory "
                    "is attached to rebuild the pipeline",
                    status=500,
                    code="ingest_failed",
                )
            self.service.ingest_pipeline = self.ingest_factory()

    def _after_swap(self, kind: str, path: str | None) -> None:
        """A successful local swap in multi-worker mode: publish the
        new epoch and ask the supervisor to SIGHUP the siblings."""
        if self.runtime is None:
            return
        self.runtime.publish_epoch(kind, path)
        self.runtime.notify_parent()

    # -- metrics --------------------------------------------------------
    def render_metrics(self) -> str:
        """The ``/metrics`` exposition; with a worker runtime, the
        merged view across every live worker's latest snapshot."""
        service = self.service
        service.publish_slo_gauges()
        if self.runtime is None:
            return service.registry.exposition()
        from ..obs.metrics import MetricsRegistry

        self.runtime.dump_registry(service.registry)
        merged = MetricsRegistry()
        for registry in self.runtime.peer_registries():
            merged.merge(registry)
        merged.merge(service.registry)
        merged.set_gauge(
            "repro_serve_workers", self.runtime.worker_count
        )
        return merged.exposition()


async def serve_async(
    service: OpinionService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    sock: socket.socket | None = None,
    drain_timeout: float = 5.0,
    runtime: Any | None = None,
    ingest_factory: Callable[[], Any] | None = None,
    quiet: bool = False,
    on_started: Callable[[int], None] | None = None,
) -> int:
    """Run the async core until SIGTERM/SIGINT, with graceful drain.

    The event-loop twin of ``build_server`` +
    ``install_signal_handlers`` + ``serve_forever``: SIGHUP hot-swaps
    (via the shared epoch file when a worker ``runtime`` is attached,
    so sibling workers converge on the same generation), SIGTERM
    flips the service to draining, stops the listener, and waits up
    to ``drain_timeout`` for in-flight requests. ``on_started``
    receives the bound port (authoritative for ``--port 0``).
    """
    server = AsyncReproServer(
        service,
        runtime=runtime,
        ingest_factory=ingest_factory,
    )
    await server.start(host, port, sock=sock)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    service.registry.set_gauge(
        "repro_serve_workers",
        runtime.worker_count if runtime is not None else 1,
    )

    def _terminate() -> None:
        if not service.admission.draining:
            service.begin_drain()
            if not quiet:
                print(
                    "repro serve: draining (finishing in-flight "
                    "requests)",
                    file=sys.stderr,
                    flush=True,
                )
        stop.set()

    async def _reload_from_signal() -> None:
        path: str | None = None
        if runtime is not None:
            info = runtime.read_epoch()
            if info is None or info.get(
                "epoch", 0
            ) <= runtime.last_epoch:
                # Our own broadcast coming back (this worker already
                # swapped before notifying the supervisor).
                return
            runtime.last_epoch = info["epoch"]
            path = info.get("path")
        try:
            summary = await asyncio.to_thread(service.reload, path)
            print(
                f"repro serve: reloaded {summary['source']} "
                f"(generation {summary['generation']}, "
                f"{summary['opinions']} opinions)",
                file=sys.stderr,
                flush=True,
            )
        except Exception as error:
            print(
                "repro serve: reload failed, previous table "
                f"still live: {error}",
                file=sys.stderr,
                flush=True,
            )

    def _hup() -> None:
        loop.create_task(_reload_from_signal())

    try:
        loop.add_signal_handler(signal.SIGTERM, _terminate)
        loop.add_signal_handler(signal.SIGINT, _terminate)
        if hasattr(signal, "SIGHUP"):
            loop.add_signal_handler(signal.SIGHUP, _hup)
    except (NotImplementedError, RuntimeError, ValueError):
        # No signal support here (e.g. the loop runs off the main
        # thread under test); the caller stops us via the event.
        pass

    dump_task: asyncio.Task | None = None
    if runtime is not None:
        async def _dump_periodically() -> None:
            while True:
                await asyncio.sleep(runtime.dump_interval)
                service.publish_slo_gauges()
                runtime.dump_registry(service.registry)

        dump_task = loop.create_task(_dump_periodically())

    if on_started is not None:
        on_started(server.port)
    await stop.wait()

    server.close_listener()
    admission = server.admission
    drained = await admission.wait_idle_async(drain_timeout)
    if not drained and not quiet:
        print(
            "repro serve: drain timeout reached with "
            f"{admission.inflight} request(s) still "
            "in flight",
            file=sys.stderr,
            flush=True,
        )
    if dump_task is not None:
        dump_task.cancel()
    if runtime is not None:
        service.publish_slo_gauges()
        runtime.dump_registry(service.registry)
    server.close_connections()
    await server.wait_closed()
    return 0
