"""Query-serving subsystem: index, cache, and concurrent HTTP API.

Mine once with ``repro run``, then serve many low-latency subjective
queries: :class:`OpinionIndex` answers conjunctive/negated top-k queries
from pre-built posting structures (bit-identical to the one-shot
:class:`~repro.core.query.QueryEngine`), :class:`QueryCache` absorbs
repeated queries, and :class:`OpinionService` puts both behind a JSON
HTTP API with admission control (per-client token buckets + bounded
queue), per-request deadlines, safe hot-reload with one-step
rollback, and a seeded chaos injector. The default front end is the
asyncio event loop (:class:`AsyncReproServer` /
:func:`serve_async`, with ``--workers N`` forking SO_REUSEPORT
workers via :mod:`repro.serve.workers`); :class:`ReproServer` is the
legacy thread-per-connection core behind ``--legacy-threaded``.
Every request carries an ``X-Request-Id`` joining its access-log line
(:class:`AccessLog`), histogram exemplar, and trace span; SLO burn
rates surface in ``/healthz`` and ``/metrics``. See docs/serving.md,
docs/observability.md ("Serving observability"), and
docs/robustness.md ("Serving resilience").
"""

from .access_log import (
    ACCESS_LOG_FIELDS,
    AccessLog,
    read_access_log,
)
from .admission import (
    DEFAULT_REQUEST_DEADLINE,
    AdmissionController,
    AdmissionDecision,
    AsyncAdmissionController,
    CircuitBreaker,
    ClientBuckets,
    Deadline,
    DeadlineExceeded,
    TokenBucket,
)
from .aio import AsyncReproServer, serve_async
from .cache import DEFAULT_MAX_ENTRIES, QueryCache
from .faults import (
    InjectedDisconnect,
    InjectedServeFault,
    ServeFaultInjector,
)
from .index import AGNOSTIC_PRIOR, OpinionIndex
from .schema import (
    SERVE_SCHEMA_VERSION,
    ask_response,
    batch_response,
    error_response,
    explain_response,
    listing_response,
)
from .server import (
    DEFAULT_MAX_INFLIGHT,
    HEALTH_STATES,
    OpinionService,
    ReproServer,
    ServeError,
    build_server,
    documents_from_payload,
    install_signal_handlers,
    load_provenance_sidecar,
    new_request_id,
    resolve_opinion,
)
from .workers import WorkerRuntime, make_reuseport_socket, supervise

__all__ = [
    "ACCESS_LOG_FIELDS",
    "AGNOSTIC_PRIOR",
    "AccessLog",
    "AdmissionController",
    "AdmissionDecision",
    "AsyncAdmissionController",
    "AsyncReproServer",
    "CircuitBreaker",
    "ClientBuckets",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_REQUEST_DEADLINE",
    "Deadline",
    "DeadlineExceeded",
    "HEALTH_STATES",
    "InjectedDisconnect",
    "InjectedServeFault",
    "OpinionIndex",
    "OpinionService",
    "QueryCache",
    "ReproServer",
    "SERVE_SCHEMA_VERSION",
    "ServeError",
    "ServeFaultInjector",
    "TokenBucket",
    "WorkerRuntime",
    "ask_response",
    "batch_response",
    "build_server",
    "documents_from_payload",
    "error_response",
    "explain_response",
    "install_signal_handlers",
    "listing_response",
    "load_provenance_sidecar",
    "make_reuseport_socket",
    "new_request_id",
    "read_access_log",
    "resolve_opinion",
    "serve_async",
    "supervise",
]
