"""Query-serving subsystem: index, cache, and concurrent HTTP API.

Mine once with ``repro run``, then serve many low-latency subjective
queries: :class:`OpinionIndex` answers conjunctive/negated top-k queries
from pre-built posting structures (bit-identical to the one-shot
:class:`~repro.core.query.QueryEngine`), :class:`QueryCache` absorbs
repeated queries, and :class:`OpinionService` / :class:`ReproServer`
put both behind a threaded JSON HTTP API with admission control and
atomic hot-reload. See docs/serving.md.
"""

from .cache import DEFAULT_MAX_ENTRIES, QueryCache
from .index import AGNOSTIC_PRIOR, OpinionIndex
from .schema import SERVE_SCHEMA_VERSION, ask_response, listing_response
from .server import (
    DEFAULT_MAX_INFLIGHT,
    OpinionService,
    ReproServer,
    ServeError,
    build_server,
    install_signal_handlers,
)

__all__ = [
    "AGNOSTIC_PRIOR",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_MAX_INFLIGHT",
    "OpinionIndex",
    "OpinionService",
    "QueryCache",
    "ReproServer",
    "SERVE_SCHEMA_VERSION",
    "ServeError",
    "ask_response",
    "build_server",
    "install_signal_handlers",
    "listing_response",
]
