"""Deterministic fault injection for the serving layer.

The chaos suite and ``bench_serve_chaos.py`` need serving failures on
demand, reproducibly. :class:`ServeFaultInjector` mirrors
:class:`~repro.pipeline.faults.FaultInjector` for the read path: every
fault kind fires on an exact, seeded period over its own ordinal
counter, so a test that configures ``corrupt_every_nth=2`` gets a
strict good/corrupt alternation of reloads regardless of timing.

Fault kinds (each independently enabled by its ``*_every_nth`` knob,
0 = off):

* **slow query** — sleeps ``slow_seconds`` before evaluating a
  cache-missing query, exercising request deadlines;
* **corrupt / truncated artefact / failed swap** — sabotages a reload
  attempt, exercising validation, quarantine, degraded mode, and
  rollback (``corrupt_mode`` picks which stage breaks);
* **mid-request disconnect** — raises
  :class:`InjectedDisconnect` just before the response is written,
  exercising the client-gone path (499) and goodput accounting.

Firing rule: the k-th call of a hook fires iff
``k % every_nth == seed % every_nth`` — exact periods with a seeded
phase, not a probabilistic hash, because the chaos invariants (e.g.
"degraded iff the *last* reload failed") need a predictable sequence.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..core.errors import ReproError

#: Reload sabotage stages understood by ``corrupt_mode``.
CORRUPT_MODES = ("corrupt", "truncate", "fail_swap")


class InjectedServeFault(ReproError):
    """Raised by the serve fault injector in place of an organic error."""


class InjectedDisconnect(ConnectionResetError):
    """Simulates the client vanishing mid-response."""


@dataclass
class ServeFaultInjector:
    """Seeded, deterministic failure source for the serving layer."""

    seed: int = 0
    slow_every_nth: int = 0
    slow_seconds: float = 0.3
    corrupt_every_nth: int = 0
    corrupt_mode: str = "corrupt"
    disconnect_every_nth: int = 0
    _ordinals: dict[str, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _fired: dict[str, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False,
        compare=False,
    )

    def __post_init__(self) -> None:
        if self.corrupt_mode not in CORRUPT_MODES:
            raise ValueError(
                f"corrupt_mode must be one of {CORRUPT_MODES}, "
                f"got {self.corrupt_mode!r}"
            )

    # ------------------------------------------------------------------
    # Firing rule
    # ------------------------------------------------------------------
    def _fires(self, kind: str, every_nth: int) -> bool:
        if every_nth <= 0:
            return False
        with self._lock:
            ordinal = self._ordinals.get(kind, 0)
            self._ordinals[kind] = ordinal + 1
            fired = ordinal % every_nth == self.seed % every_nth
            if fired:
                self._fired[kind] = self._fired.get(kind, 0) + 1
        return fired

    def fired_counts(self) -> dict[str, int]:
        """How many faults of each kind have fired so far."""
        with self._lock:
            return dict(self._fired)

    # ------------------------------------------------------------------
    # Hooks called by the serving layer
    # ------------------------------------------------------------------
    def on_query(self, text: str) -> bool:
        """Called on every cache-missing query evaluation; returns
        whether a slow-query fault fired."""
        if self._fires("slow", self.slow_every_nth):
            time.sleep(self.slow_seconds)
            return True
        return False

    def reload_fault(self) -> str | None:
        """Called once per reload attempt; returns the sabotage stage
        (one of :data:`CORRUPT_MODES`) or None for a clean reload."""
        if self._fires("corrupt", self.corrupt_every_nth):
            return self.corrupt_mode
        return None

    def on_response(self, path: str) -> None:
        """Called just before a successful response body is written."""
        if self._fires("disconnect", self.disconnect_every_nth):
            raise InjectedDisconnect(
                f"injected disconnect before response to {path}"
            )

    # ------------------------------------------------------------------
    # CLI spec parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "ServeFaultInjector":
        """Build an injector from a ``--fault-inject`` spec string.

        Example: ``slow_every=5,slow_ms=300,corrupt_every=2,``
        ``corrupt_mode=truncate,disconnect_every=50,seed=7``.
        """
        kwargs: dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad --fault-inject entry {part!r}: expected "
                    "key=value"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            raw = raw.strip()
            try:
                if key == "seed":
                    kwargs["seed"] = int(raw)
                elif key == "slow_every":
                    kwargs["slow_every_nth"] = int(raw)
                elif key == "slow_ms":
                    kwargs["slow_seconds"] = int(raw) / 1000.0
                elif key == "corrupt_every":
                    kwargs["corrupt_every_nth"] = int(raw)
                elif key == "corrupt_mode":
                    kwargs["corrupt_mode"] = raw
                elif key == "disconnect_every":
                    kwargs["disconnect_every_nth"] = int(raw)
                else:
                    raise ValueError(
                        f"unknown --fault-inject key {key!r}"
                    )
            except ValueError as error:
                raise ValueError(
                    f"bad --fault-inject entry {part!r}: {error}"
                ) from None
        return cls(**kwargs)  # type: ignore[arg-type]
