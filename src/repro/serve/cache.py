"""Bounded LRU result cache for the query server.

Subjective-query traffic is Zipfian — "cute animals" is asked far more
often than "not quiet very young celebrities" — so a small LRU over
fully-rendered responses absorbs most of the load. Design points:

* **Bounded.** At most ``max_entries`` responses; inserting past the
  bound evicts the least-recently-used entry.
* **Generation-scoped.** Every key carries the index generation it was
  computed against. When the server hot-swaps the opinion table it
  calls :meth:`purge_generations`, dropping every entry from older
  generations in one sweep — a reader can never be served an answer
  mined from a table that is no longer live.
* **Accounted.** Hits, misses, LRU evictions, and swap invalidations
  are counted locally (for ``/healthz``) and mirrored into a
  :class:`~repro.obs.metrics.MetricsRegistry` when one is attached
  (for ``/metrics``).
* **Thread-safe.** One mutex around the ordered dict; the critical
  sections are a handful of dict operations.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from ..obs.metrics import MetricsRegistry

DEFAULT_MAX_ENTRIES = 1024


class QueryCache:
    """LRU response cache with hit/miss/eviction accounting."""

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be at least 1, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self._registry = registry
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._live_generation: int | None = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _inc(self, name: str, amount: int = 1) -> None:
        if self._registry is not None and amount:
            self._registry.inc(name, amount)

    def get(self, key: Hashable) -> Any | None:
        """Cached value, refreshed as most recently used; else None."""
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if value is not None:
            self._inc("repro_serve_cache_hits_total")
        else:
            self._inc("repro_serve_cache_misses_total")
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting LRU past the bound.

        A put whose generation-tagged key predates the last purge is
        silently dropped: a request that raced a hot swap (answered
        from the old index, stored after the purge) must not leak a
        stale entry back into a cache that was just invalidated.
        """
        if value is None:
            raise ValueError("cache values must not be None")
        evicted = 0
        with self._lock:
            if (
                self._live_generation is not None
                and isinstance(key, tuple)
                and key
                and isinstance(key[0], int)
                and key[0] < self._live_generation
            ):
                self.invalidations += 1
                self._inc("repro_serve_cache_invalidations_total")
                return
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
        self._inc("repro_serve_cache_evictions_total", evicted)

    def purge_generations(self, live_generation: int) -> int:
        """Drop every entry computed against an older generation.

        Keys are ``(generation, ...)`` tuples (the service's
        convention); anything else is dropped too, defensively. Also
        records ``live_generation`` so a racing :meth:`put` from a
        request answered against the old index is rejected (see
        :meth:`put`).
        """
        with self._lock:
            self._live_generation = live_generation
            stale = [
                key
                for key in self._entries
                if not (
                    isinstance(key, tuple)
                    and key
                    and key[0] == live_generation
                )
            ]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
        self._inc(
            "repro_serve_cache_invalidations_total", len(stale)
        )
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
        self._inc("repro_serve_cache_invalidations_total", dropped)

    def stats(self) -> dict[str, int]:
        """Snapshot for ``/healthz``."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
