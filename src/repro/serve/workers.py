"""Multi-process serving: ``SO_REUSEPORT`` workers under a supervisor.

``repro serve --workers N`` runs N forked worker processes, each with
its own asyncio event loop (:mod:`repro.serve.aio`), its own
:class:`~repro.serve.server.OpinionService`, and its own listening
socket bound to the *same* address with ``SO_REUSEPORT`` — the kernel
load-balances incoming connections across the listeners, so there is
no shared accept queue, no thundering herd, and no parent proxy on
the data path. The parent binds first (so ``--port 0`` learns the
ephemeral port before any child exists, and holds the port for the
supervisor's lifetime), prints the banner exactly once, and then only
supervises:

* **SIGTERM/SIGINT** — broadcast SIGTERM, let every worker drain
  in-flight requests (``--drain-timeout``), reap them, and SIGKILL
  stragglers a grace period later, so shutdown always completes.
* **SIGHUP** — bump the shared *reload epoch* and broadcast SIGHUP:
  every worker hot-swaps from the artefact path and lands on the same
  generation.
* **SIGUSR1** (from a worker) — a worker that just swapped via
  ``POST /admin/reload`` or ``POST /admin/ingest`` already published
  the new epoch; the supervisor re-broadcasts SIGHUP so the sibling
  workers converge. The initiating worker recognises its own epoch
  and skips the redundant reload.

Cross-worker state lives in a throwaway runtime directory: the epoch
file (fcntl-locked read-modify-write), pickled per-worker
:class:`~repro.obs.metrics.MetricsRegistry` snapshots that any worker
merges on a ``/metrics`` scrape, and the ingest lock that serialises
``/admin/ingest`` cycles over the one shared corpus journal.
Generations stay in lockstep because every worker performs the same
number of swaps, each one validated through the usual snapshot-swap
path. ``/admin/rollback`` stays per-worker (an operator escape
hatch, documented in docs/serving.md).
"""

from __future__ import annotations

import contextlib
import fcntl
import json
import os
import pickle
import shutil
import signal
import socket
import sys
import tempfile
import time
import traceback
from pathlib import Path
from typing import Any, Callable, Iterator

#: Seconds between periodic per-worker metrics snapshot dumps.
DEFAULT_DUMP_INTERVAL = 0.5

#: Extra seconds past ``--drain-timeout`` before stragglers are
#: SIGKILLed (covers drain bookkeeping and interpreter teardown).
KILL_GRACE_SECONDS = 2.0


def make_reuseport_socket(host: str, port: int) -> socket.socket:
    """A bound (not listening) TCP socket with ``SO_REUSEPORT`` set.

    Every worker binds its own; the first bind (the supervisor's)
    reserves the port, so ``--port 0`` is resolved exactly once.
    """
    family = socket.AF_INET6 if ":" in host else socket.AF_INET
    sock = socket.socket(family, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except BaseException:
        sock.close()
        raise
    return sock


# ---------------------------------------------------------------------------
# Shared runtime directory (epoch file + metrics snapshots + locks)
# ---------------------------------------------------------------------------

def _epoch_path(directory: Path) -> Path:
    return directory / "epoch.json"


def read_epoch(directory: str | Path) -> dict[str, Any] | None:
    """The current reload epoch record, or None before the first."""
    try:
        raw = _epoch_path(Path(directory)).read_text()
    except OSError:
        return None
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


@contextlib.contextmanager
def _locked(path: Path) -> Iterator[None]:
    with open(path, "a+b") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def publish_epoch(
    directory: str | Path, kind: str, path: str | None = None
) -> int:
    """Atomically advance the reload epoch; returns the new value.

    ``kind`` records what triggered the swap (``reload`` / ``ingest``)
    and ``path`` an explicit artefact path when the trigger named one,
    so sibling workers reload the same source the initiator did.
    """
    directory = Path(directory)
    with _locked(directory / "epoch.lock"):
        current = read_epoch(directory)
        epoch = (current.get("epoch", 0) if current else 0) + 1
        record = {"epoch": epoch, "kind": kind, "path": path}
        tmp = directory / "epoch.json.tmp"
        tmp.write_text(json.dumps(record, sort_keys=True))
        os.replace(tmp, _epoch_path(directory))
    return epoch


class WorkerRuntime:
    """One worker's view of the shared coordination directory."""

    def __init__(
        self,
        directory: str | Path,
        worker_index: int,
        worker_count: int,
        parent_pid: int,
        dump_interval: float = DEFAULT_DUMP_INTERVAL,
    ) -> None:
        self.directory = Path(directory)
        self.worker_index = int(worker_index)
        self.worker_count = int(worker_count)
        self.parent_pid = int(parent_pid)
        self.dump_interval = float(dump_interval)
        self.metrics_dir = self.directory / "metrics"
        self.metrics_dir.mkdir(parents=True, exist_ok=True)
        #: Highest epoch this worker has already applied (its own
        #: swaps publish-and-record, so the supervisor's rebroadcast
        #: is recognised and skipped).
        self.last_epoch = 0

    # -- metrics snapshots ---------------------------------------------
    def _snapshot_path(self, index: int) -> Path:
        return self.metrics_dir / f"worker-{index}.pkl"

    def dump_registry(self, registry: Any) -> None:
        """Atomically publish this worker's registry snapshot."""
        tmp = self.metrics_dir / f"worker-{self.worker_index}.tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(registry, handle)
        os.replace(tmp, self._snapshot_path(self.worker_index))

    def peer_registries(self) -> list[Any]:
        """Every *other* worker's latest snapshot (best-effort: a
        worker that never dumped yet simply contributes nothing)."""
        registries = []
        for index in range(self.worker_count):
            if index == self.worker_index:
                continue
            try:
                with open(self._snapshot_path(index), "rb") as handle:
                    registries.append(pickle.load(handle))
            except (OSError, pickle.UnpicklingError, EOFError):
                continue
        return registries

    # -- reload epochs --------------------------------------------------
    def read_epoch(self) -> dict[str, Any] | None:
        return read_epoch(self.directory)

    def publish_epoch(
        self, kind: str, path: str | None = None
    ) -> int:
        epoch = publish_epoch(self.directory, kind, path)
        self.last_epoch = epoch
        return epoch

    def notify_parent(self) -> None:
        """Ask the supervisor to SIGHUP the sibling workers."""
        try:
            os.kill(self.parent_pid, signal.SIGUSR1)
        except (ProcessLookupError, PermissionError):
            pass

    # -- ingest serialisation ------------------------------------------
    @contextlib.contextmanager
    def ingest_lock(self) -> Iterator[None]:
        """Cross-process exclusive lock around one ingest cycle."""
        with _locked(self.directory / "ingest.lock"):
            yield


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------

def supervise(
    host: str,
    port: int,
    workers: int,
    drain_timeout: float,
    child_main: Callable[[int, int, str, int], int],
    *,
    banner: Callable[[int], None] | None = None,
) -> int:
    """Fork ``workers`` children and coordinate their lifecycle.

    ``child_main(worker_index, bound_port, runtime_dir, ready_fd)``
    runs in each forked child and must not return to the caller's
    stack — the supervisor wraps it so the child always
    ``os._exit``\\ s. The child writes one byte to ``ready_fd`` once
    it is listening; the banner (port report) only prints after every
    worker is ready, so the advertised address accepts connections
    immediately. Returns the supervisor exit code: 0 after a clean
    drain, 1 when a worker died unexpectedly.
    """
    if workers < 2:
        raise ValueError(
            f"supervise needs at least 2 workers, got {workers}"
        )
    sock = make_reuseport_socket(host, port)
    bound_port = sock.getsockname()[1]
    runtime_dir = tempfile.mkdtemp(prefix="repro-serve-workers-")
    ready_read, ready_write = os.pipe()
    children: dict[int, int] = {}
    for index in range(workers):
        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                sock.close()
                os.close(ready_read)
                for signum in (
                    signal.SIGTERM,
                    signal.SIGINT,
                    signal.SIGHUP,
                    signal.SIGUSR1,
                ):
                    signal.signal(signum, signal.SIG_DFL)
                code = child_main(
                    index, bound_port, runtime_dir, ready_write
                )
            except SystemExit as exit_:  # argparse/_fail inside child
                code = (
                    exit_.code if isinstance(exit_.code, int) else 1
                )
            except KeyboardInterrupt:
                code = 0
            except BaseException:
                traceback.print_exc()
                code = 1
            finally:
                os._exit(code)
        children[pid] = index
    os.close(ready_write)
    _await_ready(ready_read, workers)
    os.close(ready_read)
    if banner is not None:
        banner(bound_port)

    flags = {"term": False, "hup": False, "usr1": False}

    def _on_term(signum: int, frame: Any) -> None:
        flags["term"] = True

    def _on_hup(signum: int, frame: Any) -> None:
        flags["hup"] = True

    def _on_usr1(signum: int, frame: Any) -> None:
        flags["usr1"] = True

    signal.signal(signal.SIGTERM, _on_term)
    signal.signal(signal.SIGINT, _on_term)
    signal.signal(signal.SIGHUP, _on_hup)
    signal.signal(signal.SIGUSR1, _on_usr1)

    draining = False
    kill_at: float | None = None
    exit_code = 0
    try:
        while children:
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:  # pragma: no cover - raced
                break
            if pid:
                index = children.pop(pid, None)
                code = os.waitstatus_to_exitcode(status)
                if not draining and code != 0:
                    print(
                        f"repro serve: worker {index} exited "
                        f"unexpectedly ({code}); shutting down",
                        file=sys.stderr,
                        flush=True,
                    )
                    exit_code = 1
                    flags["term"] = True
                continue
            if flags["term"] and not draining:
                draining = True
                print(
                    "repro serve: draining (finishing in-flight "
                    "requests)",
                    file=sys.stderr,
                    flush=True,
                )
                for child in list(children):
                    _kill(child, signal.SIGTERM)
                kill_at = (
                    time.monotonic()
                    + drain_timeout
                    + KILL_GRACE_SECONDS
                )
            if flags["hup"]:
                flags["hup"] = False
                publish_epoch(runtime_dir, "reload")
                for child in list(children):
                    _kill(child, signal.SIGHUP)
            if flags["usr1"]:
                flags["usr1"] = False
                # The initiating worker already published the epoch;
                # rebroadcast so its siblings converge on it.
                for child in list(children):
                    _kill(child, signal.SIGHUP)
            if (
                kill_at is not None
                and time.monotonic() > kill_at
            ):
                for child in list(children):
                    _kill(child, signal.SIGKILL)
                kill_at = None
            time.sleep(0.05)
    finally:
        sock.close()
        shutil.rmtree(runtime_dir, ignore_errors=True)
    print(
        "repro serve: shut down cleanly", file=sys.stderr, flush=True
    )
    return exit_code


def _kill(pid: int, signum: int) -> None:
    try:
        os.kill(pid, signum)
    except ProcessLookupError:
        pass


def _await_ready(
    fd: int, workers: int, timeout: float = 30.0
) -> None:
    """Block until every worker wrote its ready byte (or ``timeout``
    passed / a worker died and closed its end) so the banner never
    advertises an address that refuses connections."""
    import select

    seen = 0
    deadline = time.monotonic() + timeout
    while seen < workers:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return
        readable, _, _ = select.select([fd], [], [], remaining)
        if not readable:
            return
        chunk = os.read(fd, workers - seen)
        if not chunk:  # every writer gone (workers died at boot)
            return
        seen += len(chunk)
