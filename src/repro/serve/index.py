"""Immutable in-memory index over a mined :class:`OpinionTable`.

The one-shot :class:`~repro.core.query.QueryEngine` re-scans the whole
table per query to find the entities of the requested type; fine for a
CLI invocation, hopeless for a server. :class:`OpinionIndex` builds the
per-type entity universe and per-``(entity_type, property)`` posting
structures **once**:

* a probability map per combination (entity → posterior), so scoring a
  conjunctive/negated query touches only the entities that appear in at
  least one of the query's posting lists (the *candidate union*) — all
  other entities of the type share the agnostic default score and are
  merged in lazily, already sorted;
* per-combination opinion lists pre-sorted by posterior, so the
  ``repro query``-style listing (``entities_with``) is a slice instead
  of a filter-and-sort;
* the table's degraded-combination flags, surfaced in every response.

The index is immutable after construction: the server hot-reloads by
building a fresh index off to the side and swapping one reference, so
a reader always sees a wholly consistent generation.

Results are bit-identical to :class:`QueryEngine` / ``OpinionTable``
answers (same floats, same tie-breaks) — the CLI and the HTTP server
share one semantics, enforced by test.
"""

from __future__ import annotations

import heapq
from itertools import islice

from ..core.query import QueryHit, SubjectiveQuery
from ..core.result import OpinionTable
from ..core.types import Opinion, Polarity, PropertyTypeKey

#: Posterior assumed for an entity-property pair the table knows
#: nothing about: missing knowledge neither qualifies nor disqualifies.
AGNOSTIC_PRIOR = 0.5

#: Candidates scored between request-deadline checkpoints — frequent
#: enough to bound overshoot, cheap enough to vanish in the loop cost.
DEADLINE_CHECK_EVERY = 256


class OpinionIndex:
    """Read-only query index over one opinion-table snapshot."""

    __slots__ = (
        "_generation",
        "_probability",
        "_by_polarity",
        "_entities_by_type",
        "_degraded",
        "_n_opinions",
    )

    def __init__(
        self, table: OpinionTable, generation: int = 1
    ) -> None:
        self._generation = int(generation)
        self._n_opinions = len(table)
        self._degraded = table.degraded_keys
        # entity -> posterior, per combination (the posting map).
        self._probability: dict[
            PropertyTypeKey, dict[str, float]
        ] = {}
        # polarity-partitioned opinion lists per combination, sorted
        # exactly as OpinionTable.entities_with sorts them.
        self._by_polarity: dict[
            PropertyTypeKey, dict[Polarity, tuple[Opinion, ...]]
        ] = {}
        entities_by_type: dict[str, set[str]] = {}
        for key in table.keys():
            opinions = table.for_key(key)
            self._probability[key] = {
                op.entity_id: op.probability for op in opinions
            }
            entities_by_type.setdefault(key.entity_type, set()).update(
                op.entity_id for op in opinions
            )
            partition: dict[Polarity, tuple[Opinion, ...]] = {}
            for polarity in Polarity:
                selected = [
                    op for op in opinions if op.polarity is polarity
                ]
                selected.sort(
                    key=lambda op: op.probability,
                    reverse=polarity is Polarity.POSITIVE,
                )
                partition[polarity] = tuple(selected)
            self._by_polarity[key] = partition
        self._entities_by_type: dict[str, tuple[str, ...]] = {
            entity_type: tuple(sorted(ids))
            for entity_type, ids in entities_by_type.items()
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return self._generation

    @property
    def n_opinions(self) -> int:
        return self._n_opinions

    @property
    def n_keys(self) -> int:
        return len(self._probability)

    def entity_types(self) -> list[str]:
        return sorted(self._entities_by_type)

    def entities_of_type(self, entity_type: str) -> tuple[str, ...]:
        return self._entities_by_type.get(entity_type, ())

    @property
    def degraded_keys(self) -> frozenset[PropertyTypeKey]:
        return self._degraded

    def is_degraded(self, key: PropertyTypeKey) -> bool:
        return key in self._degraded

    # ------------------------------------------------------------------
    # Free-text queries (the `repro ask` / GET /query?q= semantics)
    # ------------------------------------------------------------------
    def answer(
        self,
        query: SubjectiveQuery | str,
        top: int = 10,
        *,
        deadline=None,
    ) -> list[QueryHit]:
        """Top-k entities by joint posterior, ``QueryEngine``-identical.

        Only entities present in at least one of the query's posting
        maps are scored individually; the rest of the type's universe
        shares the agnostic default score and is merged in lazily (a
        generator over the sorted id list), so the work is
        O(candidates x terms + top), not O(type universe).

        ``deadline`` (a :class:`~repro.serve.admission.Deadline`) is
        checked every :data:`DEADLINE_CHECK_EVERY` candidates so an
        over-budget request is abandoned mid-scoring instead of
        completing late.
        """
        if isinstance(query, str):
            query = SubjectiveQuery.parse(query)
        universe = self._entities_by_type.get(query.entity_type)
        if not universe:
            return []
        terms = query.terms
        postings = [
            self._probability.get(term.key(query.entity_type))
            for term in terms
        ]
        candidates: set[str] = set()
        for posting in postings:
            if posting:
                candidates.update(posting)
        if deadline is not None:
            deadline.checkpoint("candidate collection")
        scored: list[QueryHit] = []
        for ordinal, entity_id in enumerate(candidates):
            if (
                deadline is not None
                and ordinal % DEADLINE_CHECK_EVERY == 0
            ):
                deadline.checkpoint("candidate scoring")
            per_term = []
            for term, posting in zip(terms, postings):
                probability = (
                    posting.get(entity_id, AGNOSTIC_PRIOR)
                    if posting
                    else AGNOSTIC_PRIOR
                )
                if term.negated:
                    probability = 1.0 - probability
                per_term.append(probability)
            score = 1.0
            for probability in per_term:
                score *= probability
            scored.append(
                QueryHit(
                    entity_id=entity_id,
                    score=score,
                    per_term=tuple(per_term),
                )
            )
        rank = lambda hit: (-hit.score, hit.entity_id)  # noqa: E731
        if deadline is not None:
            deadline.checkpoint("ranking")
        scored.sort(key=rank)

        # Everything outside the candidate union scores identically.
        default_per = tuple(
            1.0 - AGNOSTIC_PRIOR if term.negated else AGNOSTIC_PRIOR
            for term in terms
        )
        default_score = 1.0
        for probability in default_per:
            default_score *= probability

        def defaults():
            for entity_id in universe:
                if entity_id not in candidates:
                    yield QueryHit(
                        entity_id=entity_id,
                        score=default_score,
                        per_term=default_per,
                    )

        return list(
            islice(heapq.merge(scored, defaults(), key=rank), top)
        )

    # ------------------------------------------------------------------
    # Single-combination listings (the `repro query` semantics)
    # ------------------------------------------------------------------
    def entities_with(
        self,
        key: PropertyTypeKey,
        polarity: Polarity = Polarity.POSITIVE,
        min_probability: float = 0.0,
    ) -> list[Opinion]:
        """``OpinionTable.entities_with`` over the pre-sorted lists.

        The stored lists are already in final order, so the
        ``min_probability`` filter is a prefix scan with early exit.
        """
        partition = self._by_polarity.get(key)
        if partition is None:
            return []
        selected = partition[polarity]
        if min_probability <= 0.0:
            return list(selected)
        result = []
        for opinion in selected:
            confidence = (
                opinion.probability
                if polarity is Polarity.POSITIVE
                else 1.0 - opinion.probability
            )
            if confidence < min_probability:
                break
            result.append(opinion)
        return result
