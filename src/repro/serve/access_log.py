"""Structured JSONL access log for the serving layer.

One line per finished request, written after the response is sent so
logging never adds latency a client can see. The schema is flat and
stable — every key is present on every line (``null`` when not
applicable) so downstream `jq`/pandas never branch on key presence:

``ts``
    Unix wall-clock seconds at completion (float).
``request_id``
    The ``X-Request-Id`` that was echoed to the client — the join key
    against trace spans and error envelopes.
``method`` / ``path`` / ``status``
    The HTTP basics. ``path`` excludes the query string (it can carry
    user text; the trace span keeps the query when sampled).
``seconds``
    Wall latency of the handler.
``cached``
    True/False for query requests, ``null`` for everything else.
``code``
    Machine-readable error code for non-2xx (``null`` on success) —
    the same vocabulary as :func:`repro.serve.schema.error_response`.
``client``
    Peer address, ``null`` if unknown.
``generation``
    Snapshot generation that answered the request.
``items``
    Sub-query count for ``POST /batch`` lines, ``null`` otherwise.
    This is the one key older logs may lack (it post-dates them), so
    the reader treats it as optional and defaults it to ``null``.

Writes go through the binary file's thread-safe buffer and are
durably flushed every ``flush_every`` lines; the server closes the
log after the SIGTERM drain, so the file is complete when the process
exits cleanly.

With ``max_bytes`` set the log rotates: when the live file would grow
past the cap it is flushed, fsynced, closed, and renamed to
``<path>.<n>`` (higher ``n`` = newer), and a fresh live file opens.
:func:`read_access_log` transparently reads rotated parts in
chronological order before the live file.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import threading
import time
from pathlib import Path
from typing import Any, Iterator

#: Flush after this many buffered lines (and always on close).
DEFAULT_FLUSH_EVERY = 64

#: Strings that serialize as ``"<text>"`` with no escaping. The write
#: path is hot (one line per served request), and request ids, method
#: names, and paths virtually always match, so the common case skips
#: :func:`json.dumps` entirely.
_PLAIN = re.compile(r'^[^"\\\x00-\x1f]*$')


def _json_str(value: str | None) -> str:
    if value is None:
        return "null"
    if _PLAIN.match(value):
        return f'"{value}"'
    return json.dumps(value)


def _json_bool(value: bool | None) -> str:
    if value is None:
        return "null"
    return "true" if value else "false"


#: One %-format template per line: measurably cheaper than f-string
#: assembly with repr()ed floats, and the fixed 6-decimal places are
#: exactly the documented ts/seconds precision.
_LINE_TEMPLATE = (
    '{"ts": %.6f, "request_id": %s, "method": %s, "path": %s, '
    '"status": %d, "seconds": %.6f, "cached": %s, "code": %s, '
    '"client": %s, "generation": %s, "items": %s}\n'
)

#: Every record carries exactly these keys, in this order. ``items``
#: is the one optional key on read — logs written before it existed
#: omit it, and the reader fills in ``null``.
ACCESS_LOG_FIELDS = (
    "ts",
    "request_id",
    "method",
    "path",
    "status",
    "seconds",
    "cached",
    "code",
    "client",
    "generation",
    "items",
)

#: Keys that may be absent on disk (see ``items`` above).
_OPTIONAL_FIELDS = frozenset({"items"})


class AccessLog:
    """Append-only JSONL access log with thread-safe buffered writes."""

    def __init__(
        self,
        path: str | Path,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        clock: Any = time.time,
        max_bytes: int | None = None,
    ) -> None:
        if flush_every < 1:
            raise ValueError(
                f"flush_every must be >= 1, got {flush_every}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(
                f"max_bytes must be >= 1, got {max_bytes}"
            )
        self.path = Path(path)
        self.flush_every = int(flush_every)
        self.max_bytes = max_bytes
        self._clock = clock
        # The hot path takes no Python-level lock: the file is opened
        # in binary append mode, whose BufferedWriter serializes
        # whole-bytes writes internally (in C, far cheaper under
        # thread contention than threading.Lock), and the flush
        # cadence counts on the atomic itertools.count. The Python
        # lock below only coordinates close() with stragglers — except
        # with rotation on, where every write takes it so the
        # size-check/rotate/append sequence stays atomic.
        self._lock = threading.Lock()
        self._writes = itertools.count(1)
        self._closed = False
        self._handle = self.path.open("ab")
        self._size = (
            self.path.stat().st_size if max_bytes is not None else 0
        )

    def write(
        self,
        *,
        request_id: str | None,
        method: str,
        path: str,
        status: int,
        seconds: float,
        cached: bool | None = None,
        code: str | None = None,
        client: str | None = None,
        generation: int | None = None,
        items: int | None = None,
    ) -> None:
        # Hand-rolled serialization (validated against json.loads in
        # the tests): json.dumps on an 11-key dict costs more than the
        # rest of the request's telemetry combined.
        line = _LINE_TEMPLATE % (
            self._clock(),
            _json_str(request_id),
            _json_str(method),
            _json_str(path),
            status,
            seconds,
            _json_bool(cached),
            _json_str(code),
            _json_str(client),
            "null" if generation is None else int(generation),
            "null" if items is None else int(items),
        )
        if self._closed:
            return
        data = line.encode("utf-8")
        if self.max_bytes is not None:
            self._write_rotating(data)
            return
        try:
            self._handle.write(data)
            if next(self._writes) % self.flush_every == 0:
                self._handle.flush()
        except ValueError:
            # The log was closed under us mid-write (server
            # shutdown); the line is dropped, same as after close.
            return

    def _write_rotating(self, data: bytes) -> None:
        """Locked write path, used only when ``max_bytes`` is set."""
        with self._lock:
            if self._closed:
                return
            if self._size and self._size + len(data) > self.max_bytes:
                self._rotate()
            self._handle.write(data)
            self._size += len(data)
            if next(self._writes) % self.flush_every == 0:
                self._handle.flush()

    def _rotate(self) -> None:
        """Seal the live file as ``<path>.<n>`` and start a fresh one.

        Caller holds the lock. The sealed part is flushed and fsynced
        before the rename, so a rotated file is always complete and
        durable — readers never see a part with a torn tail.
        """
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        existing = [
            number for _, number in _rotated_parts(self.path)
        ]
        target = self.path.with_name(
            f"{self.path.name}.{max(existing, default=0) + 1}"
        )
        self.path.rename(target)
        self._handle = self.path.open("ab")
        self._size = 0

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "AccessLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _rotated_parts(path: Path) -> list[tuple[Path, int]]:
    """Rotated siblings of ``path`` as (part, number), oldest first.

    Rotation renames the live file to ``<name>.<n>`` with strictly
    increasing ``n``, so ascending numeric order is chronological.
    """
    pattern = re.compile(re.escape(path.name) + r"\.(\d+)$")
    parts = []
    if path.parent.is_dir():
        for sibling in path.parent.iterdir():
            match = pattern.fullmatch(sibling.name)
            if match:
                parts.append((sibling, int(match.group(1))))
    parts.sort(key=lambda item: item[1])
    return parts


def read_access_log(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield parsed access-log records; raise on malformed lines.

    Rotated parts (``<path>.<n>``) are read first, in chronological
    order, then the live file — callers see one continuous stream.

    Strictness is deliberate: the access log is written by exactly one
    process through :class:`AccessLog`, so a bad line means data loss
    worth surfacing, not noise worth skipping. The only leniency is
    ``items``, absent from logs that pre-date the field (defaults to
    ``null``).
    """
    path = Path(path)
    sources = [part for part, _ in _rotated_parts(path)]
    if path.exists() or not sources:
        sources.append(path)
    for source in sources:
        yield from _read_one_file(source)


def _read_one_file(path: Path) -> Iterator[dict[str, Any]]:
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{lineno}: malformed access-log line: "
                    f"{error}"
                ) from error
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{lineno}: access-log line is not an "
                    "object"
                )
            missing = [
                key
                for key in ACCESS_LOG_FIELDS
                if key not in record
                and key not in _OPTIONAL_FIELDS
            ]
            if missing:
                raise ValueError(
                    f"{path}:{lineno}: access-log line missing "
                    f"fields: {', '.join(missing)}"
                )
            for key in _OPTIONAL_FIELDS:
                record.setdefault(key, None)
            yield record
