"""Structured JSONL access log for the serving layer.

One line per finished request, written after the response is sent so
logging never adds latency a client can see. The schema is flat and
stable — every key is present on every line (``null`` when not
applicable) so downstream `jq`/pandas never branch on key presence:

``ts``
    Unix wall-clock seconds at completion (float).
``request_id``
    The ``X-Request-Id`` that was echoed to the client — the join key
    against trace spans and error envelopes.
``method`` / ``path`` / ``status``
    The HTTP basics. ``path`` excludes the query string (it can carry
    user text; the trace span keeps the query when sampled).
``seconds``
    Wall latency of the handler.
``cached``
    True/False for query requests, ``null`` for everything else.
``code``
    Machine-readable error code for non-2xx (``null`` on success) —
    the same vocabulary as :func:`repro.serve.schema.error_response`.
``client``
    Peer address, ``null`` if unknown.
``generation``
    Snapshot generation that answered the request.

Writes go through the binary file's thread-safe buffer and are
durably flushed every ``flush_every`` lines; the server closes the
log after the SIGTERM drain, so the file is complete when the process
exits cleanly.
"""

from __future__ import annotations

import itertools
import json
import re
import threading
import time
from pathlib import Path
from typing import Any, Iterator

#: Flush after this many buffered lines (and always on close).
DEFAULT_FLUSH_EVERY = 64

#: Strings that serialize as ``"<text>"`` with no escaping. The write
#: path is hot (one line per served request), and request ids, method
#: names, and paths virtually always match, so the common case skips
#: :func:`json.dumps` entirely.
_PLAIN = re.compile(r'^[^"\\\x00-\x1f]*$')


def _json_str(value: str | None) -> str:
    if value is None:
        return "null"
    if _PLAIN.match(value):
        return f'"{value}"'
    return json.dumps(value)


def _json_bool(value: bool | None) -> str:
    if value is None:
        return "null"
    return "true" if value else "false"


#: One %-format template per line: measurably cheaper than f-string
#: assembly with repr()ed floats, and the fixed 6-decimal places are
#: exactly the documented ts/seconds precision.
_LINE_TEMPLATE = (
    '{"ts": %.6f, "request_id": %s, "method": %s, "path": %s, '
    '"status": %d, "seconds": %.6f, "cached": %s, "code": %s, '
    '"client": %s, "generation": %s}\n'
)

#: Every record carries exactly these keys, in this order.
ACCESS_LOG_FIELDS = (
    "ts",
    "request_id",
    "method",
    "path",
    "status",
    "seconds",
    "cached",
    "code",
    "client",
    "generation",
)


class AccessLog:
    """Append-only JSONL access log with thread-safe buffered writes."""

    def __init__(
        self,
        path: str | Path,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        clock: Any = time.time,
    ) -> None:
        if flush_every < 1:
            raise ValueError(
                f"flush_every must be >= 1, got {flush_every}"
            )
        self.path = Path(path)
        self.flush_every = int(flush_every)
        self._clock = clock
        # The hot path takes no Python-level lock: the file is opened
        # in binary append mode, whose BufferedWriter serializes
        # whole-bytes writes internally (in C, far cheaper under
        # thread contention than threading.Lock), and the flush
        # cadence counts on the atomic itertools.count. The Python
        # lock below only coordinates close() with stragglers.
        self._lock = threading.Lock()
        self._writes = itertools.count(1)
        self._closed = False
        self._handle = self.path.open("ab")

    def write(
        self,
        *,
        request_id: str | None,
        method: str,
        path: str,
        status: int,
        seconds: float,
        cached: bool | None = None,
        code: str | None = None,
        client: str | None = None,
        generation: int | None = None,
    ) -> None:
        # Hand-rolled serialization (validated against json.loads in
        # the tests): json.dumps on a 10-key dict costs more than the
        # rest of the request's telemetry combined.
        line = _LINE_TEMPLATE % (
            self._clock(),
            _json_str(request_id),
            _json_str(method),
            _json_str(path),
            status,
            seconds,
            _json_bool(cached),
            _json_str(code),
            _json_str(client),
            "null" if generation is None else int(generation),
        )
        if self._closed:
            return
        try:
            self._handle.write(line.encode("utf-8"))
            if next(self._writes) % self.flush_every == 0:
                self._handle.flush()
        except ValueError:
            # The log was closed under us mid-write (server
            # shutdown); the line is dropped, same as after close.
            return

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "AccessLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_access_log(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield parsed access-log records; raise on malformed lines.

    Strictness is deliberate: the access log is written by exactly one
    process through :class:`AccessLog`, so a bad line means data loss
    worth surfacing, not noise worth skipping.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{lineno}: malformed access-log line: "
                    f"{error}"
                ) from error
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{lineno}: access-log line is not an "
                    "object"
                )
            missing = [
                key for key in ACCESS_LOG_FIELDS if key not in record
            ]
            if missing:
                raise ValueError(
                    f"{path}:{lineno}: access-log line missing "
                    f"fields: {', '.join(missing)}"
                )
            yield record
