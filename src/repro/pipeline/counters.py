"""Stage counters and timers for the pipeline.

The paper reports per-stage wall times and record counts for the
5000-node run (Section 7.1); this module provides the accounting
objects our single-machine executor uses to produce the same report
shape.

Counters are process-pool safe by *merging*, not by sharing: a worker
process bumps its own :class:`StageMetrics` and ships it back with the
shard result; the parent folds it in with :meth:`StageMetrics.merge`
(see ``SurveyorPipeline._extract``). Before this existed, counters
bumped inside process-pool workers were silently dropped.

When the owning :class:`PipelineMetrics` carries a tracer (duck-typed;
see :class:`repro.obs.trace.Tracer`), each :meth:`PipelineMetrics.timed`
stage also opens a ``stage`` span, so the trace and the counter report
agree on stage boundaries.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field

from .resilience import PipelineHealth


@dataclass
class StageMetrics:
    """Wall time, record counters, and (opt-in) memory for one stage."""

    name: str
    wall_seconds: float = 0.0
    counters: Counter = field(default_factory=Counter)
    #: Process peak RSS observed at stage close, bytes; 0 unless the
    #: run profiles memory (``--profile-mem``).
    peak_rss_bytes: int = 0

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] += amount

    def merge(self, other: "StageMetrics") -> None:
        """Fold a worker-side stage's accounting into this one."""
        self.wall_seconds += other.wall_seconds
        self.counters.update(other.counters)
        self.peak_rss_bytes = max(
            self.peak_rss_bytes, other.peak_rss_bytes
        )

    def report(self) -> str:
        parts = [f"{self.name}: {self.wall_seconds:.2f}s"]
        if self.peak_rss_bytes:
            from ..obs.perf import format_bytes

            parts.append(f"rss={format_bytes(self.peak_rss_bytes)}")
        for key in sorted(self.counters):
            parts.append(f"{key}={self.counters[key]}")
        return "  ".join(parts)


@dataclass
class PipelineMetrics:
    """Metrics for a full pipeline run, stage by stage.

    ``health`` is the run's resilience ledger: the executor records
    retries, skipped shards, and quarantined documents here so the
    report can show how degraded (or not) the run was. ``tracer`` is
    an optional span tracer (anything with a ``span(name, **attrs)``
    context manager); stage timings then double as ``stage`` spans.
    """

    stages: dict[str, StageMetrics] = field(default_factory=dict)
    health: PipelineHealth = field(default_factory=PipelineHealth)
    tracer: object | None = field(default=None, repr=False)

    def stage(self, name: str) -> StageMetrics:
        if name not in self.stages:
            self.stages[name] = StageMetrics(name=name)
        return self.stages[name]

    @contextmanager
    def timed(self, name: str):
        """Time a stage body; accumulates across repeated entries.

        Exception-safe: a body that raises still records its elapsed
        wall time, bumps an ``errors.<ExceptionType>`` counter on the
        stage, and — when tracing — leaves the stage span tagged
        ``status="error"`` (the tracer does that on unwind). Partial
        timings are therefore never lost mid-retry.
        """
        metrics = self.stage(name)
        span_cm = (
            self.tracer.span(name, kind="stage")
            if self.tracer is not None
            else nullcontext()
        )
        profiling = bool(
            getattr(self.tracer, "profile_memory", False)
        )
        started = time.perf_counter()
        try:
            with span_cm:
                yield metrics
        except BaseException as error:
            metrics.bump(f"errors.{type(error).__name__}")
            raise
        finally:
            metrics.wall_seconds += time.perf_counter() - started
            if profiling:
                from ..obs.perf import rss_peak_bytes

                metrics.peak_rss_bytes = max(
                    metrics.peak_rss_bytes, rss_peak_bytes()
                )

    @property
    def total_seconds(self) -> float:
        return sum(stage.wall_seconds for stage in self.stages.values())

    def report(self) -> str:
        lines = [stage.report() for stage in self.stages.values()]
        lines.append(f"total: {self.total_seconds:.2f}s")
        return "\n".join(lines)
