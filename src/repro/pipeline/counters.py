"""Stage counters and timers for the pipeline.

The paper reports per-stage wall times and record counts for the
5000-node run (Section 7.1); this module provides the accounting
objects our single-machine executor uses to produce the same report
shape.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field

from .resilience import PipelineHealth


@dataclass
class StageMetrics:
    """Wall time and record counters for one pipeline stage."""

    name: str
    wall_seconds: float = 0.0
    counters: Counter = field(default_factory=Counter)

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] += amount

    def report(self) -> str:
        parts = [f"{self.name}: {self.wall_seconds:.2f}s"]
        for key in sorted(self.counters):
            parts.append(f"{key}={self.counters[key]}")
        return "  ".join(parts)


@dataclass
class PipelineMetrics:
    """Metrics for a full pipeline run, stage by stage.

    ``health`` is the run's resilience ledger: the executor records
    retries, skipped shards, and quarantined documents here so the
    report can show how degraded (or not) the run was.
    """

    stages: dict[str, StageMetrics] = field(default_factory=dict)
    health: PipelineHealth = field(default_factory=PipelineHealth)

    def stage(self, name: str) -> StageMetrics:
        if name not in self.stages:
            self.stages[name] = StageMetrics(name=name)
        return self.stages[name]

    @contextmanager
    def timed(self, name: str):
        """Time a stage body; accumulates across repeated entries."""
        metrics = self.stage(name)
        started = time.perf_counter()
        try:
            yield metrics
        finally:
            metrics.wall_seconds += time.perf_counter() - started

    @property
    def total_seconds(self) -> float:
        return sum(stage.wall_seconds for stage in self.stages.values())

    def report(self) -> str:
        lines = [stage.report() for stage in self.stages.values()]
        lines.append(f"total: {self.total_seconds:.2f}s")
        return "\n".join(lines)
