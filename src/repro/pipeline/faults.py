"""Deterministic fault injection for the pipeline runtime.

Proving the resilience layer works requires failures on demand. The
:class:`FaultInjector` plugs into :class:`~repro.pipeline.runner.
SurveyorPipeline` and produces the failure modes a real cluster sees,
deterministically:

* **fail-every-Nth-doc** — roughly one in N documents raises during
  annotation (selection is a seeded hash of the doc id, so the failing
  set is identical run to run and independent of execution order);
* **poison-shard** — a shard that fails on every attempt, exercising
  retry exhaustion and shard skipping;
* **slow-shard** — a shard that sleeps before mapping, exercising
  per-shard timeouts;
* **flaky-then-succeed** — a shard that fails its first attempt(s) and
  then succeeds, exercising the retry path end to end.

The flaky decision is a pure function of the *attempt number* the
runner threads through the task (``on_shard_start(shard_id,
attempt=n)``), so all three executors — including ``process``, whose
workers hold pickled copies of this injector and share no memory —
behave identically. When a legacy caller omits the attempt, an
in-memory per-shard counter supplies it (correct for ``serial`` and
``thread`` only).
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field

from ..core.errors import ExtractionError


class InjectedFault(ExtractionError):
    """Raised by the fault injector; quarantined like organic failures."""


@dataclass
class FaultInjector:
    """Seeded, deterministic failure source for resilience tests."""

    seed: int = 0
    fail_every_nth: int = 0
    poison_shards: tuple[int, ...] = ()
    slow_shards: tuple[int, ...] = ()
    slow_seconds: float = 0.05
    flaky_shards: tuple[int, ...] = ()
    flaky_failures: int = 1
    _attempts: dict[int, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False,
        compare=False,
    )

    def __getstate__(self):
        state = {
            name: getattr(self, name)
            for name in (
                "seed", "fail_every_nth", "poison_shards", "slow_shards",
                "slow_seconds", "flaky_shards", "flaky_failures",
                "_attempts",
            )
        }
        return state

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Selection rules (pure, so tests can predict the injected set)
    # ------------------------------------------------------------------
    def should_fail_document(self, doc_id: str) -> bool:
        """Whether the every-Nth mode fails this document."""
        if self.fail_every_nth <= 0:
            return False
        digest = zlib.crc32(f"{self.seed}:{doc_id}".encode())
        return digest % self.fail_every_nth == 0

    # ------------------------------------------------------------------
    # Hooks called by the pipeline mapper
    # ------------------------------------------------------------------
    def on_shard_start(
        self, shard_id: int, attempt: int | None = None
    ) -> None:
        """Shard-level faults; called once per shard attempt.

        ``attempt`` is the 1-based attempt number the runner threads
        through the task; with it the flaky decision is stateless
        (``attempt <= flaky_failures`` fails), so it holds across
        process boundaries. Without it (legacy callers) an in-memory
        counter stands in — correct only when every attempt sees this
        same injector object.
        """
        if shard_id in self.slow_shards and self.slow_seconds > 0:
            time.sleep(self.slow_seconds)
        if shard_id in self.poison_shards:
            raise InjectedFault(f"poisoned shard {shard_id}")
        if shard_id in self.flaky_shards:
            if attempt is None:
                with self._lock:
                    attempt = self._attempts.get(shard_id, 0) + 1
                    self._attempts[shard_id] = attempt
            if attempt <= self.flaky_failures:
                raise InjectedFault(
                    f"flaky shard {shard_id}, attempt {attempt}"
                )

    def on_document(self, doc_id: str) -> None:
        """Document-level faults; called once per document."""
        if self.should_fail_document(doc_id):
            raise InjectedFault(f"injected document fault: {doc_id}")
