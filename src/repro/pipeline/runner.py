"""The full Surveyor pipeline: corpus in, opinion table out.

Mirrors the four stages the paper times in Section 7.1:

1. **extract** — shard the snapshot, annotate and pattern-match each
   shard (the map side), merge the per-shard evidence counters (the
   reduce side);
2. **kb** — pull entities with their most notable types from the
   knowledge base;
3. **group** — join evidence with the KB and group by property-type
   combination, applying the occurrence threshold ``rho``;
4. **em** — fit the user-behaviour model per combination and emit
   dominant opinions for every entity of each type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.em import EMLearner
from ..core.surveyor import (
    DEFAULT_OCCURRENCE_THRESHOLD,
    Surveyor,
    SurveyorResult,
)
from ..corpus.document import Document, WebCorpus
from ..extraction.extractor import EvidenceExtractor
from ..extraction.patterns import DEFAULT_PATTERNS, PatternConfig
from ..extraction.statement import EvidenceCounter
from ..kb.knowledge_base import KnowledgeBase
from ..nlp.annotate import Annotator
from .counters import PipelineMetrics
from .mapreduce import MapReduceJob


@dataclass
class PipelineReport:
    """Everything a pipeline run produced."""

    result: SurveyorResult
    evidence: EvidenceCounter
    metrics: PipelineMetrics

    @property
    def opinions(self):
        return self.result.opinions

    def summary(self) -> str:
        lines = [
            self.metrics.report(),
            f"evidence statements: {self.evidence.n_statements}",
            f"entity-property pairs with evidence: {self.evidence.n_pairs}",
            f"property-type combinations fit: {len(self.result.fits)}",
            f"combinations below threshold: {len(self.result.skipped)}",
            f"opinions emitted: {len(self.result.opinions)}",
        ]
        return "\n".join(lines)


@dataclass
class SurveyorPipeline:
    """End-to-end runner configured like the paper's deployment."""

    kb: KnowledgeBase
    pattern_config: PatternConfig = DEFAULT_PATTERNS
    occurrence_threshold: int = DEFAULT_OCCURRENCE_THRESHOLD
    n_workers: int = 4
    parallel: bool = False
    executor: str = "serial"
    learner: EMLearner = field(default_factory=EMLearner)

    def run(self, corpus: WebCorpus) -> PipelineReport:
        """Process a corpus end to end."""
        metrics = PipelineMetrics()
        evidence = self._extract(corpus, metrics)
        with metrics.timed("kb") as stage:
            catalog = self.kb
            stats = catalog.stats()
            for key, value in stats.items():
                stage.bump(key, value)
        with metrics.timed("group") as stage:
            grouped = evidence.as_evidence()
            stage.bump("pairs", evidence.n_pairs)
            stage.bump("combinations", len(grouped))
        with metrics.timed("em") as stage:
            surveyor = Surveyor(
                catalog=catalog,
                occurrence_threshold=self.occurrence_threshold,
                learner=self.learner,
            )
            result = surveyor.run(grouped)
            stage.bump("fits", len(result.fits))
            stage.bump("opinions", len(result.opinions))
        return PipelineReport(
            result=result, evidence=evidence, metrics=metrics
        )

    # ------------------------------------------------------------------
    # Extraction stage
    # ------------------------------------------------------------------
    def _extract(
        self, corpus: WebCorpus, metrics: PipelineMetrics
    ) -> EvidenceCounter:
        job: MapReduceJob[Document, EvidenceCounter, EvidenceCounter] = (
            MapReduceJob(
                mapper=self._map_shard,
                reducer=_merge_counters,
                n_workers=self.n_workers,
                executor=self.executor,
                parallel=self.parallel,
            )
        )
        shards = [
            list(shard.documents)
            for shard in corpus.shards(self.n_workers)
        ]
        evidence = job.run(shards, metrics)
        metrics.stage("map").bump("statements", evidence.n_statements)
        return evidence

    def _map_shard(self, shard: Sequence[Document]) -> EvidenceCounter:
        """One worker: annotate and extract a shard of documents.

        Each worker builds its own annotator/extractor (workers share
        nothing, as on a real cluster) and returns a per-shard
        evidence counter — the combine step of the dataflow.
        """
        annotator = Annotator(self.kb)
        extractor = EvidenceExtractor(config=self.pattern_config)
        counter = EvidenceCounter()
        for document in shard:
            annotated = annotator.annotate(document.doc_id, document.text)
            counter.add_all(extractor.extract_document(annotated))
        return counter


def _merge_counters(
    partials: Sequence[EvidenceCounter],
) -> EvidenceCounter:
    merged = EvidenceCounter()
    for partial in partials:
        merged.merge(partial)
    return merged
