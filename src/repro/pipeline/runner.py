"""The full Surveyor pipeline: corpus in, opinion table out.

Mirrors the four stages the paper times in Section 7.1:

1. **extract** — shard the snapshot, annotate and pattern-match each
   shard (the map side), merge the per-shard evidence counters (the
   reduce side);
2. **kb** — pull entities with their most notable types from the
   knowledge base;
3. **group** — join evidence with the KB and group by property-type
   combination, applying the occurrence threshold ``rho``;
4. **em** — fit the user-behaviour model per combination and emit
   dominant opinions for every entity of each type.

The extraction stage runs under the fault-tolerant runtime: a document
whose annotation or extraction raises is quarantined into a dead-letter
record instead of killing its shard, a shard that fails after all
retries is skipped (the run continues on the survivors), and — with a
``checkpoint_dir`` — each completed shard's evidence is persisted so an
interrupted run resumes without recomputing finished shards. ``strict``
restores the historical fail-fast behaviour. All of it is accounted in
the report's health section.

The runner is also the observability seam. With a ``tracer`` the run
produces a span tree (run → stage → shard → document for extraction;
run → stage → combination → em-iteration for interpretation); worker
processes trace themselves and their spans are adopted back into the
parent's tree. With a ``registry`` the run fills the metric catalogue
(see :mod:`repro.obs.metrics`). Worker-side counters are *always*
collected and merged — they ride back with each shard's result — so
process-pool runs report the same numbers as serial ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..core.em import EMLearner
from ..core.errors import CheckpointError, ParityError
from ..core.surveyor import (
    DEFAULT_OCCURRENCE_THRESHOLD,
    Surveyor,
    SurveyorResult,
)
from ..corpus.document import CorpusShard, WebCorpus
from ..extraction.extractor import EvidenceExtractor
from ..extraction.patterns import DEFAULT_PATTERNS, PatternConfig
from ..extraction.provenance import (
    ProvenanceIndex,
    ProvenanceLedger,
    provenance_default,
)
from ..extraction.statement import EvidenceCounter
from ..kb.knowledge_base import KnowledgeBase
from ..nlp.annotate import Annotator
from ..nlp.prefilter import (
    DEFAULT_MEMO_SIZE,
    SentencePrefilter,
    fast_path_default,
    strict_parity_default,
)
from ..obs.convergence import (
    CONVERGENCE_BASENAME,
    ConvergenceRecord,
    records_from_result,
    save_convergence,
)
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..storage.serialize import (
    load_shard_checkpoint,
    save_shard_checkpoint,
)
from .counters import PipelineMetrics, StageMetrics
from .faults import FaultInjector
from .mapreduce import MapReduceJob
from .resilience import (
    DEFAULT_RETRY_POLICY,
    NO_RETRY,
    DeadLetter,
    PipelineHealth,
    RetryPolicy,
    ShardEvidence,
    WorkerTelemetry,
)


@dataclass
class PipelineReport:
    """Everything a pipeline run produced."""

    result: SurveyorResult
    evidence: EvidenceCounter
    metrics: PipelineMetrics
    convergence: list[ConvergenceRecord] = field(default_factory=list)
    #: Evidence lineage for the run — each pair's exact statement
    #: totals, bounded samples, and links to its combination's fit
    #: and convergence verdict. ``None`` when capture was disabled.
    provenance: ProvenanceIndex | None = None

    @property
    def opinions(self):
        return self.result.opinions

    @property
    def health(self) -> PipelineHealth:
        return self.metrics.health

    def summary(self) -> str:
        lines = [
            self.metrics.report(),
            f"evidence statements: {self.evidence.n_statements}",
            f"entity-property pairs with evidence: {self.evidence.n_pairs}",
            f"property-type combinations fit: {len(self.result.fits)}",
            f"combinations below threshold: {len(self.result.skipped)}",
            f"opinions emitted: {len(self.result.opinions)}",
            self.health.report(),
        ]
        return "\n".join(lines)


@dataclass
class SurveyorPipeline:
    """End-to-end runner configured like the paper's deployment.

    Resilience knobs
    ----------------
    retry_policy:
        Per-shard retry configuration (defaults to three attempts with
        short seeded backoff).
    shard_timeout:
        Wall-clock budget per shard attempt; enforced on the pooled
        executors.
    strict:
        Fail fast: per-document exceptions propagate and a failed
        shard aborts the run, as before the resilience layer existed.
    checkpoint_dir:
        Run directory for shard-level checkpoints. A rerun pointing at
        the same directory (with the same corpus and ``n_workers``)
        resumes, loading completed shards instead of re-mapping them.
    fault_injector:
        Deterministic failure source for resilience testing; see
        :mod:`repro.pipeline.faults`.

    Fast-path knobs
    ---------------
    fast_path:
        Run extraction through the prefilter+memo fast path
        (:mod:`repro.nlp.prefilter`). ``None`` defers to
        ``REPRO_FAST_PATH`` (default on); output is bit-identical to
        the reference path either way. The prefilter automaton is
        compiled once in the parent and shipped to workers with the
        pickled pipeline — once per shard, never per document.
    provenance:
        Capture bounded-sample evidence lineage per (entity,
        property) pair during extraction (see
        :mod:`repro.extraction.provenance`). ``None`` defers to
        ``REPRO_PROVENANCE`` (default on). Ledgers ride back on each
        shard's result, persist into shard checkpoints, and merge in
        shard order; the report links the merged ledger to the run's
        fits and convergence records as a
        :class:`~repro.extraction.provenance.ProvenanceIndex`.
    strict_parity:
        Map every shard through *both* paths and raise
        :class:`~repro.core.errors.ParityError` on any divergence in
        statements, evidence counts, or linker/extraction statistics.
        ``None`` defers to ``REPRO_STRICT_PARITY`` (default off). Used
        by CI and the differential tests; roughly doubles map cost.
        Parity runs are fail-fast at the shard level (no retries, no
        shard skipping): a divergence is deterministic, so resilience
        machinery would only bury it.
    annotation_memo_size:
        Bound on memoized sentences per shard worker.

    Observability knobs
    -------------------
    tracer:
        Span tracer for the run; disabled (or ``None``) costs nothing
        on the hot path. Worker processes build their own tracers and
        their spans are re-parented under the ``map`` stage span.
    registry:
        Metrics registry to fill (counters, gauges, histograms from
        the declared catalogue). Convergence records are written next
        to the shard checkpoints when ``checkpoint_dir`` is set.
    """

    kb: KnowledgeBase
    pattern_config: PatternConfig = DEFAULT_PATTERNS
    occurrence_threshold: int = DEFAULT_OCCURRENCE_THRESHOLD
    n_workers: int = 4
    parallel: bool = False
    executor: str = "serial"
    learner: EMLearner = field(default_factory=EMLearner)
    retry_policy: RetryPolicy | None = None
    shard_timeout: float | None = None
    strict: bool = False
    checkpoint_dir: str | Path | None = None
    fault_injector: FaultInjector | None = None
    tracer: Tracer | None = None
    registry: MetricsRegistry | None = None
    fast_path: bool | None = None
    strict_parity: bool | None = None
    provenance: bool | None = None
    annotation_memo_size: int = DEFAULT_MEMO_SIZE
    _prefilter: SentencePrefilter | None = field(
        init=False, default=None, repr=False
    )

    @property
    def _fast(self) -> bool:
        if self.fast_path is None:
            return fast_path_default()
        return self.fast_path

    @property
    def _parity(self) -> bool:
        if self.strict_parity is None:
            return strict_parity_default()
        return self.strict_parity

    @property
    def _provenance(self) -> bool:
        if self.provenance is None:
            return provenance_default()
        return self.provenance

    @property
    def _tracing(self) -> bool:
        return self.tracer is not None and self.tracer.enabled

    @property
    def _telemetry(self) -> bool:
        return self._tracing or self.registry is not None

    def run(self, corpus: WebCorpus) -> PipelineReport:
        """Process a corpus end to end."""
        started = time.perf_counter()
        metrics = PipelineMetrics(tracer=self.tracer)
        if self._tracing:
            with self.tracer.span(
                "run",
                kind="run",
                documents=len(corpus),
                n_workers=self.n_workers,
                executor=self.executor,
            ) as span:
                report = self._run_stages(corpus, metrics)
                span.set("opinions", len(report.result.opinions))
                span.set("healthy", report.health.healthy)
        else:
            report = self._run_stages(corpus, metrics)
        if self.registry is not None:
            self.registry.set_gauge(
                "repro_run_wall_seconds",
                time.perf_counter() - started,
            )
        return report

    def _run_stages(
        self, corpus: WebCorpus, metrics: PipelineMetrics
    ) -> PipelineReport:
        registry = self.registry
        evidence, ledger = self._extract(corpus, metrics)
        with metrics.timed("kb") as stage:
            catalog = self.kb
            stats = catalog.stats()
            for key, value in stats.items():
                stage.bump(key, value)
            if registry is not None:
                registry.set_gauge(
                    "repro_kb_entities", stats.get("entities", 0)
                )
        with metrics.timed("group") as stage:
            grouped = evidence.as_evidence()
            stage.bump("pairs", evidence.n_pairs)
            stage.bump("combinations", len(grouped))
            if registry is not None:
                for per_entity in grouped.values():
                    for counts in per_entity.values():
                        registry.observe(
                            "repro_evidence_positive_magnitude",
                            counts.positive,
                        )
                        registry.observe(
                            "repro_evidence_negative_magnitude",
                            counts.negative,
                        )
        with metrics.timed("em") as stage:
            surveyor = Surveyor(
                catalog=catalog,
                occurrence_threshold=self.occurrence_threshold,
                learner=self._telemetry_learner(),
                tracer=self.tracer if self._tracing else None,
            )
            result = surveyor.run(grouped)
            stage.bump("fits", len(result.fits))
            stage.bump("opinions", len(result.opinions))
            metrics.health.degraded_combinations.extend(
                str(key) for key in result.degraded
            )
        # Convergence records stay a telemetry artefact on the report,
        # but lineage always links each pair to its combination's
        # verdict, so an untraced mine still explains its answers.
        records = (
            records_from_result(result)
            if self._telemetry or ledger is not None
            else []
        )
        convergence = records if self._telemetry else []
        if registry is not None:
            registry.inc("repro_em_fits_total", len(result.fits))
            registry.inc(
                "repro_em_degraded_total", len(result.degraded)
            )
            registry.inc(
                "repro_combinations_skipped_total",
                len(result.skipped),
            )
            registry.inc(
                "repro_opinions_total", len(result.opinions)
            )
            for fit in result.fits.values():
                registry.observe(
                    "repro_em_iterations", fit.trace.iterations
                )
        if convergence and self.checkpoint_dir is not None:
            save_convergence(
                convergence,
                Path(self.checkpoint_dir) / CONVERGENCE_BASENAME,
            )
        lineage = (
            ProvenanceIndex.from_run(ledger, result, records)
            if ledger is not None
            else None
        )
        return PipelineReport(
            result=result,
            evidence=evidence,
            metrics=metrics,
            convergence=convergence,
            provenance=lineage,
        )

    def _telemetry_learner(self) -> EMLearner:
        """The configured learner, upgraded for telemetry when needed.

        Trajectory recording and iteration spans are opt-in on the
        learner; a traced run turns them on without mutating the
        caller's learner instance.
        """
        learner = self.learner
        if self._telemetry and not learner.record_path:
            learner = replace(learner, record_path=True)
        if self._tracing and learner.tracer is None:
            learner = replace(learner, tracer=self.tracer)
        return learner

    # ------------------------------------------------------------------
    # Extraction stage
    # ------------------------------------------------------------------
    def _extract(
        self, corpus: WebCorpus, metrics: PipelineMetrics
    ) -> tuple[EvidenceCounter, ProvenanceLedger | None]:
        health = metrics.health
        registry = self.registry
        if self._fast and self._prefilter is None:
            # Compiled once here in the parent; workers receive it with
            # the pickled pipeline — per shard, never per document.
            self._prefilter = SentencePrefilter.from_kb(self.kb)
        shards = corpus.shards(self.n_workers)
        run_dir = (
            Path(self.checkpoint_dir)
            if self.checkpoint_dir is not None
            else None
        )

        resumed: list[ShardEvidence] = []
        pending: list[CorpusShard] = []
        if run_dir is not None:
            run_dir.mkdir(parents=True, exist_ok=True)
            for shard in shards:
                loaded = self._load_checkpoint(
                    run_dir, shard.shard_id, health
                )
                if loaded is not None:
                    resumed.append(loaded)
                else:
                    pending.append(shard)
        else:
            pending = list(shards)

        def observe_shard(
            shard_id: int, seconds: float, attempts: int
        ) -> None:
            metrics.stage("map").bump("shard_attempts", attempts)
            if registry is not None:
                registry.observe("repro_shard_seconds", seconds)

        fresh: list[ShardEvidence] = []
        if pending:
            job: MapReduceJob[
                CorpusShard, ShardEvidence, list[ShardEvidence]
            ] = MapReduceJob(
                mapper=self._map_shard,
                reducer=list,
                n_workers=self.n_workers,
                executor=self.executor,
                parallel=self.parallel,
                # Parity runs are fail-fast like strict ones: a
                # ParityError is deterministic, so retrying the shard
                # or skipping it would bury a soundness violation.
                retry_policy=self.retry_policy
                or (
                    NO_RETRY
                    if self.strict or self._parity
                    else DEFAULT_RETRY_POLICY
                ),
                shard_timeout=self.shard_timeout,
                skip_failed_shards=not (self.strict or self._parity),
                shard_observer=observe_shard,
                pass_attempt=True,
            )
            fresh = job.run(pending, metrics)
            if run_dir is not None:
                health.checkpointed_shards += len(fresh)

        map_span_id = (
            self.tracer.last_span_id("map", kind="stage")
            if self._tracing
            else None
        )
        evidence = EvidenceCounter()
        ledger = ProvenanceLedger() if self._provenance else None
        map_stage = metrics.stage("map")
        for part in sorted(
            [*resumed, *fresh], key=lambda p: p.shard_id
        ):
            evidence.merge(part.counter)
            if ledger is not None and part.provenance is not None:
                ledger.merge(part.provenance)
            health.record_quarantine(part.dead_letters)
            if part.telemetry is not None and part.telemetry.prefilter:
                health.record_prefilter(part.telemetry.prefilter)
            self._merge_telemetry(
                part.telemetry, map_stage, map_span_id
            )
        map_stage.bump("statements", evidence.n_statements)
        if registry is not None:
            counters = map_stage.counters
            registry.inc(
                "repro_statements_total", evidence.n_statements
            )
            registry.inc(
                "repro_documents_total", counters.get("documents", 0)
            )
            registry.inc(
                "repro_sentences_total", counters.get("sentences", 0)
            )
            registry.inc(
                "repro_mentions_total", counters.get("mentions", 0)
            )
            registry.inc(
                "repro_statements_positive_total",
                counters.get("statements_positive", 0),
            )
            registry.inc(
                "repro_statements_negative_total",
                counters.get("statements_negative", 0),
            )
            registry.inc(
                "repro_shards_total", counters.get("shards", 0)
            )
            registry.inc("repro_shard_retries_total", health.retries)
            registry.inc(
                "repro_quarantined_documents_total",
                len(health.quarantined),
            )
            registry.inc(
                "repro_prefilter_sentences_total",
                health.prefilter_sentences,
            )
            registry.inc(
                "repro_prefilter_skipped_total",
                health.prefilter_skipped,
            )
            registry.inc(
                "repro_annotation_memo_hits_total", health.memo_hits
            )
            registry.inc(
                "repro_annotation_memo_misses_total",
                health.memo_misses,
            )
            registry.inc(
                "repro_annotation_memo_evictions_total",
                health.memo_evictions,
            )
        if ledger is not None:
            # Samples came from the ledgers; the exact per-pair
            # totals come from the merged counter in one pass, so the
            # per-statement extraction hot path never counts twice.
            ledger.seed_totals(evidence)
        return evidence, ledger

    def _merge_telemetry(
        self,
        telemetry: WorkerTelemetry | None,
        map_stage: StageMetrics,
        map_span_id: int | None,
    ) -> None:
        """Fold one worker's shipped-back telemetry into the parent.

        This closes the process-pool counter hole: worker-side bumps
        and histogram observations arrive here as data, and worker
        spans are re-parented under the parent's ``map`` stage span.
        """
        if telemetry is None:
            return
        for name, amount in sorted(telemetry.counters.items()):
            map_stage.bump(name, amount)
        if self.registry is not None:
            for name, value in telemetry.observations:
                self.registry.observe(name, value)
        if self._tracing and telemetry.spans:
            self.tracer.adopt(
                list(telemetry.spans), parent_id=map_span_id
            )

    def _map_shard(
        self, shard: CorpusShard, attempt: int = 1
    ) -> ShardEvidence:
        """One worker: annotate and extract a shard of documents.

        Each worker builds its own annotator/extractor (workers share
        nothing, as on a real cluster) and returns a per-shard
        evidence counter — the combine step of the dataflow. A
        document that raises is quarantined as a dead letter unless
        the pipeline is strict; shard-level failures propagate to the
        executor's retry loop. On success the shard checkpoints its
        own output, so a later resume skips it.

        ``attempt`` is the executor's 1-based attempt number
        (``pass_attempt=True`` on the job); the fault injector needs
        it to make flaky-then-succeed decisions that survive the
        ``process`` executor's memory isolation.

        The worker also traces itself (shard and document spans) and
        counts its work; both ride back on the returned
        :class:`ShardEvidence` as :class:`WorkerTelemetry`, because a
        worker process cannot reach the parent's tracer or registry.
        """
        injector = self.fault_injector
        if injector is not None:
            injector.on_shard_start(shard.shard_id, attempt)
        fast = self._fast
        annotator = Annotator(
            self.kb,
            fast_path=fast,
            prefilter=self._prefilter if fast else None,
            memo_size=self.annotation_memo_size,
        )
        extractor = EvidenceExtractor(
            config=self.pattern_config,
            provenance=(
                ProvenanceLedger() if self._provenance else None
            ),
        )
        parity = self._parity
        if parity:
            # The reference extractor gets no ledger: lineage is not
            # part of the statement-equality contract, and a second
            # ledger would double-record every pair.
            ref_annotator = Annotator(self.kb, fast_path=False)
            ref_extractor = EvidenceExtractor(
                config=self.pattern_config
            )
            ref_counter = EvidenceCounter()
        # Workers profile memory iff the parent does: spans shipped
        # back then carry rss/tracemalloc attrs like local ones.
        worker_tracer = Tracer(
            enabled=self._tracing,
            profile_memory=getattr(
                self.tracer, "profile_memory", False
            ),
        )
        observations: list[tuple[str, float]] = []
        counter = EvidenceCounter()
        dead: list[DeadLetter] = []
        with worker_tracer.span(
            "shard", kind="shard", shard_id=shard.shard_id
        ) as shard_span:
            for document in shard:
                stage = "annotate"
                statements = []
                doc_started = time.perf_counter()
                try:
                    with worker_tracer.span(
                        "document",
                        kind="document",
                        doc_id=document.doc_id,
                    ) as doc_span:
                        if injector is not None:
                            stage = "inject"
                            injector.on_document(document.doc_id)
                            stage = "annotate"
                        annotated = annotator.annotate(
                            document.doc_id, document.text
                        )
                        stage = "extract"
                        statements = extractor.extract_document(
                            annotated
                        )
                        doc_span.set("statements", len(statements))
                        doc_span.set(
                            "sentences", len(annotated.sentences)
                        )
                except Exception as error:
                    if self.strict:
                        raise
                    dead.append(
                        DeadLetter.from_exception(
                            document.doc_id, stage, error,
                            text=str(document.text),
                        )
                    )
                    observations.append((
                        "repro_document_seconds",
                        time.perf_counter() - doc_started,
                    ))
                    continue
                if parity:
                    ref_statements = ref_extractor.extract_document(
                        ref_annotator.annotate(
                            document.doc_id, document.text
                        )
                    )
                    if ref_statements != statements:
                        raise ParityError(
                            "fast path diverged from reference on "
                            f"document {document.doc_id!r}: "
                            f"{len(statements)} vs "
                            f"{len(ref_statements)} statements"
                        )
                    ref_counter.add_all(ref_statements)
                counter.add_all(statements)
                observations.append((
                    "repro_document_seconds",
                    time.perf_counter() - doc_started,
                ))
                observations.append((
                    "repro_statements_per_document",
                    float(len(statements)),
                ))
                observations.append((
                    "repro_sentences_per_document",
                    float(len(annotated.sentences)),
                ))
            shard_span.set("documents", extractor.stats.documents)
            shard_span.set("quarantined", len(dead))
            fastpath = annotator.fastpath_stats
            if fastpath is not None:
                shard_span.set(
                    "prefilter",
                    {
                        **fastpath.as_counters(),
                        "skip_rate": round(fastpath.skip_rate, 4),
                    },
                )
        if parity:
            if ref_counter != counter:
                raise ParityError(
                    f"shard {shard.shard_id}: evidence counters "
                    "diverged between fast and reference paths"
                )
            if not dead:
                if ref_annotator.linker_stats != annotator.linker_stats:
                    raise ParityError(
                        f"shard {shard.shard_id}: linker statistics "
                        "diverged between fast and reference paths"
                    )
                if ref_extractor.stats != extractor.stats:
                    raise ParityError(
                        f"shard {shard.shard_id}: extraction "
                        "statistics diverged between fast and "
                        "reference paths"
                    )
        telemetry = WorkerTelemetry(
            counters={
                "documents": extractor.stats.documents,
                "sentences": extractor.stats.sentences,
                "mentions": annotator.linker_stats.linked,
                "statements_positive": extractor.stats.positive,
                "statements_negative": extractor.stats.negative,
                "quarantined": len(dead),
            },
            observations=tuple(observations),
            spans=tuple(worker_tracer.export_spans()),
            prefilter=(
                annotator.fastpath_stats.as_counters()
                if annotator.fastpath_stats is not None
                else {}
            ),
        )
        result = ShardEvidence(
            shard_id=shard.shard_id,
            counter=counter,
            dead_letters=tuple(dead),
            telemetry=telemetry,
            provenance=extractor.provenance,
        )
        if self.checkpoint_dir is not None:
            save_shard_checkpoint(
                self._checkpoint_path(
                    Path(self.checkpoint_dir), shard.shard_id
                ),
                result.shard_id,
                result.counter,
                [letter.to_dict() for letter in result.dead_letters],
                provenance=result.provenance,
            )
        return result

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    @staticmethod
    def _checkpoint_path(run_dir: Path, shard_id: int) -> Path:
        return run_dir / f"shard-{shard_id:05d}.json"

    def _load_checkpoint(
        self, run_dir: Path, shard_id: int, health: PipelineHealth
    ) -> ShardEvidence | None:
        """Load one shard checkpoint; corrupt files are dropped and the
        shard recomputed."""
        path = self._checkpoint_path(run_dir, shard_id)
        if not path.exists():
            return None
        try:
            loaded_id, counter, letters, ledger = (
                load_shard_checkpoint(path)
            )
        except CheckpointError:
            health.corrupt_checkpoints += 1
            path.unlink(missing_ok=True)
            return None
        if loaded_id != shard_id:
            health.corrupt_checkpoints += 1
            path.unlink(missing_ok=True)
            return None
        health.resumed_shards += 1
        return ShardEvidence(
            shard_id=shard_id,
            counter=counter,
            dead_letters=tuple(
                DeadLetter.from_dict(letter) for letter in letters
            ),
            provenance=ledger,
        )
