"""The full Surveyor pipeline: corpus in, opinion table out.

Mirrors the four stages the paper times in Section 7.1:

1. **extract** — shard the snapshot, annotate and pattern-match each
   shard (the map side), merge the per-shard evidence counters (the
   reduce side);
2. **kb** — pull entities with their most notable types from the
   knowledge base;
3. **group** — join evidence with the KB and group by property-type
   combination, applying the occurrence threshold ``rho``;
4. **em** — fit the user-behaviour model per combination and emit
   dominant opinions for every entity of each type.

The extraction stage runs under the fault-tolerant runtime: a document
whose annotation or extraction raises is quarantined into a dead-letter
record instead of killing its shard, a shard that fails after all
retries is skipped (the run continues on the survivors), and — with a
``checkpoint_dir`` — each completed shard's evidence is persisted so an
interrupted run resumes without recomputing finished shards. ``strict``
restores the historical fail-fast behaviour. All of it is accounted in
the report's health section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..core.em import EMLearner
from ..core.errors import CheckpointError
from ..core.surveyor import (
    DEFAULT_OCCURRENCE_THRESHOLD,
    Surveyor,
    SurveyorResult,
)
from ..corpus.document import CorpusShard, WebCorpus
from ..extraction.extractor import EvidenceExtractor
from ..extraction.patterns import DEFAULT_PATTERNS, PatternConfig
from ..extraction.statement import EvidenceCounter
from ..kb.knowledge_base import KnowledgeBase
from ..nlp.annotate import Annotator
from ..storage.serialize import (
    load_shard_checkpoint,
    save_shard_checkpoint,
)
from .counters import PipelineMetrics
from .faults import FaultInjector
from .mapreduce import MapReduceJob
from .resilience import (
    DEFAULT_RETRY_POLICY,
    NO_RETRY,
    DeadLetter,
    PipelineHealth,
    RetryPolicy,
    ShardEvidence,
)


@dataclass
class PipelineReport:
    """Everything a pipeline run produced."""

    result: SurveyorResult
    evidence: EvidenceCounter
    metrics: PipelineMetrics

    @property
    def opinions(self):
        return self.result.opinions

    @property
    def health(self) -> PipelineHealth:
        return self.metrics.health

    def summary(self) -> str:
        lines = [
            self.metrics.report(),
            f"evidence statements: {self.evidence.n_statements}",
            f"entity-property pairs with evidence: {self.evidence.n_pairs}",
            f"property-type combinations fit: {len(self.result.fits)}",
            f"combinations below threshold: {len(self.result.skipped)}",
            f"opinions emitted: {len(self.result.opinions)}",
            self.health.report(),
        ]
        return "\n".join(lines)


@dataclass
class SurveyorPipeline:
    """End-to-end runner configured like the paper's deployment.

    Resilience knobs
    ----------------
    retry_policy:
        Per-shard retry configuration (defaults to three attempts with
        short seeded backoff).
    shard_timeout:
        Wall-clock budget per shard attempt; enforced on the pooled
        executors.
    strict:
        Fail fast: per-document exceptions propagate and a failed
        shard aborts the run, as before the resilience layer existed.
    checkpoint_dir:
        Run directory for shard-level checkpoints. A rerun pointing at
        the same directory (with the same corpus and ``n_workers``)
        resumes, loading completed shards instead of re-mapping them.
    fault_injector:
        Deterministic failure source for resilience testing; see
        :mod:`repro.pipeline.faults`.
    """

    kb: KnowledgeBase
    pattern_config: PatternConfig = DEFAULT_PATTERNS
    occurrence_threshold: int = DEFAULT_OCCURRENCE_THRESHOLD
    n_workers: int = 4
    parallel: bool = False
    executor: str = "serial"
    learner: EMLearner = field(default_factory=EMLearner)
    retry_policy: RetryPolicy | None = None
    shard_timeout: float | None = None
    strict: bool = False
    checkpoint_dir: str | Path | None = None
    fault_injector: FaultInjector | None = None

    def run(self, corpus: WebCorpus) -> PipelineReport:
        """Process a corpus end to end."""
        metrics = PipelineMetrics()
        evidence = self._extract(corpus, metrics)
        with metrics.timed("kb") as stage:
            catalog = self.kb
            stats = catalog.stats()
            for key, value in stats.items():
                stage.bump(key, value)
        with metrics.timed("group") as stage:
            grouped = evidence.as_evidence()
            stage.bump("pairs", evidence.n_pairs)
            stage.bump("combinations", len(grouped))
        with metrics.timed("em") as stage:
            surveyor = Surveyor(
                catalog=catalog,
                occurrence_threshold=self.occurrence_threshold,
                learner=self.learner,
            )
            result = surveyor.run(grouped)
            stage.bump("fits", len(result.fits))
            stage.bump("opinions", len(result.opinions))
            metrics.health.degraded_combinations.extend(
                str(key) for key in result.degraded
            )
        return PipelineReport(
            result=result, evidence=evidence, metrics=metrics
        )

    # ------------------------------------------------------------------
    # Extraction stage
    # ------------------------------------------------------------------
    def _extract(
        self, corpus: WebCorpus, metrics: PipelineMetrics
    ) -> EvidenceCounter:
        health = metrics.health
        shards = corpus.shards(self.n_workers)
        run_dir = (
            Path(self.checkpoint_dir)
            if self.checkpoint_dir is not None
            else None
        )

        resumed: list[ShardEvidence] = []
        pending: list[CorpusShard] = []
        if run_dir is not None:
            run_dir.mkdir(parents=True, exist_ok=True)
            for shard in shards:
                loaded = self._load_checkpoint(
                    run_dir, shard.shard_id, health
                )
                if loaded is not None:
                    resumed.append(loaded)
                else:
                    pending.append(shard)
        else:
            pending = list(shards)

        fresh: list[ShardEvidence] = []
        if pending:
            job: MapReduceJob[
                CorpusShard, ShardEvidence, list[ShardEvidence]
            ] = MapReduceJob(
                mapper=self._map_shard,
                reducer=list,
                n_workers=self.n_workers,
                executor=self.executor,
                parallel=self.parallel,
                retry_policy=self.retry_policy
                or (NO_RETRY if self.strict else DEFAULT_RETRY_POLICY),
                shard_timeout=self.shard_timeout,
                skip_failed_shards=not self.strict,
            )
            fresh = job.run(pending, metrics)
            if run_dir is not None:
                health.checkpointed_shards += len(fresh)

        evidence = EvidenceCounter()
        for part in sorted(
            [*resumed, *fresh], key=lambda p: p.shard_id
        ):
            evidence.merge(part.counter)
            health.record_quarantine(part.dead_letters)
        metrics.stage("map").bump("statements", evidence.n_statements)
        return evidence

    def _map_shard(self, shard: CorpusShard) -> ShardEvidence:
        """One worker: annotate and extract a shard of documents.

        Each worker builds its own annotator/extractor (workers share
        nothing, as on a real cluster) and returns a per-shard
        evidence counter — the combine step of the dataflow. A
        document that raises is quarantined as a dead letter unless
        the pipeline is strict; shard-level failures propagate to the
        executor's retry loop. On success the shard checkpoints its
        own output, so a later resume skips it.
        """
        injector = self.fault_injector
        if injector is not None:
            injector.on_shard_start(shard.shard_id)
        annotator = Annotator(self.kb)
        extractor = EvidenceExtractor(config=self.pattern_config)
        counter = EvidenceCounter()
        dead: list[DeadLetter] = []
        for document in shard:
            stage = "annotate"
            try:
                if injector is not None:
                    stage = "inject"
                    injector.on_document(document.doc_id)
                    stage = "annotate"
                annotated = annotator.annotate(
                    document.doc_id, document.text
                )
                stage = "extract"
                statements = extractor.extract_document(annotated)
            except Exception as error:
                if self.strict:
                    raise
                dead.append(
                    DeadLetter.from_exception(
                        document.doc_id, stage, error,
                        text=str(document.text),
                    )
                )
                continue
            counter.add_all(statements)
        result = ShardEvidence(
            shard_id=shard.shard_id,
            counter=counter,
            dead_letters=tuple(dead),
        )
        if self.checkpoint_dir is not None:
            save_shard_checkpoint(
                self._checkpoint_path(
                    Path(self.checkpoint_dir), shard.shard_id
                ),
                result.shard_id,
                result.counter,
                [letter.to_dict() for letter in result.dead_letters],
            )
        return result

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    @staticmethod
    def _checkpoint_path(run_dir: Path, shard_id: int) -> Path:
        return run_dir / f"shard-{shard_id:05d}.json"

    def _load_checkpoint(
        self, run_dir: Path, shard_id: int, health: PipelineHealth
    ) -> ShardEvidence | None:
        """Load one shard checkpoint; corrupt files are dropped and the
        shard recomputed."""
        path = self._checkpoint_path(run_dir, shard_id)
        if not path.exists():
            return None
        try:
            loaded_id, counter, letters = load_shard_checkpoint(path)
        except CheckpointError:
            health.corrupt_checkpoints += 1
            path.unlink(missing_ok=True)
            return None
        if loaded_id != shard_id:
            health.corrupt_checkpoints += 1
            path.unlink(missing_ok=True)
            return None
        health.resumed_shards += 1
        return ShardEvidence(
            shard_id=shard_id,
            counter=counter,
            dead_letters=tuple(
                DeadLetter.from_dict(letter) for letter in letters
            ),
        )
