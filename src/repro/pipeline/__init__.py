"""Sharded pipeline substrate: map/reduce executor and the full runner."""

from .counters import PipelineMetrics, StageMetrics
from .mapreduce import MapReduceJob, shard_items
from .runner import PipelineReport, SurveyorPipeline

__all__ = [
    "MapReduceJob",
    "PipelineMetrics",
    "PipelineReport",
    "StageMetrics",
    "SurveyorPipeline",
    "shard_items",
]
