"""Sharded pipeline substrate: map/reduce executor, fault-tolerant
runtime, and the full runner."""

from .counters import PipelineMetrics, StageMetrics
from .faults import FaultInjector, InjectedFault
from .mapreduce import MapReduceJob, shard_items
from .resilience import (
    DEFAULT_RETRY_POLICY,
    NO_RETRY,
    DeadLetter,
    PipelineHealth,
    RetryPolicy,
    ShardEvidence,
    ShardFailure,
    ShardTimeoutError,
    WorkerTelemetry,
    call_with_retry,
)
from .runner import PipelineReport, SurveyorPipeline

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "DeadLetter",
    "FaultInjector",
    "InjectedFault",
    "MapReduceJob",
    "NO_RETRY",
    "PipelineHealth",
    "PipelineMetrics",
    "PipelineReport",
    "RetryPolicy",
    "ShardEvidence",
    "ShardFailure",
    "ShardTimeoutError",
    "StageMetrics",
    "SurveyorPipeline",
    "WorkerTelemetry",
    "call_with_retry",
    "shard_items",
]
