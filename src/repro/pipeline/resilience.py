"""Fault-tolerance primitives for the sharded pipeline runtime.

The paper's extraction stage ran over a 40 TB snapshot on up to 5000
nodes — a regime where malformed documents, flaky workers, and
stragglers are the norm. This module provides the building blocks the
single-machine executor uses to reproduce that operational posture:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *seeded* jitter, so retry schedules are deterministic in tests;
* :class:`DeadLetter` — the quarantine record for one document whose
  annotation/extraction raised;
* :class:`ShardEvidence` — one shard's mapped output (evidence counter
  plus its dead letters), also the unit of checkpointing;
* :class:`PipelineHealth` — the run-level health ledger (retries,
  quarantined documents, failed shards, degraded combinations)
  surfaced by ``PipelineReport.summary()`` and the CLI.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TypeVar

from ..core.errors import ReproError
from ..extraction.provenance import ProvenanceLedger
from ..extraction.statement import EvidenceCounter

T = TypeVar("T")

#: How much quarantined document text is kept for post-mortems.
DEAD_LETTER_TEXT_LIMIT = 120


class ShardTimeoutError(ReproError):
    """A shard attempt exceeded its wall-clock budget."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry configuration with deterministic backoff.

    Parameters
    ----------
    max_attempts:
        Total attempts per shard (1 means no retries).
    base_delay / multiplier / max_delay:
        Exponential backoff: attempt ``k`` waits
        ``min(base_delay * multiplier**(k-1), max_delay)`` seconds
        before the next attempt.
    jitter:
        Fractional jitter: the wait is scaled by a factor drawn
        uniformly from ``[1 - jitter, 1 + jitter]``.
    seed:
        Seeds the jitter RNG (together with the shard key and attempt
        number), so schedules are reproducible run to run.
    retryable:
        Exception classes worth retrying; anything else fails the
        shard immediately.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.25
    seed: int = 0
    retryable: tuple[type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retryable)

    def delay(self, attempt: int, key: int = 0) -> float:
        """Backoff before the attempt *after* ``attempt`` on shard ``key``."""
        raw = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        if raw <= 0.0 or self.jitter <= 0.0:
            return raw
        rng = random.Random(
            self.seed * 1_000_003 + key * 9_176 + attempt
        )
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


#: Single-attempt policy: the pre-resilience fail-fast behaviour.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)

#: Default for the pipeline runner: three attempts, short backoff.
DEFAULT_RETRY_POLICY = RetryPolicy(max_attempts=3, base_delay=0.02)


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    *,
    key: int = 0,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Run ``fn`` under ``policy``; raise the last error when exhausted.

    ``on_retry(attempt, error)`` fires before each re-attempt, letting
    callers count retries in their health ledger.
    """
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except BaseException as error:
            if attempt >= policy.max_attempts or not policy.is_retryable(
                error
            ):
                raise
            if on_retry is not None:
                on_retry(attempt, error)
            pause = policy.delay(attempt, key)
            if pause > 0:
                sleep(pause)
    raise AssertionError("unreachable")  # pragma: no cover


# ---------------------------------------------------------------------------
# Quarantine records
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class DeadLetter:
    """One quarantined document: what failed, where, and a text sample."""

    doc_id: str
    stage: str
    error: str
    text: str = ""

    @classmethod
    def from_exception(
        cls, doc_id: str, stage: str, error: BaseException, text: str = ""
    ) -> "DeadLetter":
        return cls(
            doc_id=doc_id,
            stage=stage,
            error=f"{type(error).__name__}: {error}",
            text=text[:DEAD_LETTER_TEXT_LIMIT],
        )

    def to_dict(self) -> dict[str, str]:
        return {
            "doc_id": self.doc_id,
            "stage": self.stage,
            "error": self.error,
            "text": self.text,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, str]) -> "DeadLetter":
        return cls(
            doc_id=str(payload["doc_id"]),
            stage=str(payload["stage"]),
            error=str(payload["error"]),
            text=str(payload.get("text", "")),
        )


@dataclass(frozen=True, slots=True)
class ShardFailure:
    """One shard that exhausted its retries and was skipped."""

    shard_id: int
    attempts: int
    error: str


@dataclass(frozen=True, slots=True)
class WorkerTelemetry:
    """Observability payload a worker ships back with its shard result.

    Everything here is primitives so it pickles across the process-pool
    boundary — this is how counters bumped *inside* a worker process
    reach the parent's ledger instead of dying with the worker:

    * ``counters`` — folded into the parent's ``map`` stage metrics;
    * ``observations`` — ``(histogram_name, value)`` pairs replayed
      into the parent's metrics registry;
    * ``spans`` — exported tracer spans, re-parented under the parent's
      ``map`` stage span by ``Tracer.adopt``;
    * ``prefilter`` — the worker annotator's fast-path accounting
      (sentences seen/skipped, memo hits/misses/evictions), folded into
      the health ledger and the prefilter metric counters.
    """

    counters: dict[str, int] = field(default_factory=dict)
    observations: tuple[tuple[str, float], ...] = ()
    spans: tuple[dict, ...] = ()
    prefilter: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class ShardEvidence:
    """One shard's mapped output; the unit of checkpointing.

    ``telemetry`` rides along only for freshly-mapped shards; shards
    resumed from a checkpoint carry ``None`` (their worker's telemetry
    belonged to the run that wrote the checkpoint).

    ``provenance`` is the shard's evidence-lineage ledger
    (:class:`~repro.extraction.provenance.ProvenanceLedger`); ``None``
    when capture is off or the checkpoint predates the sidecar format.
    """

    shard_id: int
    counter: EvidenceCounter
    dead_letters: tuple[DeadLetter, ...] = ()
    telemetry: WorkerTelemetry | None = None
    provenance: ProvenanceLedger | None = None


# ---------------------------------------------------------------------------
# Run-level health ledger
# ---------------------------------------------------------------------------

@dataclass
class PipelineHealth:
    """Resilience accounting for one pipeline run.

    A run is *healthy* when nothing was retried, quarantined, skipped,
    or degraded — i.e. the fail-fast runtime would have produced the
    same result.
    """

    retries: int = 0
    quarantined: list[DeadLetter] = field(default_factory=list)
    failed_shards: list[ShardFailure] = field(default_factory=list)
    empty_shards: int = 0
    resumed_shards: int = 0
    checkpointed_shards: int = 0
    corrupt_checkpoints: int = 0
    degraded_combinations: list[str] = field(default_factory=list)
    prefilter_sentences: int = 0
    prefilter_skipped: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    memo_evictions: int = 0

    @property
    def healthy(self) -> bool:
        return not (
            self.retries
            or self.quarantined
            or self.failed_shards
            or self.corrupt_checkpoints
            or self.degraded_combinations
        )

    def record_quarantine(self, letters) -> None:
        self.quarantined.extend(letters)

    def record_prefilter(self, counters: dict[str, int]) -> None:
        """Fold one worker's fast-path accounting into the ledger."""
        self.prefilter_sentences += counters.get("sentences", 0)
        self.prefilter_skipped += counters.get("skipped", 0)
        self.memo_hits += counters.get("memo_hits", 0)
        self.memo_misses += counters.get("memo_misses", 0)
        self.memo_evictions += counters.get("memo_evictions", 0)

    @property
    def prefilter_skip_rate(self) -> float:
        if not self.prefilter_sentences:
            return 0.0
        return self.prefilter_skipped / self.prefilter_sentences

    def report(self) -> str:
        """The health section of ``PipelineReport.summary()``."""
        status = "ok" if self.healthy else "degraded"
        lines = [
            f"health: {status}  retries={self.retries}"
            f"  quarantined={len(self.quarantined)}"
            f"  failed_shards={len(self.failed_shards)}"
            f"  degraded_combinations={len(self.degraded_combinations)}"
        ]
        if self.resumed_shards or self.checkpointed_shards:
            lines.append(
                f"  checkpoints: resumed={self.resumed_shards}"
                f" written={self.checkpointed_shards}"
                f" corrupt={self.corrupt_checkpoints}"
            )
        if self.prefilter_sentences:
            lines.append(
                f"  fast path: sentences={self.prefilter_sentences}"
                f" skipped={self.prefilter_skipped}"
                f" ({self.prefilter_skip_rate:.1%})"
                f" memo_hits={self.memo_hits}"
                f" memo_misses={self.memo_misses}"
                f" evictions={self.memo_evictions}"
            )
        for failure in self.failed_shards:
            lines.append(
                f"  failed shard {failure.shard_id} after "
                f"{failure.attempts} attempt(s): {failure.error}"
            )
        for letter in self.quarantined[:5]:
            lines.append(
                f"  quarantined {letter.doc_id} [{letter.stage}]: "
                f"{letter.error}"
            )
        if len(self.quarantined) > 5:
            lines.append(
                f"  ... and {len(self.quarantined) - 5} more "
                "quarantined documents"
            )
        for combo in self.degraded_combinations:
            lines.append(f"  degraded combination: {combo}")
        return "\n".join(lines)
