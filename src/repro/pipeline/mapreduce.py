"""A minimal sharded map/combine/reduce executor.

The paper's extraction ran as a distributed job over a 40 TB snapshot
on up to 5000 nodes. This executor reproduces the *dataflow* at
single-machine scale: the corpus is split into shards, a mapper runs
per shard producing partial results, per-shard combiners pre-aggregate,
and a reducer folds the partials into the final result. Workers can be
simulated sequentially (deterministic, default) or run on a thread
pool.

The executor is also where the resilience layer lives: a shard attempt
that raises is retried under the job's :class:`RetryPolicy`, a shard
that exceeds ``shard_timeout`` on a pooled executor is treated as
failed (and retried), and — with ``skip_failed_shards`` — a shard that
exhausts its attempts is dropped from the run instead of aborting it,
with the skip recorded in the metrics' health ledger.

The abstraction is deliberately generic — the extraction stage maps
documents to statements and reduces evidence counters (each shard's
:class:`~repro.pipeline.resilience.ShardEvidence` also carries its
worker's telemetry and evidence-lineage ledger back through the same
channel, so provenance needs no side path through the executor), but
tests also exercise word-count-style jobs.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Generic, TypeVar

from .counters import PipelineMetrics
from .resilience import (
    NO_RETRY,
    PipelineHealth,
    RetryPolicy,
    ShardFailure,
    ShardTimeoutError,
    call_with_retry,
)

Item = TypeVar("Item")
Partial = TypeVar("Partial")
Result = TypeVar("Result")

#: Accepted executor names.
EXECUTORS = ("serial", "thread", "process")


@dataclass
class MapReduceJob(Generic[Item, Partial, Result]):
    """One sharded job.

    Parameters
    ----------
    mapper:
        Turns one shard (an iterable of items) into a partial result.
    reducer:
        Folds a sequence of partial results into the final result.
    n_workers:
        Simulated cluster width; with a non-serial executor, also the
        pool size. Must be at least 1.
    executor:
        ``serial`` (default, deterministic and fastest for small
        inputs), ``thread`` (identical dataflow on a thread pool), or
        ``process`` (true parallelism; the mapper, the shards, and the
        partial results must be picklable, and pool startup costs a
        few hundred milliseconds — worth it only for large corpora).
    parallel:
        Back-compat alias: ``True`` selects the thread executor.
    retry_policy:
        Per-shard retry configuration; ``None`` keeps the historical
        fail-fast single attempt.
    shard_timeout:
        Wall-clock budget per shard attempt, in seconds. Enforced on
        the ``thread`` and ``process`` executors (a timed-out attempt
        counts as a retryable :class:`ShardTimeoutError`); the serial
        executor cannot preempt a running mapper and ignores it.
    skip_failed_shards:
        When true, a shard that fails after all attempts is recorded
        in the health ledger and dropped; the job continues on the
        surviving shards. When false (default), the last error is
        re-raised.
    shard_observer:
        Optional callback ``(shard_id, seconds, attempts)`` fired when
        a shard succeeds, with the wall-clock latency of its whole
        attempt chain (first submission to success, retries and
        backoff included). The pipeline runner wires this into the
        metrics registry's per-shard latency histogram; it lives here
        because only the executor can see the full chain — a worker
        timing itself would miss queueing, retries, and timeouts.
    pass_attempt:
        When true, the mapper is called as ``mapper(shard, attempt)``
        with the 1-based attempt number instead of ``mapper(shard)``.
        Only the executor knows the attempt count, and on the
        ``process`` executor the workers share no memory with the
        coordinator — anything attempt-dependent (e.g. flaky fault
        injection) must receive the number through the task itself.

    Empty shards are never dispatched to the mapper: they contribute
    nothing to the reduction and, on a pooled executor, would only pay
    scheduling overhead. The skip is counted in the health ledger.
    """

    mapper: Callable[[Sequence[Item]], Partial]
    reducer: Callable[[Sequence[Partial]], Result]
    n_workers: int = 4
    executor: str = "serial"
    parallel: bool = False
    retry_policy: RetryPolicy | None = None
    shard_timeout: float | None = None
    skip_failed_shards: bool = False
    shard_observer: Callable[[int, float, int], None] | None = None
    pass_attempt: bool = False

    def __post_init__(self) -> None:
        if self.parallel and self.executor == "serial":
            self.executor = "thread"
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, "
                f"got {self.executor!r}"
            )
        if self.n_workers < 1:
            raise ValueError(
                f"n_workers must be at least 1, got {self.n_workers}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be positive, got {self.shard_timeout}"
            )

    def run(
        self,
        shards: Sequence[Sequence[Item]],
        metrics: PipelineMetrics | None = None,
    ) -> Result:
        """Execute the job over pre-built shards."""
        metrics = metrics or PipelineMetrics()
        with metrics.timed("map") as stage:
            partials = self._map_all(shards, metrics.health)
            stage.bump("shards", len(shards))
            stage.bump(
                "items", sum(len(shard) for shard in shards)
            )
        with metrics.timed("reduce") as stage:
            result = self.reducer(partials)
            stage.bump("partials", len(partials))
        return result

    def _observe_shard(
        self, index: int, seconds: float, attempts: int
    ) -> None:
        if self.shard_observer is not None:
            self.shard_observer(index, seconds, attempts)

    # ------------------------------------------------------------------
    # Mapping with retries, timeouts, and shard quarantine
    # ------------------------------------------------------------------
    def _map_all(
        self,
        shards: Sequence[Sequence[Item]],
        health: PipelineHealth,
    ) -> list[Partial]:
        live = [
            (index, shard)
            for index, shard in enumerate(shards)
            if len(shard) > 0
        ]
        health.empty_shards += len(shards) - len(live)
        if self.executor == "serial" or len(live) <= 1:
            return self._map_serial(live, health)
        return self._map_pooled(live, health)

    def _map_serial(
        self,
        live: list[tuple[int, Sequence[Item]]],
        health: PipelineHealth,
    ) -> list[Partial]:
        policy = self.retry_policy or NO_RETRY
        results: list[Partial] = []
        for index, shard in live:
            attempts = 0
            chain_started = time.perf_counter()

            def attempt(shard=shard):
                nonlocal attempts
                attempts += 1
                if self.pass_attempt:
                    return self.mapper(shard, attempts)
                return self.mapper(shard)

            def count_retry(_attempt, _error):
                health.retries += 1

            try:
                results.append(
                    call_with_retry(
                        attempt, policy, key=index, on_retry=count_retry
                    )
                )
                self._observe_shard(
                    index,
                    time.perf_counter() - chain_started,
                    attempts,
                )
            except Exception as error:
                if not self.skip_failed_shards:
                    raise
                health.failed_shards.append(
                    ShardFailure(
                        shard_id=index,
                        attempts=attempts,
                        error=f"{type(error).__name__}: {error}",
                    )
                )
        return results

    def _map_pooled(
        self,
        live: list[tuple[int, Sequence[Item]]],
        health: PipelineHealth,
    ) -> list[Partial]:
        policy = self.retry_policy or NO_RETRY
        pool_cls = (
            ThreadPoolExecutor
            if self.executor == "thread"
            else ProcessPoolExecutor
        )
        results: dict[int, Partial] = {}
        chain_started: dict[int, float] = {}
        with pool_cls(max_workers=self.n_workers) as pool:
            pending: dict[Future, tuple[int, Sequence[Item], int]] = {}
            deadlines: dict[Future, float] = {}

            def submit(index, shard, attempt):
                chain_started.setdefault(index, time.perf_counter())
                if self.pass_attempt:
                    future = pool.submit(self.mapper, shard, attempt)
                else:
                    future = pool.submit(self.mapper, shard)
                pending[future] = (index, shard, attempt)
                if self.shard_timeout is not None:
                    deadlines[future] = (
                        time.monotonic() + self.shard_timeout
                    )

            for index, shard in live:
                submit(index, shard, 1)

            while pending:
                wait_timeout = None
                if deadlines:
                    wait_timeout = max(
                        0.0,
                        min(deadlines.values()) - time.monotonic(),
                    )
                done, _ = wait(
                    set(pending),
                    timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )
                now = time.monotonic()
                finished: list[tuple[Future, BaseException | None]] = [
                    (future, None) for future in done
                ]
                if self.shard_timeout is not None:
                    for future in list(pending):
                        if future in done:
                            continue
                        if deadlines.get(future, now) <= now:
                            finished.append(
                                (
                                    future,
                                    ShardTimeoutError(
                                        "shard attempt exceeded "
                                        f"{self.shard_timeout}s"
                                    ),
                                )
                            )
                for future, timeout_error in finished:
                    index, shard, attempt = pending.pop(future)
                    deadlines.pop(future, None)
                    if timeout_error is not None:
                        # A timed-out thread cannot be interrupted;
                        # cancel() stops it only if still queued. Its
                        # eventual result is discarded either way.
                        future.cancel()
                        error: BaseException = timeout_error
                    else:
                        try:
                            partial = future.result()
                        except Exception as raised:
                            error = raised
                        else:
                            results[index] = partial
                            self._observe_shard(
                                index,
                                time.perf_counter()
                                - chain_started[index],
                                attempt,
                            )
                            continue
                    if attempt < policy.max_attempts and (
                        policy.is_retryable(error)
                    ):
                        health.retries += 1
                        pause = policy.delay(attempt, index)
                        if pause > 0:
                            time.sleep(pause)
                        submit(index, shard, attempt + 1)
                    elif self.skip_failed_shards:
                        health.failed_shards.append(
                            ShardFailure(
                                shard_id=index,
                                attempts=attempt,
                                error=(
                                    f"{type(error).__name__}: {error}"
                                ),
                            )
                        )
                    else:
                        raise error
        return [results[index] for index in sorted(results)]


def shard_items(
    items: Iterable[Item], n_shards: int
) -> list[list[Item]]:
    """Round-robin sharding of an arbitrary iterable.

    May produce empty shards when there are fewer items than shards;
    :class:`MapReduceJob` skips those instead of dispatching them.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be positive")
    shards: list[list[Item]] = [[] for _ in range(n_shards)]
    for index, item in enumerate(items):
        shards[index % n_shards].append(item)
    return shards
