"""A minimal sharded map/combine/reduce executor.

The paper's extraction ran as a distributed job over a 40 TB snapshot
on up to 5000 nodes. This executor reproduces the *dataflow* at
single-machine scale: the corpus is split into shards, a mapper runs
per shard producing partial results, per-shard combiners pre-aggregate,
and a reducer folds the partials into the final result. Workers can be
simulated sequentially (deterministic, default) or run on a thread
pool.

The abstraction is deliberately generic — the extraction stage maps
documents to statements and reduces evidence counters, but tests also
exercise word-count-style jobs.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Generic, TypeVar

from .counters import PipelineMetrics

Item = TypeVar("Item")
Partial = TypeVar("Partial")
Result = TypeVar("Result")

#: Accepted executor names.
EXECUTORS = ("serial", "thread", "process")


@dataclass
class MapReduceJob(Generic[Item, Partial, Result]):
    """One sharded job.

    Parameters
    ----------
    mapper:
        Turns one shard (an iterable of items) into a partial result.
    reducer:
        Folds a sequence of partial results into the final result.
    n_workers:
        Simulated cluster width; with a non-serial executor, also the
        pool size.
    executor:
        ``serial`` (default, deterministic and fastest for small
        inputs), ``thread`` (identical dataflow on a thread pool), or
        ``process`` (true parallelism; the mapper, the shards, and the
        partial results must be picklable, and pool startup costs a
        few hundred milliseconds — worth it only for large corpora).
    parallel:
        Back-compat alias: ``True`` selects the thread executor.
    """

    mapper: Callable[[Sequence[Item]], Partial]
    reducer: Callable[[Sequence[Partial]], Result]
    n_workers: int = 4
    executor: str = "serial"
    parallel: bool = False

    def __post_init__(self) -> None:
        if self.parallel and self.executor == "serial":
            self.executor = "thread"
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, "
                f"got {self.executor!r}"
            )

    def run(
        self,
        shards: Sequence[Sequence[Item]],
        metrics: PipelineMetrics | None = None,
    ) -> Result:
        """Execute the job over pre-built shards."""
        metrics = metrics or PipelineMetrics()
        with metrics.timed("map") as stage:
            partials = self._map_all(shards)
            stage.bump("shards", len(shards))
            stage.bump(
                "items", sum(len(shard) for shard in shards)
            )
        with metrics.timed("reduce") as stage:
            result = self.reducer(partials)
            stage.bump("partials", len(partials))
        return result

    def _map_all(
        self, shards: Sequence[Sequence[Item]]
    ) -> list[Partial]:
        if self.executor == "serial" or len(shards) <= 1:
            return [self.mapper(shard) for shard in shards]
        pool_cls = (
            ThreadPoolExecutor
            if self.executor == "thread"
            else ProcessPoolExecutor
        )
        with pool_cls(max_workers=self.n_workers) as pool:
            return list(pool.map(self.mapper, shards))


def shard_items(
    items: Iterable[Item], n_shards: int
) -> list[list[Item]]:
    """Round-robin sharding of an arbitrary iterable."""
    if n_shards < 1:
        raise ValueError("n_shards must be positive")
    shards: list[list[Item]] = [[] for _ in range(n_shards)]
    for index, item in enumerate(items):
        shards[index % n_shards].append(item)
    return shards
