"""Closed-class word lists and morphological cues for the POS tagger.

A full statistical tagger is out of scope offline; instead the tagger
leans on (a) closed-class lists, which are genuinely enumerable, and
(b) an adjective/adverb lexicon seeded with the evaluation properties
of the paper plus common subjective adjectives, backed by suffix
morphology for out-of-lexicon words.
"""

from __future__ import annotations

#: Copula lemmas in the broad class ("copula verbs" of Appendix B).
COPULA_LEMMAS: frozenset[str] = frozenset(
    {
        "be", "seem", "look", "feel", "remain", "appear", "sound",
        "stay", "become", "get", "turn",
    }
)

#: Inflections of "to be" — the restrictive verb set of pattern v3/v4.
TO_BE_FORMS: frozenset[str] = frozenset(
    {"is", "are", "was", "were", "be", "been", "being", "am", "'s", "'re"}
)

#: Inflected copula surface forms mapped to lemmas.
COPULA_FORMS: dict[str, str] = {
    **{form: "be" for form in TO_BE_FORMS},
    "seems": "seem", "seem": "seem", "seemed": "seem",
    "looks": "look", "look": "look", "looked": "look",
    "feels": "feel", "feel": "feel", "felt": "feel",
    "remains": "remain", "remain": "remain", "remained": "remain",
    "appears": "appear", "appear": "appear", "appeared": "appear",
    "sounds": "sound", "sound": "sound", "sounded": "sound",
    "stays": "stay", "stayed": "stay",
    "becomes": "become", "become": "become", "became": "become",
    "gets": "get", "got": "get",
    "turns": "turn", "turned": "turn",
}

#: Opinion/attitude verbs that embed a complement clause ("I think
#: that ...") or a small clause ("I find kittens cute").
OPINION_VERB_FORMS: dict[str, str] = {
    "think": "think", "thinks": "think", "thought": "think",
    "believe": "believe", "believes": "believe", "believed": "believe",
    "say": "say", "says": "say", "said": "say",
    "find": "find", "finds": "find", "found": "find",
    "consider": "consider", "considers": "consider",
    "considered": "consider",
    "doubt": "doubt", "doubts": "doubt", "doubted": "doubt",
    "guess": "guess", "agree": "agree", "agrees": "agree",
    "feel": "feel",  # "I feel that ..." — copula list wins elsewhere
}

#: Auxiliary "do" paradigm (carrier of clause negation).
AUX_DO_FORMS: frozenset[str] = frozenset({"do", "does", "did"})

#: Negation tokens. "never" counts as a negation per Figure 5.
NEGATION_FORMS: frozenset[str] = frozenset(
    {"not", "n't", "never", "no", "nowise"}
)

DETERMINERS: frozenset[str] = frozenset(
    {"a", "an", "the", "this", "that", "these", "those", "some", "any",
     "every", "each", "all", "most", "many", "both", "such"}
)

PRONOUNS: frozenset[str] = frozenset(
    {"i", "you", "he", "she", "it", "we", "they", "me", "him", "her",
     "us", "them", "one", "everyone", "someone", "anybody", "people",
     "everybody"}
)

PREPOSITIONS: frozenset[str] = frozenset(
    {"for", "in", "at", "on", "with", "about", "of", "to", "by",
     "from", "near", "during", "without", "around", "among", "like"}
)

COORDINATORS: frozenset[str] = frozenset({"and", "or", "but", "yet"})

#: Complementizer introducing a ccomp clause.
COMPLEMENTIZERS: frozenset[str] = frozenset({"that", "whether", "if"})

#: Degree and manner adverbs commonly modifying adjectives.
ADVERBS: frozenset[str] = frozenset(
    {
        "very", "really", "quite", "extremely", "truly", "so", "too",
        "pretty", "fairly", "rather", "incredibly", "remarkably",
        "densely", "sparsely", "highly", "surprisingly", "especially",
        "particularly", "somewhat", "utterly", "insanely", "awfully",
        "terribly", "reasonably", "genuinely", "absolutely",
        # Discourse openers ("Honestly, kittens are cute.")
        "honestly", "frankly", "personally", "definitely", "certainly",
        "probably", "maybe", "perhaps", "clearly", "obviously",
        "seriously", "apparently", "arguably", "undoubtedly",
    }
)

#: Adjective lexicon: evaluation properties (Table 2), the empirical
#: study properties, and a spread of common subjective adjectives.
ADJECTIVES: frozenset[str] = frozenset(
    {
        # Table 2 properties
        "dangerous", "cute", "big", "friendly", "deadly",
        "cool", "crazy", "pretty", "quiet", "young",
        "calm", "cheap", "hectic", "multicultural",
        "exciting", "rare", "solid", "vital",
        "addictive", "boring", "fast", "popular",
        # Section 2 / Appendix A properties
        "small", "safe", "wealthy", "high", "populated", "southern",
        # Common subjective adjectives for corpus variety
        "adorable", "aggressive", "amazing", "ancient", "awful",
        "beautiful", "bizarre", "bold", "bright", "bustling", "charming",
        "clean", "clever", "cold", "colorful", "comfortable", "common",
        "complex", "crowded", "curious", "dark", "deep", "delicious",
        "dirty", "dull", "elegant", "enormous", "expensive", "famous",
        "fancy", "fierce", "fluffy", "fresh", "fun", "gentle", "gloomy",
        "good", "gorgeous", "graceful", "grand", "great", "green",
        "happy", "hard", "harmless", "healthy", "heavy", "hilarious",
        "historic", "hot", "huge", "humble", "humid", "interesting",
        "lazy", "lively", "lonely", "loud", "lovely", "lucky", "mad",
        "magnificent", "massive", "mean", "messy", "mighty", "modern",
        "mysterious", "narrow", "nasty", "neat", "nice", "noisy", "odd",
        "old", "peaceful", "plain", "pleasant", "poor", "powerful",
        "precious", "proud", "pure", "quaint", "quick", "relaxing",
        "remote", "rich", "risky", "rough", "rude", "sad", "scary",
        "shallow", "sharp", "shiny", "silent", "silly", "simple",
        "sleepy", "slow", "smart", "smooth", "soft", "spacious",
        "steep", "strange", "strong", "stunning", "sunny", "sweet",
        "tall", "tame", "terrible", "thick", "thin", "tidy", "tiny",
        "tough", "tranquil", "ugly", "unique", "vast", "venomous",
        "vibrant", "warm", "weak", "weird", "wet", "wide", "wild",
        "windy", "wise", "wonderful", "american", "bad",
    }
)

#: Suffixes that mark likely adjectives for out-of-lexicon words.
ADJECTIVE_SUFFIXES: tuple[str, ...] = (
    "ous", "ful", "ive", "able", "ible", "less", "ish", "ic", "al",
    "ary", "some",
)

#: Suffix that marks likely adverbs ("densely", "badly").
ADVERB_SUFFIX = "ly"

#: Nouns naming our entity types (used as type-indicator words both in
#: templates — "X is a big city" — and by the disambiguating linker).
TYPE_NOUNS: dict[str, str] = {
    "city": "city", "cities": "city",
    "town": "city", "towns": "city",
    "animal": "animal", "animals": "animal",
    "creature": "animal", "creatures": "animal",
    "celebrity": "celebrity", "celebrities": "celebrity",
    "star": "celebrity", "stars": "celebrity",
    "profession": "profession", "professions": "profession",
    "job": "profession", "jobs": "profession",
    "sport": "sport", "sports": "sport",
    "game": "sport", "games": "sport",
    "country": "country", "countries": "country",
    "nation": "country", "nations": "country",
    "lake": "lake", "lakes": "lake",
    "mountain": "mountain", "mountains": "mountain",
    "peak": "mountain", "peaks": "mountain",
}

#: Common nouns used by distractor templates.
COMMON_NOUNS: frozenset[str] = frozenset(
    {
        "parking", "weather", "food", "traffic", "nightlife", "people",
        "beach", "beaches", "museum", "museums", "restaurant",
        "restaurants", "fur", "teeth", "claws", "fans", "rules",
        "player", "players", "fan", "training", "equipment", "history",
        "culture", "economy", "streets", "children", "kids", "hiking",
        "swimming", "shopping", "winter", "summer", "tourists", "place",
        "places", "visit", "home", "work", "family", "friends", "pets",
        "pet", "owner", "owners", "match", "matches", "career", "hours",
        "pay", "salary", "skills", "skill", "danger", "thing", "things",
        "time", "way", "world", "life", "opinion", "experience", "area",
        "region", "part", "north", "south", "east", "west", "coast",
        "downtown", "suburbs", "center",
    }
)
