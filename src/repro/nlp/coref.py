"""Lightweight pronoun coreference resolution.

The paper's corpus arrives pre-annotated by an entity tagger whose
annotations cover coreferential mentions (the Figure 4(a) example
relies on "animals" coreferring with "snakes"). Type-noun coreference
is handled by the extraction filters; this module adds the *pronoun*
dimension: a third-person pronoun is resolved to the most recent
compatible entity mention in the document, so "We visited Tokyo last
week. It is hectic." yields a (tokyo, hectic) statement.

Resolution is deliberately conservative — recency plus a human/
non-human compatibility check — matching the precision-over-recall
stance of the extraction stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tokens import EntityMention, POS, Sentence, Span

#: Entity types treated as human for pronoun agreement.
HUMAN_TYPES: frozenset[str] = frozenset({"celebrity", "profession"})

#: Pronouns resolved to non-human antecedents.
_NEUTRAL_PRONOUNS = frozenset({"it", "they", "them"})

#: Pronouns resolved to human antecedents.
_PERSONAL_PRONOUNS = frozenset({"he", "she", "him", "her"})


@dataclass
class PronounResolver:
    """Per-document resolver; feed sentences in reading order."""

    human_types: frozenset[str] = HUMAN_TYPES
    _last_human: EntityMention | None = field(
        default=None, init=False, repr=False
    )
    _last_neutral: EntityMention | None = field(
        default=None, init=False, repr=False
    )

    def resolve_sentence(self, sentence: Sentence) -> int:
        """Add mentions for resolvable pronouns; returns how many.

        Antecedent bookkeeping is updated *after* resolution so a
        pronoun never resolves to a mention later in its own sentence.
        """
        resolved = 0
        additions: list[EntityMention] = []
        for token in sentence.tokens:
            if token.pos is not POS.PRON:
                continue
            antecedent = self._antecedent_for(token.lemma)
            if antecedent is None:
                continue
            if sentence.mention_at(token.index) is not None:
                continue
            additions.append(
                EntityMention(
                    span=Span(token.index, token.index + 1),
                    entity_id=antecedent.entity_id,
                    entity_type=antecedent.entity_type,
                    surface=token.text,
                )
            )
            resolved += 1
        sentence.mentions.extend(additions)
        self._observe(sentence, additions)
        return resolved

    def _antecedent_for(self, lemma: str) -> EntityMention | None:
        if lemma in _NEUTRAL_PRONOUNS:
            return self._last_neutral
        if lemma in _PERSONAL_PRONOUNS:
            return self._last_human
        return None

    def _observe(
        self, sentence: Sentence, resolved: list[EntityMention]
    ) -> None:
        """Update antecedents from this sentence's *linked* mentions.

        Pronoun-derived mentions do not overwrite the antecedent — a
        chain of "it ... it" keeps pointing at the original entity.
        """
        resolved_ids = {id(m) for m in resolved}
        for mention in sentence.mentions:
            if id(mention) in resolved_ids:
                continue
            if mention.entity_type in self.human_types:
                self._last_human = mention
            else:
                self._last_neutral = mention
