"""Typed dependency trees in the Stanford style.

The extraction patterns of the paper (Figure 4) are defined over
Stanford typed dependencies; this module provides the tree structure
plus the traversals the pattern matchers and the polarity walk
(Figure 5) rely on.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from .tokens import Token

#: Relation labels used by the parser (subset of Stanford dependencies).
NSUBJ = "nsubj"
COP = "cop"
AMOD = "amod"
APPOS = "appos"
ADVMOD = "advmod"
CONJ = "conj"
CC = "cc"
NEG = "neg"
DET = "det"
PREP = "prep"
POBJ = "pobj"
MARK = "mark"
CCOMP = "ccomp"
XCOMP = "xcomp"
AUX = "aux"
DOBJ = "dobj"
ROOT = "root"
PUNCT = "punct"
DEP = "dep"


@dataclass(slots=True)
class DepNode:
    """One node of the dependency tree."""

    token: Token
    deprel: str = DEP
    parent: "DepNode | None" = None
    children: list["DepNode"] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def attach(self, child: "DepNode", deprel: str) -> "DepNode":
        """Attach ``child`` under this node with the given relation."""
        child.deprel = deprel
        child.parent = self
        self.children.append(child)
        return child

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def child_by_rel(self, deprel: str) -> "DepNode | None":
        for child in self.children:
            if child.deprel == deprel:
                return child
        return None

    def children_by_rel(self, deprel: str) -> list["DepNode"]:
        return [c for c in self.children if c.deprel == deprel]

    def has_child(self, deprel: str) -> bool:
        return self.child_by_rel(deprel) is not None

    def path_to_root(self) -> list["DepNode"]:
        """Nodes from this node (inclusive) up to the root (inclusive)."""
        path = [self]
        node = self
        while node.parent is not None:
            node = node.parent
            path.append(node)
        return path

    def subtree(self) -> Iterator["DepNode"]:
        """Depth-first iteration over this node and its descendants."""
        yield self
        for child in self.children:
            yield from child.subtree()

    @property
    def is_negated(self) -> bool:
        """Whether this token has a negation child (Figure 5's marker)."""
        return self.has_child(NEG)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DepNode({self.token.text}/{self.deprel})"


@dataclass(slots=True)
class DepTree:
    """A parsed sentence: a root node plus an index-to-node map."""

    root: DepNode
    nodes: dict[int, DepNode]

    @classmethod
    def from_root(cls, root: DepNode) -> "DepTree":
        nodes = {node.token.index: node for node in root.subtree()}
        return cls(root=root, nodes=nodes)

    def node_at(self, token_index: int) -> DepNode | None:
        return self.nodes.get(token_index)

    def all_nodes(self) -> Iterator[DepNode]:
        return iter(self.nodes.values())

    def render(self) -> str:
        """Human-readable tree dump, one node per line."""
        lines: list[str] = []

        def walk(node: DepNode, depth: int) -> None:
            lines.append(
                "  " * depth + f"{node.token.text} [{node.deprel}]"
            )
            for child in sorted(
                node.children, key=lambda c: c.token.index
            ):
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)
