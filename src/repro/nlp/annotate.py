"""Document annotation driver: tokenize, tag, link, parse.

Produces the "annotated Web snapshot" representation the extraction
stage consumes — each sentence carries its typed dependency tree plus
its linked entity mentions, mirroring the preprocessed corpus the
paper's pipeline starts from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ExtractionError
from ..kb.knowledge_base import KnowledgeBase
from .coref import PronounResolver
from .deptree import DepTree
from .entity_linker import EntityLinker, LinkerStats, document_type_context
from .parser import DependencyParser
from .tagger import tag
from .tokenizer import tokenize_document
from .tokens import Sentence


@dataclass(slots=True)
class AnnotatedSentence:
    """One sentence with its parse and mentions."""

    sentence: Sentence
    tree: DepTree

    @property
    def mentions(self):
        return self.sentence.mentions

    def text(self) -> str:
        return self.sentence.text()


@dataclass(slots=True)
class AnnotatedDocument:
    """One fully annotated document."""

    doc_id: str
    sentences: list[AnnotatedSentence] = field(default_factory=list)

    def mention_count(self) -> int:
        return sum(len(s.mentions) for s in self.sentences)


@dataclass
class Annotator:
    """Runs the full per-document NLP stack.

    ``resolve_pronouns`` adds conservative per-document pronoun
    coreference: "We visited Tokyo. It is hectic." links ``It`` to
    Tokyo before extraction.
    """

    kb: KnowledgeBase
    parser: DependencyParser = field(default_factory=DependencyParser)
    resolve_pronouns: bool = True
    linker: EntityLinker = field(init=False)

    def __post_init__(self) -> None:
        self.linker = EntityLinker(self.kb)

    @property
    def linker_stats(self) -> LinkerStats:
        return self.linker.stats

    def annotate(self, doc_id: str, text: str) -> AnnotatedDocument:
        """Annotate one raw document.

        A failure anywhere in the per-document NLP stack is re-raised
        as :class:`ExtractionError` (chained onto its cause) carrying
        the document id, so the pipeline can quarantine the document
        instead of killing its shard.
        """
        try:
            sentences = tokenize_document(text)
            for sentence in sentences:
                tag(sentence)
            context = document_type_context(sentences)
            resolver = (
                PronounResolver() if self.resolve_pronouns else None
            )
            annotated: list[AnnotatedSentence] = []
            for sentence in sentences:
                self.linker.link_sentence(sentence, context)
                if resolver is not None:
                    resolver.resolve_sentence(sentence)
                tree = self.parser.parse(sentence)
                annotated.append(
                    AnnotatedSentence(sentence=sentence, tree=tree)
                )
        except ExtractionError:
            raise
        except Exception as error:
            raise ExtractionError(
                f"annotation failed for document {doc_id!r}: {error}"
            ) from error
        return AnnotatedDocument(doc_id=doc_id, sentences=annotated)
