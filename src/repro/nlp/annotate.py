"""Document annotation driver: tokenize, tag, link, parse.

Produces the "annotated Web snapshot" representation the extraction
stage consumes — each sentence carries its typed dependency tree plus
its linked entity mentions, mirroring the preprocessed corpus the
paper's pipeline starts from.

Two execution paths produce bit-identical output:

* the **reference path** runs the full stack on every sentence, as the
  original implementation did;
* the **fast path** (default) screens each raw sentence with
  :mod:`repro.nlp.prefilter` and memoizes per-sentence work, so
  sentences that cannot yield evidence skip tagging, linking,
  coreference, and parsing entirely, and repeated sentences are
  annotated once per shard.

The skip decisions are proven sound case by case:

* *no alias hit* → the linker cannot match (every alias's longest word
  would appear as a substring of the raw text), so mentions, linker
  stats, and coreference antecedent state are untouched;
* *no possible adjective* → no extraction pattern can fire (they all
  anchor on an ``ADJ`` tree node), so the parse is never consulted and
  ``tree`` may stay ``None``;
* *no coreference pronoun* → coreference cannot add mentions, and it
  only updates antecedents from *linked* mentions, which requires an
  alias hit.

``strict_parity`` on the pipeline (or the differential tests) runs
both paths and asserts identical output.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

from ..core.errors import ExtractionError
from ..kb.knowledge_base import KnowledgeBase
from . import lexicon
from .coref import PronounResolver
from .deptree import DepTree
from .entity_linker import EntityLinker, LinkerStats, document_type_context
from .parser import DependencyParser
from .prefilter import (
    COREF_PRONOUNS,
    DEFAULT_MEMO_SIZE,
    AnnotationMemo,
    FastPathStats,
    SentencePrefilter,
    could_be_adjective,
    fast_path_default,
)
from .tagger import tag
from .tokenizer import split_sentences, tokenize, tokenize_document
from .tokens import Sentence


@dataclass(slots=True)
class AnnotatedSentence:
    """One sentence with its parse and mentions.

    ``tree`` is ``None`` when the fast path proved no extraction
    pattern could fire (no possible adjective); ``find_matches``
    treats that the same as a tree without ``ADJ`` nodes.
    """

    sentence: Sentence
    tree: DepTree | None
    cached_text: str | None = None
    #: Shared scratch dict for extractors, present only when the
    #: sentence's pattern matches are a pure function of (text, link
    #: context) — i.e. coreference cannot contribute mentions. Keyed by
    #: pattern config; see ``EvidenceExtractor.extract_sentence``.
    extraction_cache: dict | None = None

    @property
    def mentions(self):
        return self.sentence.mentions

    def text(self) -> str:
        if self.cached_text is None:
            self.cached_text = self.sentence.text()
        return self.cached_text


@dataclass(slots=True)
class AnnotatedDocument:
    """One fully annotated document."""

    doc_id: str
    sentences: list[AnnotatedSentence] = field(default_factory=list)

    def mention_count(self) -> int:
        return sum(len(s.mentions) for s in self.sentences)


@dataclass(slots=True)
class _SentenceEntry:
    """Memoized per-sentence work, pure functions of the raw text.

    The token prototype is tagged at most once and never mutated
    afterwards; per-document state (mentions, coreference) always
    lands on a fresh :class:`Sentence` wrapping the shared tokens.
    """

    sentence: Sentence  # prototype; its mentions list stays empty
    text: str  # cached token join (statement context)
    contribution: dict[str, int]  # document_type_context share
    matches: tuple  # linker scan results (alias candidates)
    ambiguous_types: tuple[str, ...]  # context slice linking reads
    tree: DepTree | None
    needs_coref: bool
    pron_possible: bool
    full_skip: bool


#: Process-local share of memoized work between annotators over the
#: same (identical, by object identity) knowledge base. Entries are
#: pure functions of (kb contents, resolve_pronouns, sentence text),
#: so annotators created per shard by the pipeline reuse each other's
#: work when shards run in one process; pool workers simply get their
#: own registry per process. Assumes the KB is not mutated while
#: annotators built from it are in use (the pipeline never does).
_SHARED: "weakref.WeakKeyDictionary[KnowledgeBase, dict]" = (
    weakref.WeakKeyDictionary()
)


def reset_shared_annotation_state(
    kb: "KnowledgeBase | None" = None,
) -> None:
    """Drop the process-local shared memo/prefilter caches.

    Annotators built afterwards start cold, as a fresh process would.
    For benchmarks and tests that need run-to-run isolation (e.g.
    measuring the cold extraction path); never needed in production.
    Pass a knowledge base to drop only its share, ``None`` for all.
    """
    if kb is None:
        _SHARED.clear()
    else:
        _SHARED.pop(kb, None)


def _shared_cache(
    kb: KnowledgeBase, key: tuple, build
):
    per_kb = _SHARED.get(kb)
    if per_kb is None:
        per_kb = {}
        _SHARED[kb] = per_kb
    value = per_kb.get(key)
    if value is None:
        value = build()
        per_kb[key] = value
    return value


@dataclass
class Annotator:
    """Runs the full per-document NLP stack.

    ``resolve_pronouns`` adds conservative per-document pronoun
    coreference: "We visited Tokyo. It is hectic." links ``It`` to
    Tokyo before extraction.

    ``fast_path`` selects the prefilter+memo path (``None`` defers to
    ``REPRO_FAST_PATH``, default on). A shared :class:`SentencePrefilter`
    may be injected so pool workers reuse the parent's automaton;
    otherwise one is compiled once per KB and shared process-locally.
    ``memo_size`` bounds the annotation memo, which ``share_memo``
    (default) shares between annotators over the same KB object —
    memoized work is a pure function of the sentence text, so sharing
    is sound and hit/miss accounting stays per-annotator.
    """

    kb: KnowledgeBase
    parser: DependencyParser = field(default_factory=DependencyParser)
    resolve_pronouns: bool = True
    fast_path: bool | None = None
    prefilter: SentencePrefilter | None = None
    memo_size: int = DEFAULT_MEMO_SIZE
    share_memo: bool = True
    linker: EntityLinker = field(init=False)
    memo: AnnotationMemo | None = field(
        init=False, default=None, repr=False
    )
    _stats: FastPathStats | None = field(
        init=False, default=None, repr=False
    )

    def __post_init__(self) -> None:
        self.linker = EntityLinker(self.kb)
        if self.fast_path is None:
            self.fast_path = fast_path_default()
        if self.fast_path:
            if self.prefilter is None:
                self.prefilter = _shared_cache(
                    self.kb,
                    ("prefilter",),
                    lambda: SentencePrefilter.from_kb(self.kb),
                )
            if self.share_memo:
                self.memo = _shared_cache(
                    self.kb,
                    ("memo", self.resolve_pronouns, self.memo_size),
                    lambda: AnnotationMemo(self.memo_size),
                )
            else:
                self.memo = AnnotationMemo(self.memo_size)
            self._stats = FastPathStats()

    @property
    def linker_stats(self) -> LinkerStats:
        return self.linker.stats

    @property
    def fastpath_stats(self) -> FastPathStats | None:
        """Prefilter/memo counters; ``None`` on the reference path."""
        return self._stats

    def annotate(self, doc_id: str, text: str) -> AnnotatedDocument:
        """Annotate one raw document.

        A failure anywhere in the per-document NLP stack is re-raised
        as :class:`ExtractionError` (chained onto its cause) carrying
        the document id, so the pipeline can quarantine the document
        instead of killing its shard.
        """
        try:
            if self.fast_path:
                sentences = self._annotate_fast(text)
            else:
                sentences = self._annotate_reference(text)
        except ExtractionError:
            raise
        except Exception as error:
            raise ExtractionError(
                f"annotation failed for document {doc_id!r}: {error}"
            ) from error
        return AnnotatedDocument(doc_id=doc_id, sentences=sentences)

    # ------------------------------------------------------------------
    # Reference path
    # ------------------------------------------------------------------
    def _annotate_reference(self, text: str) -> list[AnnotatedSentence]:
        sentences = tokenize_document(text)
        for sentence in sentences:
            tag(sentence)
        context = document_type_context(sentences)
        resolver = (
            PronounResolver() if self.resolve_pronouns else None
        )
        annotated: list[AnnotatedSentence] = []
        for sentence in sentences:
            self.linker.link_sentence(sentence, context)
            if resolver is not None:
                resolver.resolve_sentence(sentence)
            tree = self.parser.parse(sentence)
            annotated.append(
                AnnotatedSentence(sentence=sentence, tree=tree)
            )
        return annotated

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------
    def _annotate_fast(self, text: str) -> list[AnnotatedSentence]:
        memo = self.memo
        stats = self._stats
        raws = split_sentences(text)
        entries: list[_SentenceEntry] = []
        for raw in raws:
            entry = memo.get(raw)
            if entry is None:
                stats.memo_misses += 1
                entry = self._build_entry(raw)
                if memo.put(raw, entry):
                    stats.memo_evictions += 1
            else:
                stats.memo_hits += 1
            entries.append(entry)
        stats.sentences += len(entries)

        # The document type context must cover *all* sentences —
        # including skipped ones — because any sentence's
        # disambiguation may read it. Tags never affect it (punctuation
        # lemmas are not type nouns), so cached contributions suffice.
        context: dict[str, int] = {}
        for entry in entries:
            for indicated, count in entry.contribution.items():
                context[indicated] = context.get(indicated, 0) + count

        # A resolver only has observable effects when some sentence in
        # the document contains a resolvable pronoun — otherwise it
        # would merely accumulate antecedent state nothing reads.
        resolver = (
            PronounResolver()
            if self.resolve_pronouns
            and any(entry.pron_possible for entry in entries)
            else None
        )
        annotated: list[AnnotatedSentence] = []
        for raw, entry in zip(raws, entries):
            if entry.full_skip:
                stats.skipped += 1
                annotated.append(
                    AnnotatedSentence(
                        sentence=entry.sentence,
                        tree=None,
                        cached_text=entry.text,
                    )
                )
                continue
            sentence = Sentence(tokens=entry.sentence.tokens)
            extraction_cache = None
            if entry.matches:
                mentions, linked, dropped, cache = (
                    self._memoized_links(raw, entry, context)
                )
                sentence.mentions = list(mentions)
                self.linker.stats.linked += linked
                self.linker.stats.ambiguous_dropped += dropped
                if not entry.pron_possible:
                    extraction_cache = cache
            if resolver is not None and entry.needs_coref:
                resolver.resolve_sentence(sentence)
            annotated.append(
                AnnotatedSentence(
                    sentence=sentence,
                    tree=entry.tree,
                    cached_text=entry.text,
                    extraction_cache=extraction_cache,
                )
            )
        return annotated

    def _build_entry(self, raw: str) -> _SentenceEntry:
        """Do the text-determined annotation work for one sentence."""
        sentence = tokenize(raw)
        tokens = sentence.tokens
        contribution: dict[str, int] = {}
        for token in tokens:
            indicated = lexicon.TYPE_NOUNS.get(token.lemma)
            if indicated is not None:
                contribution[indicated] = (
                    contribution.get(indicated, 0) + 1
                )
        adj_possible = any(
            could_be_adjective(token.lemma) for token in tokens
        )
        pron_possible = self.resolve_pronouns and any(
            token.lemma in COREF_PRONOUNS for token in tokens
        )
        matches: tuple = ()
        if self.prefilter.alias_hit(raw):
            matches = tuple(self.linker.scan(sentence))
        # Coreference must run whenever linked mentions may update the
        # antecedent state, or a resolvable pronoun could gain a
        # mention (which counts toward mention telemetry even when no
        # adjective pattern can use it).
        needs_coref = bool(matches) or pron_possible
        # A parse only matters if an ADJ node could meet a mention.
        needs_parse = adj_possible and (bool(matches) or pron_possible)
        if matches or needs_coref or needs_parse:
            tag(sentence)
        tree = self.parser.parse(sentence) if needs_parse else None
        ambiguous_types = tuple(
            sorted(
                {
                    entity_type
                    for _span, candidates in matches
                    if len(candidates) > 1
                    for entity in candidates
                    for entity_type in entity.all_types
                }
            )
        )
        return _SentenceEntry(
            sentence=sentence,
            text=sentence.text(),
            contribution=contribution,
            matches=matches,
            ambiguous_types=ambiguous_types,
            tree=tree,
            needs_coref=needs_coref,
            pron_possible=pron_possible,
            full_skip=not (matches or needs_coref or needs_parse),
        )

    def _memoized_links(
        self,
        raw: str,
        entry: _SentenceEntry,
        context: dict[str, int],
    ) -> tuple[tuple, int, int, dict]:
        """Link results for one sentence under one document context.

        Keyed on the raw text plus the clamped context counts of the
        types disambiguation would actually consult, so documents with
        irrelevant context differences share cache lines. The sentence
        context reuses the cached type-noun contribution (identical
        counts: punctuation lemmas are never type nouns).

        The fourth element is the shared extraction scratch dict for
        this (sentence, context) cache line.
        """
        key = (
            raw,
            tuple(
                min(context.get(entity_type, 0), 999)
                for entity_type in entry.ambiguous_types
            ),
        )
        cached = self.memo.get_links(key)
        if cached is None:
            mentions, linked, dropped = self.linker.resolve(
                entry.sentence,
                entry.matches,
                context,
                sentence_context=entry.contribution,
            )
            cached = (tuple(mentions), linked, dropped, {})
            if self.memo.put_links(key, cached):
                self._stats.memo_evictions += 1
        return cached
