"""Deterministic dependency parser for copular and attributive clauses.

The extraction stage only consumes a specific family of tree shapes —
the three patterns of Figure 4 plus the negation/embedding structure of
Figure 5 — so instead of a general statistical parser (unavailable
offline) this module implements a recursive-descent parser over tagged
tokens that produces Stanford-style typed dependency trees for:

* copular clauses: ``Kittens are (very) cute``, ``X is a big city``,
  ``X seems like a big city``;
* attitude embeddings: ``I do n't think that snakes are dangerous``;
* small clauses: ``I find kittens cute``;
* attributive noun phrases: ``the cute cat purrs``;
* negations at any level, including double negations;
* trailing prepositional phrases: ``New York is bad for parking``.

Sentences outside this family degrade gracefully to a flat tree that no
extraction pattern matches — mirroring a real pipeline where most Web
sentences simply contain no pattern instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import lexicon
from .deptree import (
    ADVMOD,
    AMOD,
    APPOS,
    AUX,
    CC,
    CCOMP,
    CONJ,
    COP,
    DEP,
    DET,
    DepNode,
    DepTree,
    MARK,
    NEG,
    NSUBJ,
    POBJ,
    PREP,
    PUNCT,
    XCOMP,
)
from .tagger import tag
from .tokens import POS, Sentence, Token

_NOMINAL_TAGS = (POS.NOUN, POS.PROPN, POS.X)


@dataclass(slots=True)
class _Cursor:
    """Position tracker over the token list."""

    tokens: list[Token]
    index: int = 0

    def peek(self, offset: int = 0) -> Token | None:
        position = self.index + offset
        if 0 <= position < len(self.tokens):
            return self.tokens[position]
        return None

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)

    def save(self) -> int:
        return self.index

    def restore(self, state: int) -> None:
        self.index = state


@dataclass(slots=True)
class _NounPhrase:
    """Parsed NP: head node with det/amod/advmod children attached."""

    head: DepNode
    start: int
    end: int


class DependencyParser:
    """Parses tagged sentences into :class:`DepTree` objects."""

    def parse(self, sentence: Sentence) -> DepTree:
        """Tag (if needed) and parse one sentence."""
        if all(token.pos is POS.X for token in sentence.tokens):
            tag(sentence)
        content = [
            token for token in sentence.tokens if token.pos is not POS.PUNCT
        ]
        if not content:
            return _flat_tree(sentence)
        cursor = _Cursor(content)
        tree = self._parse_sentence(cursor)
        if tree is None or not cursor.at_end():
            return _flat_tree(sentence)
        _attach_punct(tree, sentence)
        return tree

    # ------------------------------------------------------------------
    # Sentence level
    # ------------------------------------------------------------------
    def _parse_sentence(self, cursor: _Cursor) -> DepTree | None:
        first = cursor.peek()
        if first is not None and first.pos is POS.MARK:
            # A sentence-initial subordinator ("If only Chicago were
            # warm") signals a hypothetical — no assertive clause to
            # extract from; fall back to the flat tree.
            return None
        self._skip_lead_in(cursor)
        state = cursor.save()
        matrix = self._parse_matrix(cursor)
        if matrix is not None:
            return matrix
        cursor.restore(state)
        clause = self._parse_clause(cursor)
        if clause is None:
            return None
        return DepTree.from_root(clause)

    def _skip_lead_in(self, cursor: _Cursor) -> None:
        """Skip openers like ``Honestly ,`` or ``In my opinion ,``.

        The skipped tokens are simply dropped from the tree — they never
        participate in any pattern and carry no negation.
        """
        state = cursor.save()
        first = cursor.peek()
        if first is None:
            return
        second = cursor.peek(1)
        # A sentence-initial adverb that does not modify a following
        # adjective is a discourse opener ("Honestly , kittens ...").
        if (
            first.pos is POS.ADV
            and second is not None
            and second.pos is not POS.ADJ
        ):
            cursor.advance()
            return
        if first.pos is POS.PREP:
            cursor.advance()
            depth = 0
            while not cursor.at_end() and depth < 4:
                token = cursor.peek()
                assert token is not None
                if token.pos in (POS.DET, POS.PRON, POS.NOUN, POS.PROPN):
                    cursor.advance()
                    depth += 1
                    continue
                break
            if depth > 0:
                return
            cursor.restore(state)

    # ------------------------------------------------------------------
    # Matrix clauses: "I (do n't) think that <clause>", "I find NP ADJ"
    # ------------------------------------------------------------------
    def _parse_matrix(self, cursor: _Cursor) -> DepTree | None:
        subject = self._parse_noun_phrase(cursor)
        if subject is None:
            return None
        aux_token: Token | None = None
        neg_token: Token | None = None
        token = cursor.peek()
        if token is not None and token.pos is POS.AUX:
            aux_token = cursor.advance()
            token = cursor.peek()
        if token is not None and token.pos is POS.NEG:
            neg_token = cursor.advance()
            token = cursor.peek()
        if token is None or token.pos is not POS.VERB:
            return None
        lemma = lexicon.OPINION_VERB_FORMS.get(token.lemma)
        if lemma is None:
            return None
        verb_token = cursor.advance()
        verb = DepNode(verb_token)
        verb.attach(subject.head, NSUBJ)
        if aux_token is not None:
            verb.attach(DepNode(aux_token), AUX)
        if neg_token is not None:
            verb.attach(DepNode(neg_token), NEG)

        nxt = cursor.peek()
        if nxt is not None and nxt.pos is POS.MARK:
            mark_token = cursor.advance()
            clause = self._parse_clause(cursor)
            if clause is None:
                return None
            clause.attach(DepNode(mark_token), MARK)
            verb.attach(clause, CCOMP)
            return DepTree.from_root(verb)
        if lemma in ("find", "consider"):
            small = self._parse_small_clause(cursor)
            if small is None:
                return None
            verb.attach(small, XCOMP)
            return DepTree.from_root(verb)
        # "I think snakes are dangerous" — bare ccomp without "that".
        clause = self._parse_clause(cursor)
        if clause is None:
            return None
        verb.attach(clause, CCOMP)
        return DepTree.from_root(verb)

    def _parse_small_clause(self, cursor: _Cursor) -> DepNode | None:
        """``find kittens (very) cute`` — adjective with internal subject."""
        subject = self._parse_noun_phrase(cursor)
        if subject is None:
            return None
        adjective = self._parse_adjective_group(cursor)
        if adjective is None:
            return None
        adjective.attach(subject.head, NSUBJ)
        return adjective

    # ------------------------------------------------------------------
    # Core copular clause
    # ------------------------------------------------------------------
    def _parse_clause(self, cursor: _Cursor) -> DepNode | None:
        subject = self._parse_noun_phrase(cursor)
        if subject is None:
            return None
        self._maybe_attach_appositive(cursor, subject.head)
        if cursor.at_end():
            # Bare NP sentence (a mention with no claim), possibly
            # with an appositive ("Tokyo , a big city .").
            return subject.head

        pre_negs: list[Token] = []
        token = cursor.peek()
        while token is not None and token.pos is POS.NEG:
            pre_negs.append(cursor.advance())
            token = cursor.peek()

        if token is None or token.pos is not POS.VERB:
            return None
        if token.lemma not in lexicon.COPULA_FORMS:
            return None
        cop_token = cursor.advance()
        cop_lemma = lexicon.COPULA_FORMS[cop_token.lemma]

        post_negs: list[Token] = []
        token = cursor.peek()
        while token is not None and token.pos is POS.NEG:
            post_negs.append(cursor.advance())
            token = cursor.peek()
        # "seems like a big city" — transparent "like".
        if (
            token is not None
            and token.lemma == "like"
            and cop_lemma != "be"
        ):
            cursor.advance()
            token = cursor.peek()

        predicate = self._parse_predicate(cursor)
        if predicate is None:
            return None
        predicate.attach(subject.head, NSUBJ)
        cop_node = DepNode(cop_token)
        predicate.attach(cop_node, COP)
        for neg_token in (*pre_negs, *post_negs):
            predicate.attach(DepNode(neg_token), NEG)
        self._parse_trailing_preps(cursor, predicate)
        return predicate

    def _maybe_attach_appositive(
        self, cursor: _Cursor, subject_head: DepNode
    ) -> None:
        """Attach "Tokyo , a big city , ..." style appositives.

        Commas are stripped before parsing, so the appositive shows as
        a determiner-led NP directly after the subject; it is only
        committed when what follows is a copula or the sentence end —
        otherwise the tokens are left for the clause parser.
        """
        token = cursor.peek()
        if token is None or token.pos is not POS.DET:
            return
        state = cursor.save()
        appositive = self._parse_noun_phrase(cursor)
        if appositive is None:
            cursor.restore(state)
            return
        nxt = cursor.peek()
        if nxt is None or (
            nxt.pos is POS.VERB and nxt.lemma in lexicon.COPULA_FORMS
        ):
            subject_head.attach(appositive.head, APPOS)
            return
        cursor.restore(state)

    def _parse_predicate(self, cursor: _Cursor) -> DepNode | None:
        """Either a predicate nominal (``a big city``) or an adjective
        group (``very cute and friendly``)."""
        state = cursor.save()
        nominal = self._parse_noun_phrase(cursor)
        if nominal is not None and nominal.head.token.pos in (
            POS.NOUN,
            POS.PROPN,
            POS.X,
        ):
            return nominal.head
        cursor.restore(state)
        return self._parse_adjective_group(cursor)

    def _parse_adjective_group(self, cursor: _Cursor) -> DepNode | None:
        """``(adv*) ADJ ((, ADJ)* (and ADJ))?`` with conj attachments."""
        adverbs: list[Token] = []
        token = cursor.peek()
        while token is not None and token.pos in (POS.ADV, POS.NEG):
            if token.pos is POS.NEG:
                break
            adverbs.append(cursor.advance())
            token = cursor.peek()
        if token is None or token.pos is not POS.ADJ:
            return None
        head = DepNode(cursor.advance())
        for adverb in adverbs:
            head.attach(DepNode(adverb), ADVMOD)
        # Conjoined adjectives: "fast and exciting".
        while True:
            nxt = cursor.peek()
            if nxt is None:
                break
            if nxt.pos is POS.CONJ:
                cc_token = cursor.advance()
                conjunct = self._parse_adjective_atom(cursor)
                if conjunct is None:
                    cursor.index -= 1
                    break
                head.attach(DepNode(cc_token), CC)
                head.attach(conjunct, CONJ)
                continue
            break
        return head

    def _parse_adjective_atom(self, cursor: _Cursor) -> DepNode | None:
        adverbs: list[Token] = []
        token = cursor.peek()
        while token is not None and token.pos is POS.ADV:
            adverbs.append(cursor.advance())
            token = cursor.peek()
        if token is None or token.pos is not POS.ADJ:
            for _ in adverbs:
                cursor.index -= 1
            return None
        node = DepNode(cursor.advance())
        for adverb in adverbs:
            node.attach(DepNode(adverb), ADVMOD)
        return node

    # ------------------------------------------------------------------
    # Noun phrases and PPs
    # ------------------------------------------------------------------
    def _parse_noun_phrase(self, cursor: _Cursor) -> _NounPhrase | None:
        start = cursor.save()
        det_token: Token | None = None
        token = cursor.peek()
        if token is not None and token.pos is POS.DET:
            det_token = cursor.advance()
            token = cursor.peek()

        # Each modifier is (adjective, adverbs, conjuncts) where
        # conjuncts carries coordinated adjectives with their cc token:
        # "a fast and exciting sport" -> fast with conj child exciting.
        modifiers: list[tuple[Token, list[Token], list[tuple[Token, Token]]]] = []
        while token is not None:
            if token.pos is POS.ADJ:
                adj_token = cursor.advance()
                conjuncts = self._parse_amod_conjuncts(cursor)
                modifiers.append((adj_token, [], conjuncts))
                token = cursor.peek()
                continue
            if token.pos is POS.ADV:
                # Adverb(s) then adjective: "densely populated area".
                adverb_state = cursor.save()
                adverbs = [cursor.advance()]
                inner = cursor.peek()
                while inner is not None and inner.pos is POS.ADV:
                    adverbs.append(cursor.advance())
                    inner = cursor.peek()
                if inner is not None and inner.pos is POS.ADJ:
                    adj_token = cursor.advance()
                    conjuncts = self._parse_amod_conjuncts(cursor)
                    modifiers.append((adj_token, adverbs, conjuncts))
                    token = cursor.peek()
                    continue
                cursor.restore(adverb_state)
            break

        if token is not None and token.pos is POS.PRON:
            head = DepNode(cursor.advance())
            if det_token is not None or modifiers:
                cursor.restore(start)
                return None
            return _NounPhrase(head=head, start=start, end=cursor.save())

        nominals: list[Token] = []
        while token is not None and token.pos in _NOMINAL_TAGS:
            nominals.append(cursor.advance())
            token = cursor.peek()
        if not nominals:
            cursor.restore(start)
            return None
        head = DepNode(nominals[-1])
        for other in nominals[:-1]:
            head.attach(DepNode(other), "compound")
        if det_token is not None:
            head.attach(DepNode(det_token), DET)
        for adj_token, adverbs, conjuncts in modifiers:
            adj_node = head.attach(DepNode(adj_token), AMOD)
            for adverb in adverbs:
                adj_node.attach(DepNode(adverb), ADVMOD)
            for cc_token, conj_token in conjuncts:
                adj_node.attach(DepNode(cc_token), CC)
                adj_node.attach(DepNode(conj_token), CONJ)
        return _NounPhrase(head=head, start=start, end=cursor.save())

    def _parse_amod_conjuncts(
        self, cursor: _Cursor
    ) -> list[tuple[Token, Token]]:
        """Coordinated attributive adjectives after an amod adjective.

        Only commits when the coordination is followed by another
        adjective and, further on, a nominal — so the clause-level
        coordination in "X is big and Y is small" is left alone.
        """
        conjuncts: list[tuple[Token, Token]] = []
        while True:
            token = cursor.peek()
            nxt = cursor.peek(1)
            after = cursor.peek(2)
            if (
                token is None
                or token.pos is not POS.CONJ
                or nxt is None
                or nxt.pos is not POS.ADJ
                or after is None
                or after.pos not in _NOMINAL_TAGS
            ):
                return conjuncts
            cc_token = cursor.advance()
            conjuncts.append((cc_token, cursor.advance()))

    def _parse_trailing_preps(
        self, cursor: _Cursor, predicate: DepNode
    ) -> None:
        """Attach trailing PPs (``for parking``) under the predicate."""
        while True:
            token = cursor.peek()
            if token is None or token.pos is not POS.PREP:
                return
            prep_node = DepNode(cursor.advance())
            np = self._parse_noun_phrase(cursor)
            if np is None:
                inner = cursor.peek()
                if inner is not None and inner.pos in (POS.VERB, POS.ADJ):
                    prep_node.attach(DepNode(cursor.advance()), POBJ)
                else:
                    cursor.index -= 1
                    return
            else:
                prep_node.attach(np.head, POBJ)
            predicate.attach(prep_node, PREP)


def _flat_tree(sentence: Sentence) -> DepTree:
    """Fallback parse: first token is root, the rest are flat deps.

    Negation children are still attached to the directly preceding
    token so the polarity walk remains meaningful even for sentences
    outside the supported grammar.
    """
    tokens = sentence.tokens
    root = DepNode(tokens[0], deprel="root") if tokens else DepNode(
        Token(0, "")
    )
    previous = root
    for token in tokens[1:]:
        node = DepNode(token)
        if token.pos is POS.NEG:
            previous.attach(node, NEG)
        elif token.pos is POS.PUNCT:
            root.attach(node, PUNCT)
        else:
            root.attach(node, DEP)
            previous = node
    return DepTree.from_root(root)


def _attach_punct(tree: DepTree, sentence: Sentence) -> None:
    for token in sentence.tokens:
        if token.pos is POS.PUNCT and token.index not in tree.nodes:
            node = tree.root.attach(DepNode(token), PUNCT)
            tree.nodes[token.index] = node
