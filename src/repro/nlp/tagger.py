"""Rule-based part-of-speech tagger.

Tagging proceeds in two passes: a lexicon pass assigns closed-class
tags and known open-class words; a context pass then repairs the
cases where a surface form is ambiguous (``that`` as determiner vs
complementizer, ``pretty`` as adverb vs adjective, capitalized words
as proper nouns, unknown words by suffix morphology).
"""

from __future__ import annotations

from . import lexicon
from .tokens import POS, Sentence, Token

_PUNCT = set(".,!?;:()\"'")


def tag(sentence: Sentence) -> Sentence:
    """Tag the sentence in place and return it."""
    tokens = sentence.tokens
    for token in tokens:
        token.pos = _lexical_tag(token)
    for index, token in enumerate(tokens):
        _contextual_repair(tokens, index, token)
    return sentence


def _lexical_tag(token: Token) -> POS:
    lemma = token.lemma
    if token.text in _PUNCT:
        return POS.PUNCT
    if lemma in lexicon.NEGATION_FORMS:
        return POS.NEG
    if lemma in lexicon.AUX_DO_FORMS:
        return POS.AUX
    if lemma in lexicon.COPULA_FORMS:
        return POS.VERB
    if lemma in lexicon.OPINION_VERB_FORMS:
        return POS.VERB
    if lemma in lexicon.DETERMINERS:
        return POS.DET
    if lemma in lexicon.PRONOUNS:
        return POS.PRON
    if lemma in lexicon.ADVERBS:
        return POS.ADV
    if lemma in lexicon.ADJECTIVES:
        return POS.ADJ
    if lemma in lexicon.PREPOSITIONS:
        return POS.PREP
    if lemma in lexicon.COORDINATORS:
        return POS.CONJ
    if lemma in lexicon.TYPE_NOUNS or lemma in lexicon.COMMON_NOUNS:
        return POS.NOUN
    return POS.X


def _contextual_repair(tokens: list[Token], index: int, token: Token) -> None:
    lemma = token.lemma
    nxt = tokens[index + 1] if index + 1 < len(tokens) else None
    prev = tokens[index - 1] if index > 0 else None

    # "that" after a verb introduces a clause; before a noun it is a
    # determiner (the lexicon pass tagged it DET). Sentence-initial
    # complementizers ("If ...", "Whether ...") mark a subordinate or
    # hypothetical clause, which extraction must not treat as a claim.
    if lemma in lexicon.COMPLEMENTIZERS:
        if prev is None and lemma != "that":
            token.pos = POS.MARK
        elif prev is not None and prev.pos in (
            POS.VERB, POS.NEG, POS.AUX,
        ):
            token.pos = POS.MARK
    # "no" directly before a noun is a determiner-like negation of the
    # NP, keep NEG (polarity logic handles it); "no" standing alone at
    # the start is interjection-like -> X.
    if lemma == "no" and (nxt is None or nxt.pos is POS.PUNCT):
        token.pos = POS.X
    # "pretty" before an adjective is a degree adverb; elsewhere (e.g.
    # as a bare predicate: "she is pretty") it is the adjective.
    if lemma == "pretty":
        if nxt is not None and _is_adjectivish(nxt):
            token.pos = POS.ADV
        else:
            token.pos = POS.ADJ
    # "like" after a copula is a preposition ("seems like"), otherwise
    # the lexicon's PREP stands.
    # Unknown tokens: suffix morphology, then proper-noun heuristics.
    if token.pos is POS.X:
        token.pos = _morphology_tag(tokens, index, token)


def _is_adjectivish(token: Token) -> bool:
    if token.pos is POS.ADJ:
        return True
    lemma = token.lemma
    return lemma in lexicon.ADJECTIVES or any(
        lemma.endswith(suffix) for suffix in lexicon.ADJECTIVE_SUFFIXES
    )


def _morphology_tag(tokens: list[Token], index: int, token: Token) -> POS:
    text, lemma = token.text, token.lemma
    # Capitalized off sentence-start: proper noun (entity mention).
    if text[:1].isupper() and index > 0:
        return POS.PROPN
    if (
        lemma.endswith(lexicon.ADVERB_SUFFIX)
        and len(lemma) > 3
        and not lemma.endswith("ly" * 2)
    ):
        nxt = tokens[index + 1] if index + 1 < len(tokens) else None
        if nxt is not None and _is_adjectivish(nxt):
            return POS.ADV
    if any(lemma.endswith(suffix) for suffix in lexicon.ADJECTIVE_SUFFIXES):
        return POS.ADJ
    if text[:1].isupper():
        return POS.PROPN
    if lemma.isalpha():
        return POS.NOUN
    return POS.X
