"""Sentence splitting and tokenization.

Deliberately simple: the corpus is machine-rendered English, so a
regex-based splitter with clitic handling (``don't`` -> ``do`` +
``n't``) covers the input space. The tokenizer is still written
defensively (abbreviation-safe splitting, punctuation isolation) so
hand-typed example text also parses.
"""

from __future__ import annotations

import re

from .tokens import Sentence, Token

_SENTENCE_BOUNDARY = re.compile(r"(?<=[.!?])\s+")
_TOKEN = re.compile(
    r"n't|'s|'re|'ve|'ll|'d|[A-Za-z]+(?:-[A-Za-z]+)*|\d+(?:[.,]\d+)*|[.,!?;:()\"']"
)
_CLITIC_SPLIT = re.compile(r"(?i)^([a-z]+)(n't)$")


def split_sentences(text: str) -> list[str]:
    """Split raw text into sentence strings."""
    parts = _SENTENCE_BOUNDARY.split(text.strip())
    return [part for part in (p.strip() for p in parts) if part]


def tokenize(sentence_text: str) -> Sentence:
    """Tokenize one sentence string into a :class:`Sentence`.

    Contracted negations are split into the host verb and ``n't``
    (lemma ``not``) so the parser sees a dedicated negation token, as
    Stanford-style pipelines do.
    """
    raw: list[str] = []
    for chunk in sentence_text.split():
        clitic = _CLITIC_SPLIT.match(chunk.strip("\"'().,!?;:"))
        if clitic:
            raw.extend((clitic.group(1), clitic.group(2)))
            trailing = _trailing_punct(chunk)
            if trailing:
                raw.append(trailing)
        else:
            raw.extend(_TOKEN.findall(chunk))
    tokens = []
    for index, text in enumerate(raw):
        lemma = "not" if text.lower() == "n't" else text.lower()
        tokens.append(Token(index=index, text=text, lemma=lemma))
    return Sentence(tokens=tokens)


def tokenize_document(text: str) -> list[Sentence]:
    """Split and tokenize a whole document."""
    return [tokenize(part) for part in split_sentences(text)]


def _trailing_punct(chunk: str) -> str | None:
    stripped = chunk.rstrip("\"')")
    if stripped and stripped[-1] in ".,!?;:":
        return stripped[-1]
    return None
