"""Candidate prefilter and annotation memo — the extraction fast path.

The Section 7.1 benchmark shows extraction dominating pipeline wall
time: every sentence pays the full tokenize→tag→link→parse stack even
when it cannot possibly yield evidence. The paper's own design only
extracts from sentences that mention KB entities (§4), so the fast
path screens each *raw* sentence string first:

* **alias screen** — an Aho-Corasick multi-pattern automaton compiled
  once from the knowledge base's alias table. Each pattern is the
  longest whitespace-delimited word of one alias; because the linker
  matches whole tokens (with single-token plural back-off), any
  linkable sentence must contain one of these words as a substring of
  its lower-cased raw text. The screen therefore over-approximates:
  false positives only cost speed, never correctness.
* **adjective screen** — no extraction pattern fires without a token
  the tagger could label ``ADJ``, which is decidable from the lexicon
  plus suffix morphology (see :func:`could_be_adjective`).
* **pronoun screen** — coreference can only add mentions when one of
  the resolver's pronouns is present.

Sentences failing every screen skip tagging, linking, coreference and
parsing entirely. On top of the screens sits a bounded LRU
:class:`AnnotationMemo`: machine-rendered Web text repeats heavily, so
per-sentence annotation work (tokens, tags, parse tree, link results)
is cached keyed on the raw sentence text — link results additionally
on the document type context slice that disambiguation consults.

The fast path is bit-identical in output to the reference path; the
``strict_parity`` pipeline mode (and the differential tests) runs both
and asserts it.
"""

from __future__ import annotations

import os
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Iterable

from ..kb.knowledge_base import KnowledgeBase
from . import lexicon

#: Default bound on memoized sentences per shard worker.
DEFAULT_MEMO_SIZE = 65536

#: Environment switches — flags on the CLI/pipeline override these.
FAST_PATH_ENV = "REPRO_FAST_PATH"
STRICT_PARITY_ENV = "REPRO_STRICT_PARITY"

_FALSEY = frozenset({"", "0", "false", "no", "off"})

#: Pronouns the coreference resolver can resolve (see
#: :mod:`repro.nlp.coref`); a sentence without any of them can never
#: gain a mention from coreference.
COREF_PRONOUNS: frozenset[str] = frozenset(
    {"it", "they", "them", "he", "she", "him", "her"}
)

#: Lemmas claimed by a closed class the tagger consults *before* the
#: adjective lexicon and suffix morphology — such a token can never be
#: tagged ``ADJ`` (the one exception, "pretty", lives in ADJECTIVES and
#: is handled by the first branch of :func:`could_be_adjective`).
_ADJ_SHADOW: frozenset[str] = frozenset(
    set(lexicon.NEGATION_FORMS)
    | set(lexicon.AUX_DO_FORMS)
    | set(lexicon.COPULA_FORMS)
    | set(lexicon.OPINION_VERB_FORMS)
    | set(lexicon.DETERMINERS)
    | set(lexicon.PRONOUNS)
    | set(lexicon.ADVERBS)
    | set(lexicon.PREPOSITIONS)
    | set(lexicon.COORDINATORS)
    | set(lexicon.TYPE_NOUNS)
    | set(lexicon.COMMON_NOUNS)
)


def fast_path_default() -> bool:
    """Whether the fast path is on by default (``REPRO_FAST_PATH``)."""
    value = os.environ.get(FAST_PATH_ENV)
    if value is None:
        return True
    return value.strip().lower() not in _FALSEY


def strict_parity_default() -> bool:
    """Whether strict parity is on by default (``REPRO_STRICT_PARITY``)."""
    value = os.environ.get(STRICT_PARITY_ENV)
    if value is None:
        return False
    return value.strip().lower() not in _FALSEY


def could_be_adjective(lemma: str) -> bool:
    """Whether the tagger could ever label a token with this lemma ADJ.

    Over-approximates: ``True`` may be wrong (costs a skip), ``False``
    is exact — the lemma is either claimed by an earlier closed class
    or lacks both lexicon membership and an adjective suffix, so
    neither the lexicon pass, the "pretty" repair, nor suffix
    morphology can produce ``ADJ`` for it.
    """
    if lemma in lexicon.ADJECTIVES:
        return True
    if lemma in _ADJ_SHADOW:
        return False
    return lemma.endswith(lexicon.ADJECTIVE_SUFFIXES)


class AhoCorasick:
    """Multi-pattern substring matcher answering "any pattern present?".

    Classic Aho-Corasick trie with failure links; only the boolean
    any-match question is exposed because the prefilter never needs
    match positions.
    """

    __slots__ = ("_goto", "_fail", "_out", "n_patterns")

    def __init__(self, patterns: Iterable[str]) -> None:
        goto: list[dict[str, int]] = [{}]
        out = [False]
        count = 0
        for pattern in patterns:
            if not pattern:
                continue
            count += 1
            state = 0
            for char in pattern:
                nxt = goto[state].get(char)
                if nxt is None:
                    nxt = len(goto)
                    goto[state][char] = nxt
                    goto.append({})
                    out.append(False)
                state = nxt
            out[state] = True
        fail = [0] * len(goto)
        queue: deque[int] = deque(goto[0].values())
        while queue:
            state = queue.popleft()
            for char, nxt in goto[state].items():
                queue.append(nxt)
                fallback = fail[state]
                while fallback and char not in goto[fallback]:
                    fallback = fail[fallback]
                target = goto[fallback].get(char, 0)
                fail[nxt] = target if target != nxt else 0
                out[nxt] = out[nxt] or out[fail[nxt]]
        self._goto = goto
        self._fail = fail
        self._out = out
        self.n_patterns = count

    def matches(self, text: str) -> bool:
        """Whether any pattern occurs as a substring of ``text``."""
        goto, fail, out = self._goto, self._fail, self._out
        state = 0
        for char in text:
            while state and char not in goto[state]:
                state = fail[state]
            state = goto[state].get(char, 0)
            if out[state]:
                return True
        return False


def alias_patterns(kb: KnowledgeBase) -> set[str]:
    """The alias-screen pattern set for one knowledge base.

    One pattern per alias: its longest whitespace-delimited word. The
    linker only matches an alias when every one of its words appears as
    a token (joined by single spaces), and every token's text is a
    literal substring of the raw sentence — so a sentence the linker
    can match always contains the alias's longest word as a substring
    of its lower-cased raw text. Plural ("kittens") and possessive
    ("Tokyo's") variants are covered for free: the base word is a
    prefix of the inflected token.
    """
    patterns: set[str] = set()
    for surface in kb.surface_forms():
        words = surface.split()
        if words:
            patterns.add(max(words, key=len))
    return patterns


class SentencePrefilter:
    """The compiled candidate screen, built once per pipeline run.

    Build it in the parent process (:meth:`from_kb`) and hand it to
    every worker's :class:`~repro.nlp.annotate.Annotator`; the
    automaton pickles with the pipeline, so pool workers receive it
    once per shard instead of recompiling it per document.
    """

    __slots__ = ("automaton",)

    def __init__(self, automaton: AhoCorasick) -> None:
        self.automaton = automaton

    @classmethod
    def from_kb(cls, kb: KnowledgeBase) -> "SentencePrefilter":
        return cls(AhoCorasick(sorted(alias_patterns(kb))))

    def alias_hit(self, raw_sentence: str) -> bool:
        """Whether the sentence might mention any KB entity."""
        return self.automaton.matches(raw_sentence.lower())


@dataclass(slots=True)
class FastPathStats:
    """Per-annotator fast-path accounting (shipped back by workers)."""

    sentences: int = 0
    skipped: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    memo_evictions: int = 0

    @property
    def skip_rate(self) -> float:
        if not self.sentences:
            return 0.0
        return self.skipped / self.sentences

    def as_counters(self) -> dict[str, int]:
        """Primitive dict for :class:`WorkerTelemetry` transport."""
        return {
            "sentences": self.sentences,
            "skipped": self.skipped,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_evictions": self.memo_evictions,
        }


class AnnotationMemo:
    """Bounded LRU memo for per-sentence annotation work.

    Two keyspaces: sentence entries keyed on the raw sentence text
    (tokens, tags, screens, parse tree — all pure functions of the
    text), and link results keyed on (text, context slice) because
    disambiguation also reads the document's type-indicator counts.
    The link table gets twice the entry bound; both evict
    least-recently-used and report evictions to the caller, which owns
    the counters (one memo may serve several annotators).
    """

    def __init__(self, max_entries: int = DEFAULT_MEMO_SIZE) -> None:
        self.max_entries = max(1, int(max_entries))
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._links: OrderedDict[tuple, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, text: str) -> Any | None:
        entry = self._entries.get(text)
        if entry is not None:
            self._entries.move_to_end(text)
        return entry

    def put(self, text: str, entry: Any) -> bool:
        """Store one entry; returns whether an old one was evicted."""
        self._entries[text] = entry
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            return True
        return False

    def get_links(self, key: tuple) -> Any | None:
        links = self._links.get(key)
        if links is not None:
            self._links.move_to_end(key)
        return links

    def put_links(self, key: tuple, links: Any) -> bool:
        """Store one link result; returns whether one was evicted."""
        self._links[key] = links
        if len(self._links) > 2 * self.max_entries:
            self._links.popitem(last=False)
            return True
        return False
