"""Token and sentence containers shared across the NLP stack."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class POS(enum.Enum):
    """Coarse part-of-speech inventory.

    Only the categories the extraction patterns care about are
    distinguished; everything else falls back to ``X``.
    """

    NOUN = "NOUN"
    PROPN = "PROPN"
    ADJ = "ADJ"
    ADV = "ADV"
    VERB = "VERB"
    AUX = "AUX"
    DET = "DET"
    PRON = "PRON"
    NEG = "NEG"
    PREP = "PREP"
    CONJ = "CONJ"
    MARK = "MARK"
    PUNCT = "PUNCT"
    X = "X"


@dataclass(slots=True)
class Token:
    """One surface token.

    ``index`` is the position within the sentence; ``lemma`` is a
    lower-cased, lightly normalized form (``n't`` keeps its negation
    identity via the lemma ``not``).
    """

    index: int
    text: str
    lemma: str = ""
    pos: POS = POS.X

    def __post_init__(self) -> None:
        if not self.lemma:
            self.lemma = self.text.lower()

    @property
    def is_negation(self) -> bool:
        return self.pos is POS.NEG


@dataclass(slots=True)
class Span:
    """Half-open token span ``[start, end)`` within one sentence."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"invalid span [{self.start}, {self.end})")

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.end

    def overlaps(self, other: "Span") -> bool:
        return self.start < other.end and other.start < self.end

    def __len__(self) -> int:
        return self.end - self.start


@dataclass(slots=True)
class EntityMention:
    """A linked entity mention within a sentence."""

    span: Span
    entity_id: str
    entity_type: str
    surface: str


@dataclass(slots=True)
class Sentence:
    """A tokenized sentence, later enriched with mentions and a parse."""

    tokens: list[Token]
    mentions: list[EntityMention] = field(default_factory=list)

    def text(self) -> str:
        return " ".join(token.text for token in self.tokens)

    def __len__(self) -> int:
        return len(self.tokens)

    def __getitem__(self, index: int) -> Token:
        return self.tokens[index]

    def mention_at(self, index: int) -> EntityMention | None:
        """The mention covering a token index, if any."""
        for mention in self.mentions:
            if index in mention.span:
                return mention
        return None
