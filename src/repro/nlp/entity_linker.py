"""Entity mention detection and disambiguation.

The paper's corpus arrives pre-annotated by "an entity tagger using
state-of-the-art means for disambiguation" (Section 2 shows why this
matters: 11 of 23 frequently-mentioned city names were ambiguous). We
implement the equivalent: a longest-match surface scanner over the
knowledge base's alias table plus a context-based disambiguator.

Disambiguation strategy, in order:

1. if only one candidate entity matches the surface form, link it;
2. otherwise score each candidate by type-indicator words present in
   the sentence (``city``, ``animal``, ...; see
   :data:`repro.nlp.lexicon.TYPE_NOUNS`) and, as a weaker signal, in
   the rest of the document;
3. a unique top scorer wins; ties mean the mention stays unlinked —
   exactly the conservative discard the paper applies to ambiguous
   city names.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from ..kb.entity import Entity
from ..kb.knowledge_base import KnowledgeBase
from . import lexicon
from .tokens import EntityMention, POS, Sentence, Span

_MAX_MENTION_TOKENS = 4


@dataclass(slots=True)
class LinkerStats:
    """Counts of linking outcomes, reported by the pipeline."""

    linked: int = 0
    ambiguous_dropped: int = 0

    def merge(self, other: "LinkerStats") -> None:
        self.linked += other.linked
        self.ambiguous_dropped += other.ambiguous_dropped


@dataclass
class EntityLinker:
    """Links sentence spans to knowledge-base entities."""

    kb: KnowledgeBase
    stats: LinkerStats = field(default_factory=LinkerStats)

    def link_sentence(
        self, sentence: Sentence, document_context: Counter | None = None
    ) -> Sentence:
        """Detect and link mentions in place; returns the sentence.

        ``document_context`` is a counter of type-indicator hits for
        the whole document, used as a fallback disambiguation signal.
        """
        mentions, linked, dropped = self.resolve(
            sentence, self.scan(sentence), document_context
        )
        sentence.mentions = mentions
        self.stats.linked += linked
        self.stats.ambiguous_dropped += dropped
        return sentence

    def scan(
        self, sentence: Sentence
    ) -> list[tuple[Span, tuple[Entity, ...]]]:
        """The matching pass: greedy left-to-right longest matches.

        Pure function of the sentence's token texts (disambiguation
        never moves the scan cursor), which is what lets the fast path
        cache scan results per unique sentence text.
        """
        matches: list[tuple[Span, tuple[Entity, ...]]] = []
        lowered = [token.text.lower() for token in sentence.tokens]
        index = 0
        n_tokens = len(lowered)
        while index < n_tokens:
            match = self._longest_match(lowered, index)
            if match is None:
                index += 1
                continue
            span, candidates = match
            matches.append((span, tuple(candidates)))
            index = span.end
        return matches

    def resolve(
        self,
        sentence: Sentence,
        matches: Iterable[tuple[Span, tuple[Entity, ...]]],
        document_context: Counter | None = None,
        sentence_context: Counter | None = None,
    ) -> tuple[list[EntityMention], int, int]:
        """The disambiguation pass over scanned matches.

        Returns ``(mentions, linked, dropped)`` without touching the
        sentence or ``self.stats`` — the caller (or the fast path's
        memo, replaying cached results) applies them.
        """
        if sentence_context is None:
            sentence_context = self._sentence_context(sentence)
        mentions: list[EntityMention] = []
        linked = 0
        dropped = 0
        for span, candidates in matches:
            entity = self._disambiguate(
                candidates, sentence_context, document_context
            )
            if entity is not None:
                mentions.append(
                    EntityMention(
                        span=span,
                        entity_id=entity.id,
                        entity_type=entity.entity_type,
                        surface=" ".join(
                            sentence.tokens[i].text
                            for i in range(span.start, span.end)
                        ),
                    )
                )
                linked += 1
            else:
                dropped += 1
        return mentions, linked, dropped

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def _longest_match(
        self, lowered: list[str], start: int
    ) -> tuple[Span, list[Entity]] | None:
        """Longest alias match beginning at token ``start``.

        ``lowered`` is the sentence's token texts, lower-cased once by
        the caller (:meth:`scan`) instead of per candidate span.
        """
        max_end = min(start + _MAX_MENTION_TOKENS, len(lowered))
        for end in range(max_end, start, -1):
            surface = " ".join(lowered[start:end])
            candidates = self.kb.candidates(surface)
            if candidates:
                return Span(start, end), candidates
            # Naive plural back-off: "kittens" -> "kitten".
            if end == start + 1 and surface.endswith("s"):
                candidates = self.kb.candidates(surface[:-1])
                if candidates:
                    return Span(start, end), candidates
        return None

    # ------------------------------------------------------------------
    # Disambiguation
    # ------------------------------------------------------------------
    def _disambiguate(
        self,
        candidates: Sequence[Entity],
        sentence_context: Counter,
        document_context: Counter | None,
    ) -> Entity | None:
        if len(candidates) == 1:
            return candidates[0]
        scores: dict[str, float] = {}
        for entity in candidates:
            # An in-sentence type indicator must always outrank any
            # amount of document-level background. Secondary type
            # memberships contribute at half weight.
            score = 0.0
            for weight, entity_type in zip(
                (1.0, *(0.5,) * len(entity.other_types)),
                entity.all_types,
            ):
                score += (
                    1000.0
                    * weight
                    * sentence_context.get(entity_type, 0)
                )
                if document_context is not None:
                    score += weight * min(
                        document_context.get(entity_type, 0), 999
                    )
            scores[entity.id] = score
        best = max(scores.values())
        winners = [e for e in candidates if scores[e.id] == best]
        if best > 0 and len(winners) == 1:
            return winners[0]
        return None

    @staticmethod
    def _sentence_context(sentence: Sentence) -> Counter:
        """Type-indicator hits within the sentence itself."""
        context: Counter = Counter()
        for token in sentence.tokens:
            indicated = lexicon.TYPE_NOUNS.get(token.lemma)
            if indicated is not None:
                context[indicated] += 1
        return context


def document_type_context(sentences: list[Sentence]) -> Counter:
    """Aggregate type-indicator hits across a document's sentences."""
    context: Counter = Counter()
    for sentence in sentences:
        for token in sentence.tokens:
            if token.pos is POS.PUNCT:
                continue
            indicated = lexicon.TYPE_NOUNS.get(token.lemma)
            if indicated is not None:
                context[indicated] += 1
    return context
