"""NLP substrate: tokenizer, tagger, dependency parser, entity linker."""

from .annotate import (
    AnnotatedDocument,
    AnnotatedSentence,
    Annotator,
    reset_shared_annotation_state,
)
from .coref import HUMAN_TYPES, PronounResolver
from .deptree import DepNode, DepTree
from .entity_linker import EntityLinker, LinkerStats
from .parser import DependencyParser
from .tagger import tag
from .tokenizer import split_sentences, tokenize, tokenize_document
from .tokens import EntityMention, POS, Sentence, Span, Token

__all__ = [
    "AnnotatedDocument",
    "AnnotatedSentence",
    "Annotator",
    "DepNode",
    "DepTree",
    "DependencyParser",
    "EntityLinker",
    "EntityMention",
    "HUMAN_TYPES",
    "LinkerStats",
    "POS",
    "PronounResolver",
    "Sentence",
    "Span",
    "Token",
    "reset_shared_annotation_state",
    "split_sentences",
    "tag",
    "tokenize",
    "tokenize_document",
]
