"""JSON (de)serialization for the library's durable artefacts.

A deployment mines opinions once and serves them for months; this
module provides stable, versioned JSON round-trips for the knowledge
base, aggregated evidence, fitted model parameters, and the opinion
table. Formats are line-oriented-friendly dicts (no custom classes in
the payload) so files stay diffable and language-agnostic.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from ..core.errors import CheckpointError
from ..core.params import ModelParameters
from ..core.result import OpinionTable
from ..core.types import (
    EvidenceCounts,
    Opinion,
    PropertyTypeKey,
    SubjectiveProperty,
)
from ..extraction.provenance import (
    PairProvenance,
    ProvenanceIndex,
    ProvenanceLedger,
    ProvenanceSample,
)
from ..extraction.statement import EvidenceCounter
from ..kb.entity import Entity
from ..kb.knowledge_base import KnowledgeBase

FORMAT_VERSION = 1


class FormatError(ValueError):
    """Raised when a payload does not match the expected format."""


def _check_version(payload: dict, kind: str) -> None:
    if not isinstance(payload, dict):
        raise FormatError(f"{kind}: expected a JSON object")
    if payload.get("format") != kind:
        raise FormatError(
            f"expected format {kind!r}, got {payload.get('format')!r}"
        )
    if payload.get("version") != FORMAT_VERSION:
        raise FormatError(
            f"{kind}: unsupported version {payload.get('version')!r}"
        )


def _key_to_str(key: PropertyTypeKey) -> str:
    return f"{key.property.text}|{key.entity_type}"


def _key_from_str(text: str) -> PropertyTypeKey:
    property_text, _, entity_type = text.partition("|")
    if not entity_type:
        raise FormatError(f"malformed combination key {text!r}")
    return PropertyTypeKey(
        property=SubjectiveProperty.parse(property_text),
        entity_type=entity_type,
    )


# ---------------------------------------------------------------------------
# Knowledge base
# ---------------------------------------------------------------------------

def kb_to_dict(kb: KnowledgeBase) -> dict[str, Any]:
    return {
        "format": "knowledge_base",
        "version": FORMAT_VERSION,
        "entities": [
            {
                "id": entity.id,
                "name": entity.name,
                "type": entity.entity_type,
                "aliases": list(entity.aliases),
                "attributes": dict(entity.attributes),
            }
            for entity in kb
        ],
    }


def kb_from_dict(payload: dict[str, Any]) -> KnowledgeBase:
    _check_version(payload, "knowledge_base")
    entities = []
    for row in payload["entities"]:
        entities.append(
            Entity(
                id=row["id"],
                name=row["name"],
                entity_type=row["type"],
                aliases=tuple(row.get("aliases", ())),
                attributes={
                    k: float(v)
                    for k, v in row.get("attributes", {}).items()
                },
            )
        )
    return KnowledgeBase(entities)


# ---------------------------------------------------------------------------
# Evidence counts
# ---------------------------------------------------------------------------

def evidence_to_dict(counter: EvidenceCounter) -> dict[str, Any]:
    combinations = {}
    for key in counter.keys():
        combinations[_key_to_str(key)] = {
            entity_id: [counts.positive, counts.negative]
            for entity_id, counts in sorted(
                counter.counts_for(key).items()
            )
        }
    return {
        "format": "evidence",
        "version": FORMAT_VERSION,
        "combinations": combinations,
    }


def evidence_from_dict(payload: dict[str, Any]) -> EvidenceCounter:
    _check_version(payload, "evidence")
    counter = EvidenceCounter()
    from ..core.types import Polarity
    from ..extraction.statement import EvidenceStatement

    for key_text, per_entity in payload["combinations"].items():
        key = _key_from_str(key_text)
        for entity_id, (positive, negative) in per_entity.items():
            for polarity, count in (
                (Polarity.POSITIVE, positive),
                (Polarity.NEGATIVE, negative),
            ):
                for _ in range(int(count)):
                    counter.add(
                        EvidenceStatement(
                            entity_id=entity_id,
                            entity_type=key.entity_type,
                            property=key.property,
                            polarity=polarity,
                            pattern="loaded",
                        )
                    )
    return counter


# ---------------------------------------------------------------------------
# Model parameters
# ---------------------------------------------------------------------------

def parameters_to_dict(
    parameters: dict[PropertyTypeKey, ModelParameters],
) -> dict[str, Any]:
    return {
        "format": "parameters",
        "version": FORMAT_VERSION,
        "combinations": {
            _key_to_str(key): {
                "agreement": value.agreement,
                "rate_positive": value.rate_positive,
                "rate_negative": value.rate_negative,
            }
            for key, value in parameters.items()
        },
    }


def parameters_from_dict(
    payload: dict[str, Any],
) -> dict[PropertyTypeKey, ModelParameters]:
    _check_version(payload, "parameters")
    return {
        _key_from_str(key_text): ModelParameters(
            agreement=row["agreement"],
            rate_positive=row["rate_positive"],
            rate_negative=row["rate_negative"],
        )
        for key_text, row in payload["combinations"].items()
    }


# ---------------------------------------------------------------------------
# Evidence provenance (the opinion table's lineage sidecar)
# ---------------------------------------------------------------------------
#
# A compact companion artefact written next to the opinion table: for
# every (entity, property-type) pair, the exact positive/negative
# statement totals plus a bounded sample of the statements behind them,
# linked to the combination's learned model parameters and convergence
# verdict. Powers `repro explain` and the server's `/explain`.

def _pair_to_dict(pair: PairProvenance) -> dict[str, Any]:
    return {
        "positive": int(pair.positive_seen),
        "negative": int(pair.negative_seen),
        "samples": [sample.to_dict() for sample in pair.samples],
    }


def _pair_from_dict(row: dict[str, Any]) -> PairProvenance:
    return PairProvenance(
        positive_seen=int(row["positive"]),
        negative_seen=int(row["negative"]),
        samples=tuple(
            ProvenanceSample.from_dict(sample)
            for sample in row.get("samples", ())
        ),
    )


def provenance_to_dict(index: ProvenanceIndex) -> dict[str, Any]:
    pairs = {}
    for key in index.keys():
        pairs[_key_to_str(key)] = {
            entity_id: _pair_to_dict(index.for_pair(key, entity_id))
            for entity_id in index.entities_for(key)
        }
    return {
        "format": "provenance",
        "version": FORMAT_VERSION,
        "samples_per_polarity": index.samples_per_polarity,
        "pairs": pairs,
        "models": {
            _key_to_str(key): {
                "agreement": value.agreement,
                "rate_positive": value.rate_positive,
                "rate_negative": value.rate_negative,
            }
            for key, value in index.models().items()
        },
        "convergence": {
            _key_to_str(key): summary
            for key, summary in index.convergence().items()
        },
    }


def provenance_from_dict(payload: dict[str, Any]) -> ProvenanceIndex:
    _check_version(payload, "provenance")
    pairs: dict[PropertyTypeKey, dict[str, PairProvenance]] = {}
    for key_text, per_entity in payload.get("pairs", {}).items():
        key = _key_from_str(key_text)
        pairs[key] = {
            entity_id: _pair_from_dict(row)
            for entity_id, row in per_entity.items()
        }
    models = {
        _key_from_str(key_text): ModelParameters(
            agreement=row["agreement"],
            rate_positive=row["rate_positive"],
            rate_negative=row["rate_negative"],
        )
        for key_text, row in payload.get("models", {}).items()
    }
    convergence = {
        _key_from_str(key_text): dict(summary)
        for key_text, summary in payload.get(
            "convergence", {}
        ).items()
    }
    return ProvenanceIndex(
        pairs,
        models,
        convergence,
        samples_per_polarity=int(
            payload.get("samples_per_polarity", 3)
        ),
    )


def provenance_path_for(artefact: str | Path) -> Path:
    """Where the lineage sidecar for an artefact lives:
    ``opinions.json`` -> ``opinions.json.provenance.json``."""
    artefact = Path(artefact)
    return artefact.with_name(artefact.name + ".provenance.json")


def ledger_to_dict(ledger: ProvenanceLedger) -> dict[str, Any]:
    """A provenance ledger as checkpoint-embeddable primitives.

    Used by shard checkpoints and by the ingest subsystem's persisted
    running state; the payload is not a standalone artefact (no
    format/version envelope) — embed it inside one.
    """
    pairs: dict[str, dict[str, Any]] = {}
    for key, entity_id, pair in ledger.pairs():
        pairs.setdefault(_key_to_str(key), {})[entity_id] = (
            _pair_to_dict(pair)
        )
    return {
        "samples_per_polarity": ledger.samples_per_polarity,
        "pairs": pairs,
    }


def ledger_from_dict(payload: dict[str, Any]) -> ProvenanceLedger:
    ledger = ProvenanceLedger(
        samples_per_polarity=int(
            payload.get("samples_per_polarity", 3)
        )
    )
    for key_text, per_entity in payload.get("pairs", {}).items():
        key = _key_from_str(key_text)
        for entity_id, row in per_entity.items():
            ledger.seed_pair(key, entity_id, _pair_from_dict(row))
    return ledger


# ---------------------------------------------------------------------------
# Shard checkpoints
# ---------------------------------------------------------------------------
#
# The fault-tolerant pipeline persists each completed shard's evidence
# counter (plus its quarantined documents, as plain dicts) so an
# interrupted run can resume without re-mapping finished shards. The
# payload stays primitive — no pipeline types — to keep this module
# free of circular imports.

def shard_checkpoint_to_dict(
    shard_id: int,
    counter: EvidenceCounter,
    dead_letters: list[dict[str, str]] | tuple = (),
    provenance: ProvenanceLedger | None = None,
) -> dict[str, Any]:
    payload = {
        "format": "shard_checkpoint",
        "version": FORMAT_VERSION,
        "shard_id": int(shard_id),
        "evidence": evidence_to_dict(counter),
        "dead_letters": [dict(letter) for letter in dead_letters],
    }
    if provenance is not None:
        payload["provenance"] = ledger_to_dict(provenance)
    return payload


def shard_checkpoint_from_dict(
    payload: dict[str, Any],
) -> tuple[
    int,
    EvidenceCounter,
    list[dict[str, str]],
    ProvenanceLedger | None,
]:
    _check_version(payload, "shard_checkpoint")
    try:
        shard_id = int(payload["shard_id"])
        counter = evidence_from_dict(payload["evidence"])
        dead_letters = [
            dict(letter) for letter in payload.get("dead_letters", ())
        ]
        # Checkpoints written before lineage capture existed simply
        # lack the key; they load with no ledger and the resumed
        # shard contributes no samples.
        raw = payload.get("provenance")
        ledger = ledger_from_dict(raw) if raw is not None else None
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(
            f"malformed shard checkpoint: {error}"
        ) from error
    return shard_id, counter, dead_letters, ledger


def save_shard_checkpoint(
    path: str | Path,
    shard_id: int,
    counter: EvidenceCounter,
    dead_letters: list[dict[str, str]] | tuple = (),
    provenance: ProvenanceLedger | None = None,
) -> Path:
    """Atomically persist one shard's mapped output.

    Write-then-rename, so a run killed mid-write never leaves a
    half-written checkpoint behind — the next run sees either the
    complete file or nothing.
    """
    path = Path(path)
    payload = shard_checkpoint_to_dict(
        shard_id, counter, dead_letters, provenance
    )
    _atomic_write_text(
        path, json.dumps(payload, indent=1, sort_keys=True)
    )
    return path


def load_shard_checkpoint(
    path: str | Path,
) -> tuple[
    int,
    EvidenceCounter,
    list[dict[str, str]],
    ProvenanceLedger | None,
]:
    """Load one shard checkpoint; corruption raises :class:`CheckpointError`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CheckpointError(
            f"{path}: unreadable shard checkpoint: {error}"
        ) from error
    try:
        return shard_checkpoint_from_dict(payload)
    except FormatError as error:
        raise CheckpointError(f"{path}: {error}") from error


# ---------------------------------------------------------------------------
# Opinion table
# ---------------------------------------------------------------------------

def opinions_to_dict(table: OpinionTable) -> dict[str, Any]:
    rows = []
    for opinion in table:
        rows.append(
            {
                "entity": opinion.entity_id,
                "key": _key_to_str(opinion.key),
                "probability": opinion.probability,
                "positive": opinion.evidence.positive,
                "negative": opinion.evidence.negative,
            }
        )
    rows.sort(key=lambda row: (row["key"], row["entity"]))
    return {
        "format": "opinions",
        "version": FORMAT_VERSION,
        "opinions": rows,
        # Combinations whose EM fit fell back to majority vote; query
        # surfaces flag their answers as degraded.
        "degraded": sorted(
            _key_to_str(key) for key in table.degraded_keys
        ),
    }


def opinions_from_dict(payload: dict[str, Any]) -> OpinionTable:
    _check_version(payload, "opinions")
    table = OpinionTable()
    for row in payload["opinions"]:
        table.add(
            Opinion(
                entity_id=row["entity"],
                key=_key_from_str(row["key"]),
                probability=float(row["probability"]),
                evidence=EvidenceCounts(
                    int(row["positive"]), int(row["negative"])
                ),
            )
        )
    # Files written before the flag existed simply have none.
    for key_text in payload.get("degraded", ()):
        table.mark_degraded(_key_from_str(key_text))
    return table


# ---------------------------------------------------------------------------
# File helpers
# ---------------------------------------------------------------------------

_SAVERS = {
    KnowledgeBase: kb_to_dict,
    EvidenceCounter: evidence_to_dict,
    OpinionTable: opinions_to_dict,
    ProvenanceIndex: provenance_to_dict,
}

_LOADERS = {
    "knowledge_base": kb_from_dict,
    "evidence": evidence_from_dict,
    "parameters": parameters_from_dict,
    "opinions": opinions_from_dict,
    "shard_checkpoint": shard_checkpoint_from_dict,
    "provenance": provenance_from_dict,
}


def _atomic_write_text(path: Path, text: str) -> None:
    """Write via a sibling temp file and rename, so readers never see
    a torn file even if the process dies mid-write."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def save(obj: Any, path: str | Path) -> Path:
    """Serialize a KB, evidence counter, opinion table, or a
    ``{key: ModelParameters}`` mapping to a JSON file."""
    path = Path(path)
    if isinstance(obj, dict):
        payload = parameters_to_dict(obj)
    else:
        for cls, saver in _SAVERS.items():
            if isinstance(obj, cls):
                payload = saver(obj)
                break
        else:
            raise TypeError(f"cannot serialize {type(obj).__name__}")
    _atomic_write_text(
        path, json.dumps(payload, indent=1, sort_keys=True)
    )
    return path


def load(path: str | Path) -> Any:
    """Load any artefact saved by :func:`save`; dispatches on the
    embedded format tag."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "format" not in payload:
        raise FormatError(f"{path}: not a repro artefact")
    loader = _LOADERS.get(payload["format"])
    if loader is None:
        raise FormatError(f"unknown format {payload['format']!r}")
    return loader(payload)
