"""Versioned JSON persistence for mined artefacts."""

from .serialize import (
    FORMAT_VERSION,
    FormatError,
    evidence_from_dict,
    evidence_to_dict,
    kb_from_dict,
    kb_to_dict,
    load,
    load_shard_checkpoint,
    opinions_from_dict,
    opinions_to_dict,
    parameters_from_dict,
    parameters_to_dict,
    save,
    save_shard_checkpoint,
    shard_checkpoint_from_dict,
    shard_checkpoint_to_dict,
)

__all__ = [
    "FORMAT_VERSION",
    "FormatError",
    "evidence_from_dict",
    "evidence_to_dict",
    "kb_from_dict",
    "kb_to_dict",
    "load",
    "load_shard_checkpoint",
    "opinions_from_dict",
    "opinions_to_dict",
    "parameters_from_dict",
    "parameters_to_dict",
    "save",
    "save_shard_checkpoint",
    "shard_checkpoint_from_dict",
    "shard_checkpoint_to_dict",
]
