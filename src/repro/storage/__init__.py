"""Versioned JSON persistence for mined artefacts."""

from .serialize import (
    FORMAT_VERSION,
    FormatError,
    evidence_from_dict,
    evidence_to_dict,
    kb_from_dict,
    kb_to_dict,
    load,
    opinions_from_dict,
    opinions_to_dict,
    parameters_from_dict,
    parameters_to_dict,
    save,
)

__all__ = [
    "FORMAT_VERSION",
    "FormatError",
    "evidence_from_dict",
    "evidence_to_dict",
    "kb_from_dict",
    "kb_to_dict",
    "load",
    "opinions_from_dict",
    "opinions_to_dict",
    "parameters_from_dict",
    "parameters_to_dict",
    "save",
]
