"""Post-mining analysis: controversy, disagreement, table diffing."""

from .compare import OpinionDelta, TableComparison, compare_tables
from .controversy import (
    ControversyReport,
    controversy_report,
    find_controversial,
)

__all__ = [
    "ControversyReport",
    "OpinionDelta",
    "TableComparison",
    "compare_tables",
    "controversy_report",
    "find_controversial",
]
