"""Comparing opinion tables — regional or temporal divergence.

Section 2 notes that Chinese and American users may disagree about
what makes a city big; mining per-region sub-corpora yields one
opinion table per user group. This module diffs two such tables:
pairs decided by both sides, pairs where they disagree, and pairs only
one side can decide, each with the posterior confidence of both sides.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.result import OpinionTable
from ..core.types import Polarity, PropertyTypeKey


@dataclass(frozen=True, slots=True)
class OpinionDelta:
    """One pair's standing in the two tables."""

    entity_id: str
    key: PropertyTypeKey
    left_probability: float | None
    right_probability: float | None

    @property
    def left_polarity(self) -> Polarity:
        return _polarity(self.left_probability)

    @property
    def right_polarity(self) -> Polarity:
        return _polarity(self.right_probability)

    @property
    def disagrees(self) -> bool:
        """Both sides decided, with opposite polarity."""
        return (
            self.left_polarity is not Polarity.NEUTRAL
            and self.right_polarity is not Polarity.NEUTRAL
            and self.left_polarity is not self.right_polarity
        )

    @property
    def confidence_gap(self) -> float:
        """How far apart the two posteriors are (0 when either side
        is undecided/unknown)."""
        if self.left_probability is None or self.right_probability is None:
            return 0.0
        return abs(self.left_probability - self.right_probability)

    def row(self) -> str:
        left = _format(self.left_probability)
        right = _format(self.right_probability)
        return (
            f"{self.entity_id:28s} {str(self.key):24s} "
            f"{left} vs {right}"
        )


@dataclass(frozen=True, slots=True)
class TableComparison:
    """The full diff between two opinion tables."""

    left_name: str
    right_name: str
    agreements: tuple[OpinionDelta, ...]
    disagreements: tuple[OpinionDelta, ...]
    left_only: tuple[OpinionDelta, ...]
    right_only: tuple[OpinionDelta, ...]

    @property
    def n_shared(self) -> int:
        return len(self.agreements) + len(self.disagreements)

    @property
    def agreement_rate(self) -> float:
        if self.n_shared == 0:
            return 0.0
        return len(self.agreements) / self.n_shared

    def summary(self) -> str:
        return (
            f"{self.left_name} vs {self.right_name}: "
            f"{self.n_shared} shared decisions, "
            f"{len(self.disagreements)} disagreements "
            f"(agreement rate {self.agreement_rate:.2f}), "
            f"{len(self.left_only)} only-{self.left_name}, "
            f"{len(self.right_only)} only-{self.right_name}"
        )


def compare_tables(
    left: OpinionTable,
    right: OpinionTable,
    left_name: str = "left",
    right_name: str = "right",
) -> TableComparison:
    """Diff two opinion tables over the union of their decided pairs."""
    pairs: set[tuple[str, PropertyTypeKey]] = set()
    for table in (left, right):
        for opinion in table:
            if opinion.decided:
                pairs.add((opinion.entity_id, opinion.key))

    agreements: list[OpinionDelta] = []
    disagreements: list[OpinionDelta] = []
    left_only: list[OpinionDelta] = []
    right_only: list[OpinionDelta] = []
    for entity_id, key in sorted(pairs, key=lambda p: (str(p[1]), p[0])):
        left_opinion = left.get(entity_id, key)
        right_opinion = right.get(entity_id, key)
        delta = OpinionDelta(
            entity_id=entity_id,
            key=key,
            left_probability=(
                left_opinion.probability
                if left_opinion is not None
                else None
            ),
            right_probability=(
                right_opinion.probability
                if right_opinion is not None
                else None
            ),
        )
        left_decided = delta.left_polarity is not Polarity.NEUTRAL
        right_decided = delta.right_polarity is not Polarity.NEUTRAL
        if left_decided and right_decided:
            if delta.disagrees:
                disagreements.append(delta)
            else:
                agreements.append(delta)
        elif left_decided:
            left_only.append(delta)
        else:
            right_only.append(delta)
    disagreements.sort(key=lambda d: -d.confidence_gap)
    return TableComparison(
        left_name=left_name,
        right_name=right_name,
        agreements=tuple(agreements),
        disagreements=tuple(disagreements),
        left_only=tuple(left_only),
        right_only=tuple(right_only),
    )


def _polarity(probability: float | None) -> Polarity:
    if probability is None or probability == 0.5:
        return Polarity.NEUTRAL
    return Polarity.POSITIVE if probability > 0.5 else Polarity.NEGATIVE


def _format(probability: float | None) -> str:
    if probability is None:
        return "  ?  "
    return f"{_polarity(probability).value}:{probability:.2f}"
