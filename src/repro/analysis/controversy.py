"""Controversy analysis over mined evidence.

The paper's Section 2 observes that "a significant fraction of users
disagrees with the dominant opinion" for many pairs. Once the model is
fit, that disagreement is measurable per entity:

* the **observed minority share** — the fraction of statements that
  contradict the mined dominant opinion;
* the **expected minority share** under the fitted model — for a
  positive-dominant entity, `λ−+ / (λ++ + λ−+)`;
* the **controversy score** — how far the observed mix exceeds the
  expectation, normalized to [0, 1] via the binomial tail. A pair
  whose statements split far more evenly than the combination's
  agreement parameter predicts is genuinely contested (the paper's
  `frog`-is-cute case), not merely noisy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.result import OpinionTable
from ..core.surveyor import FittedCombination
from ..core.types import (
    EvidenceCounts,
    Opinion,
    Polarity,
    PropertyTypeKey,
)


@dataclass(frozen=True, slots=True)
class ControversyReport:
    """Disagreement diagnostics for one entity-property pair."""

    entity_id: str
    key: PropertyTypeKey
    polarity: Polarity
    evidence: EvidenceCounts
    observed_minority_share: float
    expected_minority_share: float
    score: float

    def row(self) -> str:
        return (
            f"{self.entity_id:28s} {self.polarity.value} "
            f"minority observed={self.observed_minority_share:.2f} "
            f"expected={self.expected_minority_share:.2f} "
            f"score={self.score:.3f} "
            f"(+{self.evidence.positive}/-{self.evidence.negative})"
        )


def controversy_report(
    opinion: Opinion, fit: FittedCombination
) -> ControversyReport:
    """Diagnose one mined opinion against its combination's fit."""
    rates = fit.parameters.poisson_rates()
    if opinion.polarity is Polarity.NEGATIVE:
        minority_count = opinion.evidence.positive
        rate_minority = rates.pos_given_neg
        rate_majority = rates.neg_given_neg
    else:
        # NEUTRAL pairs are treated like positives for the expectation;
        # their score is dominated by the even observed mix anyway.
        minority_count = opinion.evidence.negative
        rate_minority = rates.neg_given_pos
        rate_majority = rates.pos_given_pos
    total = opinion.evidence.total
    observed = minority_count / total if total else 0.0
    denominator = rate_minority + rate_majority
    expected = rate_minority / denominator if denominator > 0 else 0.0
    score = _binomial_excess(minority_count, total, expected)
    return ControversyReport(
        entity_id=opinion.entity_id,
        key=opinion.key,
        polarity=opinion.polarity,
        evidence=opinion.evidence,
        observed_minority_share=observed,
        expected_minority_share=expected,
        score=score,
    )


def find_controversial(
    table: OpinionTable,
    fits: dict[PropertyTypeKey, FittedCombination],
    min_statements: int = 5,
    top: int = 20,
) -> list[ControversyReport]:
    """Most-contested pairs across the table, highest score first.

    Pairs with fewer than ``min_statements`` are skipped: with two
    statements an even split carries no signal.
    """
    reports = []
    for opinion in table:
        if opinion.evidence.total < min_statements:
            continue
        fit = fits.get(opinion.key)
        if fit is None:
            continue
        reports.append(controversy_report(opinion, fit))
    reports.sort(key=lambda report: report.score, reverse=True)
    return reports[:top]


def _binomial_excess(successes: int, trials: int, p: float) -> float:
    """``Pr(X <= successes)`` shortfall turned into an excess score.

    Returns the probability that a Binomial(trials, p) sample shows
    *fewer* minority statements than observed — near 1 when the
    observed disagreement far exceeds the model's expectation, near 0
    when the mix is at or below expectation.
    """
    if trials == 0:
        return 0.0
    p = min(max(p, 1e-12), 1 - 1e-12)
    cumulative = 0.0
    for k in range(successes):
        cumulative += math.exp(
            _log_comb(trials, k)
            + k * math.log(p)
            + (trials - k) * math.log(1.0 - p)
        )
    return min(max(cumulative, 0.0), 1.0)


def _log_comb(n: int, k: int) -> float:
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )
