"""Adapter exposing the Surveyor model through the interpreter API.

Lets the evaluation harness treat the paper's system and the baselines
uniformly. Pairs below the occurrence threshold (which Surveyor skips)
are reported as undecided so coverage accounting stays comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.em import EMLearner
from ..core.result import OpinionTable
from ..core.surveyor import EntityCatalog, Surveyor
from ..core.types import Polarity
from .base import Evidence, Interpreter


@dataclass
class SurveyorInterpreter(Interpreter):
    """The probabilistic model behind the interpreter interface."""

    name = "Surveyor"

    occurrence_threshold: int = 1
    learner: EMLearner = field(default_factory=EMLearner)

    def interpret(
        self, evidence: Evidence, catalog: EntityCatalog
    ) -> OpinionTable:
        surveyor = Surveyor(
            catalog=catalog,
            occurrence_threshold=self.occurrence_threshold,
            learner=self.learner,
            emit_undecided=True,
        )
        result = surveyor.run(evidence)
        table = result.opinions
        # Pairs in skipped combinations: undecided, for fair coverage.
        for key in result.skipped:
            per_entity = self.full_pairs(
                {key: evidence[key]}, catalog
            )[key]
            for entity_id, counts in per_entity.items():
                table.add(
                    self.opinion_from_polarity(
                        entity_id, key, Polarity.NEUTRAL, counts
                    )
                )
        return table
