"""WebChild-like comparator (Tandon et al., WSDM 2014).

WebChild harvests noun-adjective associations for commonsense
relations. Used as a comparator for subjective property mining it has
two structural handicaps the paper calls out (Section 7.4):

* it does **not** detect negations — a sentence "tigers are not cute"
  still counts as a (tiger, cute) co-occurrence, producing false
  positives on controversial properties;
* an entity-property pair is asserted only if the pair made it into
  the harvested knowledge base; absence is read as a negative
  assertion, so coverage is limited to harvested entities.

This module reconstructs that behaviour from our evidence counts: the
harvested KB contains the entities whose *negation-blind* mention count
reaches a support threshold — plus a hash-random slice of everything
else, standing in for WebChild's independent harvesting pipeline whose
recall only partially overlaps our extraction — and a property is
asserted for a harvested entity when the blind co-occurrence count
reaches the assertion threshold.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass

from ..core.result import OpinionTable
from ..core.surveyor import EntityCatalog
from ..core.types import Polarity
from .base import Evidence, Interpreter


@dataclass
class WebChildLike(Interpreter):
    """Negation-blind, co-occurrence-thresholded comparator.

    Parameters
    ----------
    membership_threshold:
        Minimum total (blind) statements across all properties for an
        entity to enter the harvested KB; entities below it yield no
        decision for any property (the coverage loss).
    assertion_threshold:
        Minimum blind co-occurrence count for asserting a property of
        a harvested entity.
    harvest_rate:
        Probability (by stable hash of the entity ID) that an entity
        enters the harvested KB independently of our evidence counts —
        WebChild mines with its own patterns over its own crawl.
    """

    name = "WebChild"

    membership_threshold: int = 12
    assertion_threshold: int = 2
    harvest_rate: float = 0.1

    def interpret(
        self, evidence: Evidence, catalog: EntityCatalog
    ) -> OpinionTable:
        harvested = self.harvested_entities(evidence)
        table = OpinionTable()
        for key, per_entity in self.full_pairs(evidence, catalog).items():
            for entity_id, counts in per_entity.items():
                if entity_id not in harvested and not self._lucky_harvest(
                    entity_id
                ):
                    polarity = Polarity.NEUTRAL
                elif counts.total >= self.assertion_threshold:
                    # Negation-blind: any co-occurrence is support.
                    polarity = Polarity.POSITIVE
                else:
                    # In the KB but the pair was not harvested:
                    # absence read as a negative assertion.
                    polarity = Polarity.NEGATIVE
                table.add(
                    self.opinion_from_polarity(
                        entity_id, key, polarity, counts
                    )
                )
        return table

    def harvested_entities(self, evidence: Evidence) -> set[str]:
        """Entities with enough blind support to enter the KB.

        Besides the support-thresholded entities, every entity seen in
        the evidence join passes an independent hash-random harvest
        check (see ``harvest_rate``).
        """
        support: dict[str, int] = defaultdict(int)
        for per_entity in evidence.values():
            for entity_id in per_entity:
                support[entity_id] += per_entity[entity_id].total
        return {
            entity_id
            for entity_id, total in support.items()
            if total >= self.membership_threshold
            or self._lucky_harvest(entity_id)
        }

    def _lucky_harvest(self, entity_id: str) -> bool:
        digest = hashlib.sha256(
            f"webchild/{entity_id}".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:4], "big") / 2**32
        return fraction < self.harvest_rate
