"""Common interface for evidence interpreters.

An interpreter turns the extracted evidence (per property-type, per
entity statement counts) into an :class:`~repro.core.result.OpinionTable`.
The experimental section compares four interpreters on the same
evidence: majority vote, scaled majority vote, a WebChild-like
comparator, and Surveyor's probabilistic model.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping

from ..core.result import OpinionTable
from ..core.surveyor import EntityCatalog
from ..core.types import (
    EvidenceCounts,
    Opinion,
    Polarity,
    PropertyTypeKey,
)

Evidence = Mapping[PropertyTypeKey, Mapping[str, EvidenceCounts]]


class Interpreter(abc.ABC):
    """Turns evidence counts into dominant-opinion decisions."""

    #: Display name used in benchmark tables.
    name: str = "interpreter"

    @abc.abstractmethod
    def interpret(
        self, evidence: Evidence, catalog: EntityCatalog
    ) -> OpinionTable:
        """Produce opinions for all entities of every evidenced type.

        Implementations must include *undecided* pairs (probability
        0.5) so evaluation can distinguish "decided wrong" from "no
        decision" when computing coverage.
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def full_pairs(
        evidence: Evidence, catalog: EntityCatalog
    ) -> dict[PropertyTypeKey, dict[str, EvidenceCounts]]:
        """Join evidence with the catalog, padding absentees with zeros."""
        joined: dict[PropertyTypeKey, dict[str, EvidenceCounts]] = {}
        for key, per_entity in evidence.items():
            ids = set(catalog.entity_ids_of_type(key.entity_type))
            ids.update(per_entity)
            joined[key] = {
                entity_id: per_entity.get(entity_id, EvidenceCounts.ZERO)
                for entity_id in sorted(ids)
            }
        return joined

    @staticmethod
    def opinion_from_polarity(
        entity_id: str,
        key: PropertyTypeKey,
        polarity: Polarity,
        counts: EvidenceCounts,
    ) -> Opinion:
        """Wrap a hard decision as an opinion (probability 1 / 0 / 0.5)."""
        probability = {
            Polarity.POSITIVE: 1.0,
            Polarity.NEGATIVE: 0.0,
            Polarity.NEUTRAL: 0.5,
        }[polarity]
        return Opinion(
            entity_id=entity_id,
            key=key,
            probability=probability,
            evidence=counts,
        )
