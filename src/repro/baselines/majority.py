"""Majority-vote and scaled-majority-vote baselines (Section 7.4).

**Majority Vote (MV)** marks a property as applying when positive
statements outnumber negative ones and vice versa; equal counters
(including the common zero-zero case) yield no decision.

**Scaled Majority Vote (SMV)** first scales the negative counter by the
global average ratio of positive to negative statements — a gross,
type-and-property-independent correction of the Web's bias against
negative statements — and then votes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.result import OpinionTable
from ..core.surveyor import EntityCatalog
from ..core.types import EvidenceCounts, Polarity
from .base import Evidence, Interpreter


class MajorityVote(Interpreter):
    """Plain count comparison per entity-property pair."""

    name = "Majority Vote"

    def interpret(
        self, evidence: Evidence, catalog: EntityCatalog
    ) -> OpinionTable:
        table = OpinionTable()
        for key, per_entity in self.full_pairs(evidence, catalog).items():
            for entity_id, counts in per_entity.items():
                table.add(
                    self.opinion_from_polarity(
                        entity_id, key, counts.majority(), counts
                    )
                )
        return table


@dataclass
class ScaledMajorityVote(Interpreter):
    """Majority vote after scaling negatives by the global bias ratio.

    The scale factor is ``total positive / total negative`` across the
    *entire* evidence set — deliberately global: the paper uses SMV to
    show that a universal polarity-bias correction is not enough, as
    the bias varies per property-type combination.
    """

    name = "Scaled Majority Vote"

    #: Fallback scale when no negative statements exist at all.
    default_scale: float = 1.0

    def interpret(
        self, evidence: Evidence, catalog: EntityCatalog
    ) -> OpinionTable:
        scale = self.global_scale(evidence)
        table = OpinionTable()
        for key, per_entity in self.full_pairs(evidence, catalog).items():
            for entity_id, counts in per_entity.items():
                table.add(
                    self.opinion_from_polarity(
                        entity_id,
                        key,
                        self.scaled_vote(counts, scale),
                        counts,
                    )
                )
        return table

    def global_scale(self, evidence: Evidence) -> float:
        """Average ratio of positive to negative statements."""
        positive = 0
        negative = 0
        for per_entity in evidence.values():
            for counts in per_entity.values():
                positive += counts.positive
                negative += counts.negative
        if negative == 0:
            return self.default_scale
        return positive / negative

    @staticmethod
    def scaled_vote(counts: EvidenceCounts, scale: float) -> Polarity:
        scaled_negative = counts.negative * scale
        if counts.positive > scaled_negative:
            return Polarity.POSITIVE
        if counts.positive < scaled_negative:
            return Polarity.NEGATIVE
        return Polarity.NEUTRAL
