"""Baseline interpreters compared against Surveyor in Section 7."""

from .base import Evidence, Interpreter
from .majority import MajorityVote, ScaledMajorityVote
from .surveyor_adapter import SurveyorInterpreter
from .webchild import WebChildLike

__all__ = [
    "Evidence",
    "Interpreter",
    "MajorityVote",
    "ScaledMajorityVote",
    "SurveyorInterpreter",
    "WebChildLike",
]


def standard_interpreters() -> list[Interpreter]:
    """The four methods of Table 3, in the paper's row order."""
    return [
        MajorityVote(),
        ScaledMajorityVote(),
        WebChildLike(),
        SurveyorInterpreter(),
    ]
