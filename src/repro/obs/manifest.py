"""Run manifests: what produced this opinion table, exactly.

A deployment mines opinions once and serves them for months; when a
table misbehaves later, the first question is "what run made this?".
The manifest — written next to the opinion table — answers it: the
resolved configuration, the code version (``git describe`` when
available), wall-clock start and duration, and the run's health
summary.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Any

MANIFEST_FORMAT = "run_manifest"
MANIFEST_VERSION = 1


def git_describe() -> str | None:
    """``git describe --always --dirty`` of the source tree, or None
    outside a checkout / without git."""
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if result.returncode != 0:
        return None
    return result.stdout.strip() or None


def health_summary(health: Any) -> dict[str, Any]:
    """Flatten a ``PipelineHealth`` ledger to primitives (duck-typed)."""
    return {
        "healthy": bool(health.healthy),
        "retries": health.retries,
        "quarantined": len(health.quarantined),
        "failed_shards": len(health.failed_shards),
        "empty_shards": health.empty_shards,
        "resumed_shards": health.resumed_shards,
        "checkpointed_shards": health.checkpointed_shards,
        "corrupt_checkpoints": health.corrupt_checkpoints,
        "degraded_combinations": list(health.degraded_combinations),
    }


def build_manifest(
    *,
    command: str,
    config: dict[str, Any],
    started_unix: float,
    duration_seconds: float,
    health: Any = None,
    outputs: dict[str, str] | None = None,
) -> dict[str, Any]:
    """Assemble the manifest payload (pure; no filesystem access
    beyond ``git describe``)."""
    return {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "command": command,
        "config": config,
        "git_describe": git_describe(),
        "python": sys.version.split()[0],
        "started_at": time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime(started_unix)
        ),
        "duration_seconds": round(duration_seconds, 6),
        "health": None if health is None else health_summary(health),
        "outputs": dict(outputs or {}),
    }


def manifest_path_for(artefact: str | Path) -> Path:
    """Manifest filename convention: ``<artefact>.manifest.json``."""
    artefact = Path(artefact)
    return artefact.with_name(artefact.name + ".manifest.json")


def write_manifest(
    path: str | Path, payload: dict[str, Any]
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
    return path


def read_manifest(path: str | Path) -> dict[str, Any]:
    """Load a manifest written by :func:`write_manifest`.

    Validates the format tag and version; extra keys pass through
    untouched so newer writers stay readable.
    """
    path = Path(path)
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: manifest is not a JSON object")
    if payload.get("format") != MANIFEST_FORMAT:
        raise ValueError(
            f"{path}: expected format {MANIFEST_FORMAT!r}, got "
            f"{payload.get('format')!r}"
        )
    if payload.get("version") != MANIFEST_VERSION:
        raise ValueError(
            f"{path}: unsupported manifest version "
            f"{payload.get('version')!r}"
        )
    return payload
