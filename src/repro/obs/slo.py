"""Serving SLOs with multi-window burn-rate tracking.

Two service-level objectives guard the query path (the paper's
Surveyor is a production service; an SLO is how a production service
states "working"):

* **availability** — the fraction of requests answered without a 5xx
  (deliberate shedding included: a 503 is budget spent protecting the
  service, and the user still got no answer);
* **latency** — the fraction of requests answered under a threshold
  (default 250 ms, matching the request deadline's order of
  magnitude).

Each SLO burns an *error budget* of ``1 - objective``. The burn rate
over a window is ``bad_fraction / (1 - objective)`` — 1.0 means the
budget is being spent exactly as fast as it accrues, 14.4 means a
30-day budget is gone in ~2 days. Following the classic multi-window
rule, an alert needs BOTH the fast (5 min) and slow (1 h) windows
over threshold: the fast window makes the alert responsive, the slow
window stops a single bad second from paging.

Windows are slot rings (same arithmetic as
:class:`~repro.obs.histogram.WindowedHistogram`): no background
threads, stale slots age out on touch, and everything is deterministic
under an injected clock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

#: Default objectives — modest on purpose: a single-machine demo
#: service should page rarely, not model Google's four nines.
DEFAULT_AVAILABILITY_OBJECTIVE = 0.999
DEFAULT_LATENCY_OBJECTIVE = 0.99
DEFAULT_LATENCY_THRESHOLD = 0.25

#: Multi-window burn thresholds (Google SRE workbook shape): both
#: windows past PAGE pages, both past WARN opens a ticket.
BURN_PAGE = 14.4
BURN_WARN = 6.0

#: The two burn windows: responsive and sustained.
FAST_WINDOW_SECONDS = 300.0
SLOW_WINDOW_SECONDS = 3600.0

#: SLO states ordered by severity (also exposed as a gauge).
SLO_STATES = ("ok", "warn", "page")


class _RollingCounts:
    """Good/bad tallies over a rolling window (slot-ring, lock-free
    reads are NOT safe — callers hold the tracker's lock)."""

    __slots__ = ("window_seconds", "slots", "slot_seconds", "_ring")

    def __init__(self, window_seconds: float, slots: int) -> None:
        self.window_seconds = float(window_seconds)
        self.slots = int(slots)
        self.slot_seconds = self.window_seconds / self.slots
        # slot position -> [epoch, good, bad]
        self._ring = [[-1, 0, 0] for _ in range(self.slots)]

    def add(self, now: float, good: int, bad: int) -> None:
        epoch = int(now // self.slot_seconds)
        cell = self._ring[epoch % self.slots]
        if cell[0] != epoch:
            cell[0], cell[1], cell[2] = epoch, 0, 0
        cell[1] += good
        cell[2] += bad

    def totals(self, now: float) -> tuple[int, int]:
        now_epoch = int(now // self.slot_seconds)
        good = bad = 0
        for epoch, g, b in self._ring:
            if epoch >= 0 and now_epoch - epoch < self.slots:
                good += g
                bad += b
        return good, bad


@dataclass(frozen=True, slots=True)
class SloSpec:
    """One objective: name, target fraction, and what counts as bad."""

    name: str
    objective: float
    description: str

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"{self.name}: objective must be in (0, 1), "
                f"got {self.objective}"
            )

    @property
    def budget(self) -> float:
        return 1.0 - self.objective


class SloTracker:
    """Record request outcomes; answer burn rates per SLO per window.

    Thread-safe: the serving handler pool calls :meth:`record`
    concurrently; ``/healthz`` and ``/metrics`` read via
    :meth:`burn_rates` / :meth:`report`.
    """

    def __init__(
        self,
        *,
        availability_objective: float = DEFAULT_AVAILABILITY_OBJECTIVE,
        latency_objective: float = DEFAULT_LATENCY_OBJECTIVE,
        latency_threshold: float = DEFAULT_LATENCY_THRESHOLD,
        fast_window: float = FAST_WINDOW_SECONDS,
        slow_window: float = SLOW_WINDOW_SECONDS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if latency_threshold <= 0:
            raise ValueError(
                "latency_threshold must be positive, "
                f"got {latency_threshold}"
            )
        if not fast_window < slow_window:
            raise ValueError(
                f"fast window ({fast_window}s) must be shorter than "
                f"the slow window ({slow_window}s)"
            )
        self.availability = SloSpec(
            "availability",
            availability_objective,
            "requests answered without a 5xx",
        )
        self.latency = SloSpec(
            "latency",
            latency_objective,
            f"requests answered within "
            f"{latency_threshold * 1000:g} ms",
        )
        self.latency_threshold = float(latency_threshold)
        self.windows: dict[str, float] = {
            "fast": float(fast_window),
            "slow": float(slow_window),
        }
        self._clock = clock
        self._lock = threading.Lock()
        self._counts: dict[tuple[str, str], _RollingCounts] = {
            (slo, window): _RollingCounts(seconds, 30)
            for slo in ("availability", "latency")
            for window, seconds in self.windows.items()
        }

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, status: int, seconds: float) -> None:
        """Account one finished request against both SLOs."""
        available = status < 500
        fast_enough = (
            available and seconds <= self.latency_threshold
        )
        with self._lock:
            now = self._clock()
            for window in self.windows:
                self._counts[("availability", window)].add(
                    now, int(available), int(not available)
                )
                self._counts[("latency", window)].add(
                    now, int(fast_enough), int(not fast_enough)
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _spec(self, slo: str) -> SloSpec:
        return (
            self.availability
            if slo == "availability"
            else self.latency
        )

    def burn_rates(self) -> dict[str, dict[str, float]]:
        """``{slo: {window: burn_rate}}`` — 0.0 for empty windows."""
        with self._lock:
            now = self._clock()
            rates: dict[str, dict[str, float]] = {}
            for slo in ("availability", "latency"):
                budget = self._spec(slo).budget
                rates[slo] = {}
                for window in self.windows:
                    good, bad = self._counts[(slo, window)].totals(
                        now
                    )
                    total = good + bad
                    bad_fraction = bad / total if total else 0.0
                    rates[slo][window] = bad_fraction / budget
            return rates

    @staticmethod
    def _state_for(rates: dict[str, float]) -> str:
        """Multi-window rule: both windows must agree to escalate."""
        if all(rate >= BURN_PAGE for rate in rates.values()):
            return "page"
        if all(rate >= BURN_WARN for rate in rates.values()):
            return "warn"
        return "ok"

    def state(self) -> str:
        """The worst state across SLOs (``ok`` / ``warn`` / ``page``)."""
        rates = self.burn_rates()
        worst = "ok"
        for slo_rates in rates.values():
            candidate = self._state_for(slo_rates)
            if SLO_STATES.index(candidate) > SLO_STATES.index(worst):
                worst = candidate
        return worst

    def report(self) -> dict[str, Any]:
        """The ``/healthz`` SLO block (JSON-safe)."""
        rates = self.burn_rates()
        report: dict[str, Any] = {
            "windows_seconds": dict(self.windows),
            "thresholds": {"warn": BURN_WARN, "page": BURN_PAGE},
        }
        worst = "ok"
        for slo in ("availability", "latency"):
            spec = self._spec(slo)
            state = self._state_for(rates[slo])
            if SLO_STATES.index(state) > SLO_STATES.index(worst):
                worst = state
            entry: dict[str, Any] = {
                "objective": spec.objective,
                "description": spec.description,
                "burn_rates": rates[slo],
                "state": state,
            }
            if slo == "latency":
                entry["threshold_seconds"] = self.latency_threshold
            report[slo] = entry
        report["state"] = worst
        return report
