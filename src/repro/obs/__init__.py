"""Observability subsystem: tracing, metrics, and EM telemetry.

Three pillars, all deterministic and dependency-free:

* :mod:`repro.obs.trace` — nested spans with a JSONL sink that survives
  the process-pool boundary (worker spans are exported, shipped back
  with shard results, and re-parented);
* :mod:`repro.obs.metrics` — a declared-name registry of counters,
  gauges, fixed-bucket histograms, and log-bucketed streaming
  histograms (:mod:`repro.obs.histogram`, exemplar-bearing) with
  Prometheus-style exposition and JSON export;
* :mod:`repro.obs.convergence` — per-combination EM fit trajectories
  (log-likelihood, ``pA``/``np+S``/``np−S``) with verdicts.

:mod:`repro.obs.manifest` stamps each run (config, git describe, wall
clock, health) and :mod:`repro.obs.stats` renders recorded traces for
``repro stats`` and ``--profile``. The serving side adds
:mod:`repro.obs.slo` (availability/latency SLOs with multi-window
burn rates) and :mod:`repro.obs.live` (the ``repro top`` console).
"""

from .baseline import (
    DEFAULT_TOLERANCES,
    ComparisonReport,
    MetricVerdict,
    compare,
    discover_trajectories,
    load_baseline,
    record_baseline,
    trend,
    validate_baseline,
    write_baseline,
)
from .convergence import (
    ConvergenceRecord,
    load_convergence,
    record_from_fit,
    records_from_result,
    records_to_payload,
    save_convergence,
)
from .drift import (
    DRIFT_FORMAT,
    DriftReport,
    PropertyDrift,
    compare_tables,
)
from .histogram import StreamingHistogram, WindowedHistogram
from .live import (
    parse_exposition,
    render_frame,
    run_top,
    validate_serve_observability,
)
from .manifest import (
    build_manifest,
    git_describe,
    manifest_path_for,
    read_manifest,
    write_manifest,
)
from .metrics import (
    CATALOG,
    MetricsError,
    MetricSpec,
    MetricsRegistry,
    load_metrics_file,
    validate_metrics_payload,
)
from .perf import (
    BENCH_METRICS,
    BENCH_SCHEMA_VERSION,
    MemoryProbe,
    MemorySample,
    PerfError,
    build_bench_record,
    build_trajectory,
    format_bytes,
    load_trajectory,
    merge_into_trajectory,
    rss_peak_bytes,
    trajectory_filename,
    validate_bench_record,
    validate_trajectory,
)
from .slo import SLO_STATES, SloSpec, SloTracker
from .stats import render_convergence, render_metrics, render_trace
from .trace import (
    NULL_SPAN,
    TRACE_SCHEMA_VERSION,
    TraceError,
    Tracer,
    read_trace,
    validate_spans,
    validate_trace,
)

__all__ = [
    "BENCH_METRICS",
    "BENCH_SCHEMA_VERSION",
    "CATALOG",
    "ComparisonReport",
    "ConvergenceRecord",
    "DEFAULT_TOLERANCES",
    "DRIFT_FORMAT",
    "DriftReport",
    "PropertyDrift",
    "compare_tables",
    "read_manifest",
    "MemoryProbe",
    "MemorySample",
    "MetricVerdict",
    "PerfError",
    "MetricSpec",
    "MetricsError",
    "MetricsRegistry",
    "NULL_SPAN",
    "SLO_STATES",
    "SloSpec",
    "SloTracker",
    "StreamingHistogram",
    "TRACE_SCHEMA_VERSION",
    "TraceError",
    "Tracer",
    "WindowedHistogram",
    "build_bench_record",
    "build_manifest",
    "build_trajectory",
    "compare",
    "discover_trajectories",
    "format_bytes",
    "git_describe",
    "load_baseline",
    "load_convergence",
    "load_metrics_file",
    "load_trajectory",
    "manifest_path_for",
    "merge_into_trajectory",
    "parse_exposition",
    "read_trace",
    "record_baseline",
    "rss_peak_bytes",
    "trajectory_filename",
    "trend",
    "record_from_fit",
    "records_from_result",
    "records_to_payload",
    "render_convergence",
    "render_frame",
    "render_metrics",
    "render_trace",
    "run_top",
    "save_convergence",
    "validate_baseline",
    "validate_bench_record",
    "validate_metrics_payload",
    "validate_serve_observability",
    "validate_spans",
    "validate_trace",
    "validate_trajectory",
    "write_baseline",
    "write_manifest",
]
