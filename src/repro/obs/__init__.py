"""Observability subsystem: tracing, metrics, and EM telemetry.

Three pillars, all deterministic and dependency-free:

* :mod:`repro.obs.trace` — nested spans with a JSONL sink that survives
  the process-pool boundary (worker spans are exported, shipped back
  with shard results, and re-parented);
* :mod:`repro.obs.metrics` — a declared-name registry of counters,
  gauges, and fixed-bucket histograms with Prometheus-style exposition
  and JSON export;
* :mod:`repro.obs.convergence` — per-combination EM fit trajectories
  (log-likelihood, ``pA``/``np+S``/``np−S``) with verdicts.

:mod:`repro.obs.manifest` stamps each run (config, git describe, wall
clock, health) and :mod:`repro.obs.stats` renders recorded traces for
``repro stats`` and ``--profile``.
"""

from .convergence import (
    ConvergenceRecord,
    load_convergence,
    record_from_fit,
    records_from_result,
    records_to_payload,
    save_convergence,
)
from .manifest import (
    build_manifest,
    git_describe,
    manifest_path_for,
    write_manifest,
)
from .metrics import (
    CATALOG,
    MetricsError,
    MetricSpec,
    MetricsRegistry,
    load_metrics_file,
    validate_metrics_payload,
)
from .stats import render_convergence, render_metrics, render_trace
from .trace import (
    NULL_SPAN,
    TRACE_SCHEMA_VERSION,
    TraceError,
    Tracer,
    read_trace,
    validate_spans,
    validate_trace,
)

__all__ = [
    "CATALOG",
    "ConvergenceRecord",
    "MetricSpec",
    "MetricsError",
    "MetricsRegistry",
    "NULL_SPAN",
    "TRACE_SCHEMA_VERSION",
    "TraceError",
    "Tracer",
    "build_manifest",
    "git_describe",
    "load_convergence",
    "load_metrics_file",
    "manifest_path_for",
    "read_trace",
    "record_from_fit",
    "records_from_result",
    "records_to_payload",
    "render_convergence",
    "render_metrics",
    "render_trace",
    "save_convergence",
    "validate_metrics_payload",
    "validate_spans",
    "validate_trace",
    "write_manifest",
]
