"""Render a recorded trace as a terminal report (``repro stats``).

Consumes the JSONL span stream written by :class:`repro.obs.trace.Tracer`
and produces the Section 7.1-style view: a per-stage timeline, the
per-shard latency spread, the top-k slowest documents, and — when a
metrics/convergence file is supplied — per-combination EM convergence
sparklines.

The heavy lifting (bars, sparklines) reuses
:mod:`repro.evaluation.ascii_plots`, imported lazily so this module
stays importable from anywhere without dragging the evaluation stack
into the pipeline's import graph.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from .convergence import ConvergenceRecord
from .perf import format_bytes


def _by_kind(spans: list[dict[str, Any]]) -> dict[str, list[dict]]:
    grouped: dict[str, list[dict]] = {}
    for span in spans:
        grouped.setdefault(span.get("kind", "span"), []).append(span)
    return grouped


def _duration(span: dict[str, Any]) -> float:
    """A span's duration, 0.0 when absent (in-flight/crashed spans)."""
    value = span.get("duration")
    return value if isinstance(value, (int, float)) else 0.0


def _mem_cell(span: dict[str, Any]) -> str:
    """Memory column for a ``--profile-mem`` span ('' when unprofiled)."""
    attrs = span.get("attrs", {})
    rss = attrs.get("rss_peak_bytes")
    traced = attrs.get("tracemalloc_peak_bytes")
    if rss is None and traced is None:
        return ""
    parts = []
    if rss is not None:
        parts.append(f"rss={format_bytes(rss)}")
    if traced is not None:
        parts.append(f"heap+={format_bytes(traced)}")
    return "  " + " ".join(parts)


def _timeline_rows(
    spans: list[dict[str, Any]], origin: float
) -> list[str]:
    """One row per span: offset, duration, name, memory, error flag.

    A span with no ``duration`` never closed — it was in flight when
    the trace was written, or its process died (a quarantined shard).
    Those render as ``RUNNING`` (status ok) or ``ABORTED`` (status
    error) instead of raising ``KeyError``.
    """
    rows = []
    for span in sorted(
        spans, key=lambda s: s.get("start_unix", 0.0)
    ):
        offset = span.get("start_unix", origin) - origin
        flag = (
            ""
            if span.get("status") == "ok"
            else f"  ERROR={span.get('error', '?')}"
        )
        duration = span.get("duration")
        if isinstance(duration, (int, float)):
            duration_cell = f"{duration:9.4f}s"
        elif span.get("status") == "ok":
            duration_cell = f"{'RUNNING':>10}"
        else:
            duration_cell = f"{'ABORTED':>10}"
        rows.append(
            f"  +{offset:8.3f}s  {duration_cell}"
            f"  {span['name']}{_mem_cell(span)}{flag}"
        )
    return rows


def render_trace(
    spans: list[dict[str, Any]], top: int = 10
) -> str:
    """The full ``repro stats`` report for one trace."""
    from ..evaluation.ascii_plots import bar_chart

    if not spans:
        return "(empty trace)"
    grouped = _by_kind(spans)
    origin = min(
        span.get("start_unix", 0.0) for span in spans
    )
    lines: list[str] = []

    counts = Counter(span.get("kind", "span") for span in spans)
    errors = [s for s in spans if s.get("status") != "ok"]
    runs = grouped.get("run", [])
    total = (
        max(_duration(r) for r in runs)
        if runs
        else sum(_duration(s) for s in grouped.get("stage", []))
    )
    lines.append(
        f"trace: {len(spans)} spans "
        f"({', '.join(f'{k}={v}' for k, v in sorted(counts.items()))})"
    )
    lines.append(f"run wall time: {total:.3f}s  errors: {len(errors)}")

    stages = grouped.get("stage", [])
    if stages:
        lines.append("")
        lines.append("stage timeline (offset, duration):")
        lines.extend(_timeline_rows(stages, origin))
        lines.append("")
        lines.append("stage durations:")
        lines.append(
            bar_chart(
                [
                    (span["name"], _duration(span))
                    for span in sorted(
                        stages,
                        key=lambda s: s.get("start_unix", 0.0),
                    )
                ]
            )
        )

    shards = grouped.get("shard", [])
    if shards:
        lines.append("")
        lines.append("per-shard latency:")
        lines.append(
            bar_chart(
                [
                    (
                        f"shard-{span['attrs'].get('shard_id', '?')}",
                        _duration(span),
                    )
                    for span in sorted(
                        shards,
                        key=lambda s: s["attrs"].get("shard_id", 0),
                    )
                ]
            )
        )

    prefilter_totals: Counter[str] = Counter()
    for span in shards:
        counters = span.get("attrs", {}).get("prefilter")
        if isinstance(counters, dict):
            for key in (
                "sentences",
                "skipped",
                "memo_hits",
                "memo_misses",
                "memo_evictions",
            ):
                value = counters.get(key)
                if isinstance(value, (int, float)):
                    prefilter_totals[key] += int(value)
    if prefilter_totals.get("sentences"):
        sentences = prefilter_totals["sentences"]
        skipped = prefilter_totals["skipped"]
        lookups = (
            prefilter_totals["memo_hits"] + prefilter_totals["memo_misses"]
        )
        hit_rate = prefilter_totals["memo_hits"] / lookups if lookups else 0.0
        lines.append("")
        lines.append("extraction fast path:")
        lines.append(
            f"  sentences={sentences}  skipped={skipped}"
            f" ({skipped / sentences:.1%})"
        )
        lines.append(
            f"  annotation memo: hits={prefilter_totals['memo_hits']}"
            f"  misses={prefilter_totals['memo_misses']}"
            f"  hit rate={hit_rate:.1%}"
            f"  evictions={prefilter_totals['memo_evictions']}"
        )

    documents = grouped.get("document", [])
    if documents:
        slowest = sorted(
            documents, key=_duration, reverse=True
        )[:top]
        lines.append("")
        lines.append(f"top {len(slowest)} slowest documents:")
        for span in slowest:
            attrs = span.get("attrs", {})
            lines.append(
                f"  {_duration(span):9.4f}s"
                f"  {attrs.get('doc_id', '?'):30s}"
                f" statements={attrs.get('statements', '?')}"
                f"{_mem_cell(span)}"
            )

    combos = grouped.get("combination", [])
    if combos:
        lines.append("")
        lines.append("EM combinations:")
        for span in sorted(
            combos, key=_duration, reverse=True
        )[:top]:
            attrs = span.get("attrs", {})
            lines.append(
                f"  {_duration(span):9.4f}s  {attrs.get('key', '?')}"
                f"{_mem_cell(span)}"
            )

    if errors:
        lines.append("")
        lines.append("error spans:")
        for span in errors[:top]:
            lines.append(
                f"  {span['name']} [{span.get('kind')}]"
                f" error={span.get('error', '?')}"
            )
    return "\n".join(lines)


def render_metrics(payload: dict[str, Any]) -> str:
    """Human view of a ``--metrics-out`` payload.

    Counters and gauges print as name/value rows; non-empty histograms
    get a bucket panel. Ordering follows the file (already sorted).
    """
    from ..evaluation.ascii_plots import histogram_panel

    metrics = payload.get("metrics", {})
    if not metrics:
        return "(no metrics recorded)"
    lines: list[str] = ["metrics:"]
    scalar_width = max(len(name) for name in metrics)
    for name, row in metrics.items():
        kind = row.get("type")
        if kind in ("counter", "gauge"):
            lines.append(
                f"  {name:<{scalar_width}}  {row['value']:g}"
                f"  ({kind})"
            )
    for name, row in metrics.items():
        kind = row.get("type")
        if kind not in ("histogram", "streamhist") or not row.get(
            "count"
        ):
            continue
        lines.append("")
        lines.append(
            f"  {name}  count={row['count']}  sum={row['sum']:g}"
        )
        counts = list(row["counts"])
        if kind == "streamhist":
            # Log-bucketed histograms serialize only occupied buckets
            # (no overflow slot); the panel wants one per edge + +Inf.
            counts.append(0)
        panel = histogram_panel(row["buckets"], counts)
        lines.extend("    " + line for line in panel.splitlines())
    return "\n".join(lines)


def render_convergence(
    records: list[ConvergenceRecord],
) -> str:
    """Per-combination convergence panel with sparkline trajectories."""
    from ..evaluation.ascii_plots import sparkline

    if not records:
        return "(no EM convergence records)"
    lines = ["EM convergence per combination:"]
    width = max(len(record.key) for record in records)
    for record in records:
        trend = sparkline(record.log_likelihoods)
        lines.append(
            f"  {record.key:<{width}}  {record.verdict:<17}"
            f" iters={record.iterations:<3}"
            f" ll={record.final_log_likelihood:.4g}  {trend}"
        )
        if record.agreement_path:
            lines.append(
                f"  {'':<{width}}  pA "
                f"{record.agreement_path[0]:.2f}→"
                f"{record.agreement_path[-1]:.2f} "
                f"{sparkline(record.agreement_path)}  np+S "
                f"{sparkline(record.rate_positive_path)}  np-S "
                f"{sparkline(record.rate_negative_path)}"
            )
    return "\n".join(lines)
