"""Mergeable log-bucketed streaming histograms (HDR-style).

The fixed-bucket histograms in :mod:`repro.obs.metrics` are fine for
offline pipeline telemetry, but a serving path needs latency
distributions that (a) cover sub-millisecond cache hits *and*
multi-second degraded tails without pre-declaring edges, (b) answer
quantile queries with a bounded relative error, (c) merge across
shards, windows, and processes without losing precision, and (d) can
carry *exemplars* — a trace id pinned to a bucket so a p99 outlier
links back to the request that caused it.

:class:`StreamingHistogram` buckets values geometrically: bucket ``i``
covers ``(min_value * g**i, min_value * g**(i+1)]`` with growth factor
``g = (1 + error)**2``, so the geometric midpoint of any bucket is
within ``error`` (default 5%) of every value inside it. Buckets are a
sparse dict, so the value range costs nothing to declare and only
occupied buckets use memory. Merging adds sparse counts — it is exact
(no re-bucketing error) and associative, which the shard/window tests
pin down.

:class:`WindowedHistogram` keeps a ring of sub-histograms, each
covering one time slot, and answers "the distribution over the last N
seconds" by merging the live slots — the serving layer uses it for the
recent-latency block in ``/healthz`` and the SLO burn windows build on
the same slot arithmetic (:mod:`repro.obs.slo`).
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Callable, Iterator

#: Default bounded relative error for quantile estimates.
DEFAULT_ERROR = 0.05
#: Values at or below this land in the underflow bucket (1 us — far
#: below any observable request latency).
DEFAULT_MIN_VALUE = 1e-6

#: Bucket index of the underflow slot (values <= min_value).
UNDERFLOW = -1


class StreamingHistogram:
    """Log-bucketed histogram with bounded-error quantiles.

    Not thread-safe on its own; callers that share one instance across
    threads wrap it (``MetricsRegistry`` holds its lock,
    :class:`WindowedHistogram` brings its own).
    """

    __slots__ = (
        "error",
        "min_value",
        "_log_growth",
        "_counts",
        "count",
        "sum",
        "min",
        "max",
        "_exemplars",
    )

    def __init__(
        self,
        error: float = DEFAULT_ERROR,
        min_value: float = DEFAULT_MIN_VALUE,
    ) -> None:
        if not 0.0 < error < 1.0:
            raise ValueError(
                f"error must be in (0, 1), got {error}"
            )
        if min_value <= 0.0:
            raise ValueError(
                f"min_value must be positive, got {min_value}"
            )
        self.error = float(error)
        self.min_value = float(min_value)
        # Growth g = (1+e)^2: the geometric midpoint of a bucket is
        # sqrt(g) = 1+e away from either edge, giving the error bound.
        self._log_growth = 2.0 * math.log1p(self.error)
        self._counts: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        #: bucket index -> (exemplar id, observed value); latest wins.
        self._exemplars: dict[int, tuple[str, float]] = {}

    # ------------------------------------------------------------------
    # Bucket arithmetic
    # ------------------------------------------------------------------
    def bucket_index(self, value: float) -> int:
        """The sparse bucket owning ``value`` (UNDERFLOW for tiny)."""
        if value <= self.min_value:
            return UNDERFLOW
        return int(
            math.floor(
                math.log(value / self.min_value) / self._log_growth
            )
        )

    def bucket_upper(self, index: int) -> float:
        """Inclusive upper edge of a bucket (``le`` semantics)."""
        if index == UNDERFLOW:
            return self.min_value
        return self.min_value * math.exp(
            self._log_growth * (index + 1)
        )

    def _bucket_estimate(self, index: int) -> float:
        """Bounded-error representative value for a bucket."""
        if index == UNDERFLOW:
            estimate = self.min_value
        else:
            estimate = self.min_value * math.exp(
                self._log_growth * (index + 0.5)
            )
        # Clamping to the observed range never worsens the bound and
        # makes single-value histograms exact.
        if self.min is not None:
            estimate = max(estimate, self.min)
        if self.max is not None:
            estimate = min(estimate, self.max)
        return estimate

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe(
        self, value: float, exemplar: str | None = None
    ) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        index = self.bucket_index(value)
        self._counts[index] = self._counts.get(index, 0) + 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if exemplar is not None:
            self._exemplars[index] = (str(exemplar), value)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float | None:
        """Nearest-rank quantile estimate, within ``error`` relative
        to the exact sorted-sample quantile. ``None`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= rank:
                return self._bucket_estimate(index)
        # Unreachable: cumulative always reaches self.count.
        return self._bucket_estimate(max(self._counts))

    def quantiles(self, qs: tuple[float, ...]) -> list[float | None]:
        return [self.quantile(q) for q in qs]

    def cumulative_buckets(
        self,
    ) -> Iterator[tuple[float, int, tuple[str, float] | None]]:
        """``(le_edge, cumulative_count, exemplar)`` per occupied
        bucket, ascending — the Prometheus ``_bucket`` series."""
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            yield (
                self.bucket_upper(index),
                cumulative,
                self._exemplars.get(index),
            )

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "StreamingHistogram") -> None:
        if (
            self.error != other.error
            or self.min_value != other.min_value
        ):
            raise ValueError(
                "cannot merge histograms with different bucket "
                f"layouts: (error={self.error}, "
                f"min_value={self.min_value}) vs "
                f"(error={other.error}, min_value={other.min_value})"
            )

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram in (exact; associative)."""
        self._check_compatible(other)
        for index, count in other._counts.items():
            self._counts[index] = (
                self._counts.get(index, 0) + count
            )
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (
            self.min is None or other.min < self.min
        ):
            self.min = other.min
        if other.max is not None and (
            self.max is None or other.max > self.max
        ):
            self.max = other.max
        self._exemplars.update(other._exemplars)

    def copy(self) -> "StreamingHistogram":
        clone = StreamingHistogram(self.error, self.min_value)
        clone.merge(self)
        return clone

    def clear(self) -> None:
        self._counts.clear()
        self._exemplars.clear()
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    # ------------------------------------------------------------------
    # Serialization (JSON-safe primitives only)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        buckets: list[float] = []
        counts: list[int] = []
        for index in sorted(self._counts):
            buckets.append(self.bucket_upper(index))
            counts.append(self._counts[index])
        return {
            "error": self.error,
            "min_value": self.min_value,
            "buckets": buckets,
            "counts": counts,
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }


class WindowedHistogram:
    """A rolling-window view over a :class:`StreamingHistogram`.

    The window is a ring of ``slots`` sub-histograms, each covering
    ``window_seconds / slots`` of wall time. Observations land in the
    current slot; a slot whose epoch has lapped is reset before reuse,
    so stale data ages out with no background thread. Thread-safe.
    """

    def __init__(
        self,
        window_seconds: float = 300.0,
        slots: int = 30,
        error: float = DEFAULT_ERROR,
        min_value: float = DEFAULT_MIN_VALUE,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive, got {window_seconds}"
            )
        if slots < 2:
            raise ValueError(f"need at least 2 slots, got {slots}")
        self.window_seconds = float(window_seconds)
        self.slots = int(slots)
        self.slot_seconds = self.window_seconds / self.slots
        self.error = error
        self.min_value = min_value
        self._clock = clock
        self._lock = threading.Lock()
        # slot position -> [slot epoch, sub-histogram]
        self._ring: list[list[Any]] = [
            [-1, StreamingHistogram(error, min_value)]
            for _ in range(self.slots)
        ]

    def _slot(self, now: float) -> "StreamingHistogram":
        epoch = int(now // self.slot_seconds)
        cell = self._ring[epoch % self.slots]
        if cell[0] != epoch:
            cell[1].clear()
            cell[0] = epoch
        return cell[1]

    def observe(
        self, value: float, exemplar: str | None = None
    ) -> None:
        with self._lock:
            self._slot(self._clock()).observe(value, exemplar)

    def merged(self) -> StreamingHistogram:
        """The distribution over the live window (fresh histogram)."""
        with self._lock:
            now_epoch = int(self._clock() // self.slot_seconds)
            total = StreamingHistogram(self.error, self.min_value)
            for epoch, histogram in self._ring:
                if epoch >= 0 and now_epoch - epoch < self.slots:
                    total.merge(histogram)
            return total

    def total_count(self) -> int:
        with self._lock:
            now_epoch = int(self._clock() // self.slot_seconds)
            return sum(
                histogram.count
                for epoch, histogram in self._ring
                if epoch >= 0 and now_epoch - epoch < self.slots
            )
