"""Named metrics with a declared catalogue and deterministic exposition.

Four instrument kinds, mirroring the Prometheus data model at the
scale this reproduction needs:

* **counter** — monotonically increasing totals (documents processed,
  statements extracted, shard retries);
* **gauge** — last-written values (run wall seconds, KB entity count);
* **histogram** — fixed-bucket distributions (statements per document,
  per-shard latency, C+/C− evidence magnitudes);
* **streamhist** — log-bucketed streaming histograms
  (:mod:`repro.obs.histogram`) for serving latency: no pre-declared
  edges, bounded-error quantiles, and per-bucket *exemplar* trace ids
  rendered in the OpenMetrics ``# {trace_id="..."} value`` form.
  Exposed as ``# TYPE ... histogram`` — scrapers cannot tell the
  difference, which is the point.

Every metric name must be *declared* in :data:`CATALOG` before use —
an undeclared name raises :class:`MetricsError` at the call site, and
``validate_metrics_payload`` applies the same rule to files so CI can
reject a run that invented names. Exposition is deterministic (sorted
names, ``%.10g`` floats) so golden-file tests are byte-stable.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..core.errors import ReproError
from .histogram import StreamingHistogram

METRICS_FORMAT = "metrics"
METRICS_VERSION = 1


class MetricsError(ReproError):
    """An undeclared metric name or a malformed metrics payload."""


@dataclass(frozen=True, slots=True)
class MetricSpec:
    """One declared metric: its kind, help line, and histogram edges."""

    name: str
    kind: str  # counter | gauge | histogram | streamhist
    help: str
    buckets: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (
            "counter", "gauge", "histogram", "streamhist"
        ):
            raise ValueError(f"unknown metric kind {self.kind!r}")
        if self.kind == "histogram" and not self.buckets:
            raise ValueError(f"histogram {self.name} needs buckets")
        if self.buckets and list(self.buckets) != sorted(
            set(self.buckets)
        ):
            raise ValueError(
                f"{self.name}: buckets must be strictly increasing"
            )


#: Latency buckets (seconds) — spans sub-millisecond documents through
#: multi-second shards.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)

#: Small-count buckets (per-document statements, sentences, EM iters).
COUNT_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)

#: Evidence-magnitude buckets for the per-pair ``<C+, C->`` tuples.
MAGNITUDE_BUCKETS = (
    0.0, 1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
)


def _catalog(*specs: MetricSpec) -> dict[str, MetricSpec]:
    return {spec.name: spec for spec in specs}


#: Every metric the pipeline may emit. CI fails on names outside this.
CATALOG: dict[str, MetricSpec] = _catalog(
    # extraction-side counters (merged back from workers)
    MetricSpec("repro_documents_total", "counter",
               "documents annotated and extracted"),
    MetricSpec("repro_sentences_total", "counter",
               "sentences processed by the NLP stack"),
    MetricSpec("repro_mentions_total", "counter",
               "entity mentions linked by the annotator"),
    MetricSpec("repro_statements_total", "counter",
               "evidence statements extracted"),
    MetricSpec("repro_statements_positive_total", "counter",
               "positive-polarity statements"),
    MetricSpec("repro_statements_negative_total", "counter",
               "negative-polarity statements"),
    MetricSpec("repro_quarantined_documents_total", "counter",
               "documents quarantined as dead letters"),
    # extraction fast-path counters (see repro.nlp.prefilter)
    MetricSpec("repro_prefilter_sentences_total", "counter",
               "sentences screened by the extraction fast path"),
    MetricSpec("repro_prefilter_skipped_total", "counter",
               "sentences that skipped the full NLP stack"),
    MetricSpec("repro_annotation_memo_hits_total", "counter",
               "annotation memo hits (sentence seen before)"),
    MetricSpec("repro_annotation_memo_misses_total", "counter",
               "annotation memo misses (full annotation ran)"),
    MetricSpec("repro_annotation_memo_evictions_total", "counter",
               "annotation memo LRU evictions"),
    # executor counters
    MetricSpec("repro_shards_total", "counter",
               "non-empty shards mapped"),
    MetricSpec("repro_shard_retries_total", "counter",
               "shard attempts that were retried"),
    # interpretation counters
    MetricSpec("repro_em_fits_total", "counter",
               "property-type combinations fit with EM"),
    MetricSpec("repro_em_degraded_total", "counter",
               "combinations that fell back to majority vote"),
    MetricSpec("repro_combinations_skipped_total", "counter",
               "combinations below the occurrence threshold"),
    MetricSpec("repro_opinions_total", "counter",
               "opinions emitted into the table"),
    MetricSpec("repro_report_sections_total", "counter",
               "sections assembled by the reproduction report"),
    # gauges
    MetricSpec("repro_run_wall_seconds", "gauge",
               "wall-clock duration of the whole run"),
    MetricSpec("repro_kb_entities", "gauge",
               "entities in the knowledge base"),
    # histograms
    MetricSpec("repro_statements_per_document", "histogram",
               "evidence statements extracted per document",
               COUNT_BUCKETS),
    MetricSpec("repro_sentences_per_document", "histogram",
               "sentences per document", COUNT_BUCKETS),
    MetricSpec("repro_document_seconds", "histogram",
               "annotate+extract latency per document",
               LATENCY_BUCKETS),
    MetricSpec("repro_shard_seconds", "histogram",
               "end-to-end latency per shard attempt chain",
               LATENCY_BUCKETS),
    MetricSpec("repro_em_iterations", "histogram",
               "EM iterations per fitted combination", COUNT_BUCKETS),
    MetricSpec("repro_evidence_positive_magnitude", "histogram",
               "C+ magnitude per entity-property pair",
               MAGNITUDE_BUCKETS),
    MetricSpec("repro_evidence_negative_magnitude", "histogram",
               "C- magnitude per entity-property pair",
               MAGNITUDE_BUCKETS),
    # query-serving subsystem (repro serve)
    MetricSpec("repro_serve_requests_total", "counter",
               "HTTP requests handled by the query server"),
    MetricSpec("repro_serve_errors_total", "counter",
               "requests that ended in a 5xx response"),
    MetricSpec("repro_serve_rejected_total", "counter",
               "requests shed by admission control (503)"),
    MetricSpec("repro_serve_reloads_total", "counter",
               "opinion-table hot reloads (SIGHUP or /admin/reload)"),
    MetricSpec("repro_serve_cache_hits_total", "counter",
               "query-cache hits"),
    MetricSpec("repro_serve_cache_misses_total", "counter",
               "query-cache misses"),
    MetricSpec("repro_serve_cache_evictions_total", "counter",
               "query-cache entries evicted by the LRU bound"),
    MetricSpec("repro_serve_cache_invalidations_total", "counter",
               "query-cache entries dropped on table swap"),
    MetricSpec("repro_serve_request_seconds", "streamhist",
               "server-side latency per request (log-bucketed, "
               "with trace exemplars)"),
    MetricSpec("repro_serve_index_generation", "gauge",
               "generation of the live opinion index"),
    MetricSpec("repro_serve_index_opinions", "gauge",
               "opinions held by the live index"),
    MetricSpec("repro_serve_workers", "gauge",
               "serving worker processes sharing this listen "
               "address (1 unless --workers)"),
    MetricSpec("repro_serve_rate_limited_total", "counter",
               "requests rejected by per-client rate limiting (429)"),
    MetricSpec("repro_serve_deadline_exceeded_total", "counter",
               "requests abandoned at a deadline checkpoint (503)"),
    MetricSpec("repro_serve_reload_failures_total", "counter",
               "hot reloads rejected by artefact validation"),
    MetricSpec("repro_serve_quarantined_artefacts_total", "counter",
               "candidate artefacts quarantined after failing "
               "validation"),
    MetricSpec("repro_serve_rollbacks_total", "counter",
               "one-step rollbacks to the previous table generation"),
    MetricSpec("repro_serve_faults_injected_total", "counter",
               "faults fired by the serve-side chaos injector"),
    MetricSpec("repro_serve_health_state", "gauge",
               "serving health state (0 healthy, 1 degraded, "
               "2 draining)"),
    # SLO burn rates (see repro.obs.slo; published before each
    # /metrics render)
    MetricSpec("repro_serve_availability_burn_fast", "gauge",
               "availability error-budget burn rate, fast window"),
    MetricSpec("repro_serve_availability_burn_slow", "gauge",
               "availability error-budget burn rate, slow window"),
    MetricSpec("repro_serve_latency_burn_fast", "gauge",
               "latency error-budget burn rate, fast window"),
    MetricSpec("repro_serve_latency_burn_slow", "gauge",
               "latency error-budget burn rate, slow window"),
    MetricSpec("repro_serve_slo_state", "gauge",
               "worst SLO state (0 ok, 1 warn, 2 page)"),
    # Generation drift (see repro.obs.drift; published after every
    # reload/rollback against the snapshot it replaced)
    MetricSpec("repro_serve_generation_flips", "gauge",
               "answers whose dominant polarity flipped in the last "
               "snapshot swap"),
    MetricSpec("repro_serve_generation_flip_fraction", "gauge",
               "flipped fraction of answers common to both "
               "generations"),
    MetricSpec("repro_serve_generation_pairs_added", "gauge",
               "entity-property pairs present only in the new "
               "generation"),
    MetricSpec("repro_serve_generation_pairs_removed", "gauge",
               "entity-property pairs present only in the old "
               "generation"),
    MetricSpec("repro_serve_generation_entity_churn", "gauge",
               "entities present in exactly one of the two "
               "generations"),
    MetricSpec("repro_serve_generation_delta_max", "gauge",
               "largest absolute posterior change across common "
               "pairs in the last swap"),
    MetricSpec("repro_serve_drift_alarms_total", "counter",
               "snapshot swaps whose flip fraction exceeded the "
               "configured drift guard"),
    # Streaming ingestion (see repro.ingest; docs/ingestion.md)
    MetricSpec("repro_ingest_documents_total", "counter",
               "documents appended through the ingest subsystem"),
    MetricSpec("repro_ingest_batches_total", "counter",
               "ingest advances applied (journal batches folded in)"),
    MetricSpec("repro_ingest_statements_total", "counter",
               "evidence statements extracted by incremental "
               "ingestion"),
    MetricSpec("repro_ingest_dirty_combinations", "gauge",
               "property-type combinations refit by the last ingest "
               "advance"),
    MetricSpec("repro_ingest_journal_offset", "gauge",
               "highest journal offset folded into the served "
               "evidence"),
    MetricSpec("repro_ingest_refit_seconds", "histogram",
               "dirty-set EM refit latency per ingest advance",
               LATENCY_BUCKETS),
    MetricSpec("repro_ingest_freshness_seconds", "streamhist",
               "ingest-to-serveable latency per accepted batch "
               "(log-bucketed, with request exemplars)"),
)


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.10g}"


class MetricsRegistry:
    """Holds the run's instruments; every name checked against a catalogue.

    Updates are guarded by a reentrant lock so the registry can be
    shared across threads (the query server increments counters from
    its handler pool); the pipeline's single-threaded hot path pays
    one uncontended acquire per update.
    """

    def __init__(
        self, catalog: dict[str, MetricSpec] | None = None
    ) -> None:
        self._catalog = dict(CATALOG if catalog is None else catalog)
        self._lock = threading.RLock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        # name -> (per-edge counts + overflow slot, sum, count)
        self._histograms: dict[str, dict[str, Any]] = {}
        # name -> StreamingHistogram (log-bucketed, exemplar-bearing)
        self._streams: dict[str, StreamingHistogram] = {}

    # Locks do not pickle; a registry shipped to a worker process
    # rebuilds its own.
    def __getstate__(self) -> dict[str, Any]:
        with self._lock:
            state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def _spec(self, name: str, kind: str) -> MetricSpec:
        spec = self._catalog.get(name)
        if spec is None:
            raise MetricsError(
                f"undeclared metric {name!r}: add it to "
                "repro.obs.metrics.CATALOG first"
            )
        if spec.kind != kind:
            raise MetricsError(
                f"{name} is declared as a {spec.kind}, used as a {kind}"
            )
        return spec

    def inc(self, name: str, amount: float = 1) -> None:
        self._spec(name, "counter")
        if amount < 0:
            raise MetricsError(f"{name}: counters only go up")
        with self._lock:
            self._counters[name] = (
                self._counters.get(name, 0) + amount
            )

    def set_gauge(self, name: str, value: float) -> None:
        self._spec(name, "gauge")
        with self._lock:
            self._gauges[name] = float(value)

    def observe(
        self, name: str, value: float, exemplar: str | None = None
    ) -> None:
        spec = self._catalog.get(name)
        if spec is not None and spec.kind == "streamhist":
            with self._lock:
                stream = self._streams.get(name)
                if stream is None:
                    stream = StreamingHistogram()
                    self._streams[name] = stream
                stream.observe(value, exemplar)
            return
        spec = self._spec(name, "histogram")
        if exemplar is not None:
            raise MetricsError(
                f"{name}: exemplars need a streamhist, "
                "not a fixed-bucket histogram"
            )
        with self._lock:
            state = self._histograms.get(name)
            if state is None:
                state = {
                    "counts": [0] * (len(spec.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
                self._histograms[name] = state
            # le semantics: the first edge >= value owns the
            # observation; beyond the last edge lands in the +Inf
            # overflow slot.
            state["counts"][bisect_left(spec.buckets, value)] += 1
            state["sum"] += float(value)
            state["count"] += 1

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (sums counters and histograms;
        gauges take the other side's latest value)."""
        with self._lock:
            self._merge_locked(other)

    def _merge_locked(self, other: "MetricsRegistry") -> None:
        for name, value in other._counters.items():
            self._spec(name, "counter")
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in other._gauges.items():
            self._spec(name, "gauge")
            self._gauges[name] = value
        for name, theirs in other._histograms.items():
            self._spec(name, "histogram")
            state = self._histograms.get(name)
            if state is None:
                self._histograms[name] = {
                    "counts": list(theirs["counts"]),
                    "sum": theirs["sum"],
                    "count": theirs["count"],
                }
                continue
            state["counts"] = [
                a + b for a, b in zip(state["counts"], theirs["counts"])
            ]
            state["sum"] += theirs["sum"]
            state["count"] += theirs["count"]
        for name, theirs_stream in other._streams.items():
            self._spec(name, "streamhist")
            stream = self._streams.get(name)
            if stream is None:
                self._streams[name] = theirs_stream.copy()
            else:
                stream.merge(theirs_stream)

    def names(self) -> list[str]:
        """Names with recorded data, sorted."""
        with self._lock:
            return sorted(
                {
                    *self._counters,
                    *self._gauges,
                    *self._histograms,
                    *self._streams,
                }
            )

    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def stream_snapshot(self, name: str) -> StreamingHistogram:
        """A point-in-time copy of a streamhist (empty if unused)."""
        self._spec(name, "streamhist")
        with self._lock:
            stream = self._streams.get(name)
            if stream is None:
                return StreamingHistogram()
            return stream.copy()

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def exposition(self) -> str:
        """Prometheus-style text exposition, deterministically ordered."""
        with self._lock:
            return self._exposition_locked()

    def _exposition_locked(self) -> str:
        lines: list[str] = []
        for name in self.names():
            spec = self._catalog[name]
            lines.append(f"# HELP {name} {spec.help}")
            # streamhist is histogram-shaped on the wire.
            exposed_kind = (
                "histogram" if spec.kind == "streamhist" else spec.kind
            )
            lines.append(f"# TYPE {name} {exposed_kind}")
            if spec.kind == "counter":
                lines.append(
                    f"{name} {_format_value(self._counters[name])}"
                )
            elif spec.kind == "gauge":
                lines.append(
                    f"{name} {_format_value(self._gauges[name])}"
                )
            elif spec.kind == "streamhist":
                stream = self._streams[name]
                cumulative = 0
                for edge, cumulative, exemplar in (
                    stream.cumulative_buckets()
                ):
                    line = (
                        f'{name}_bucket{{le="{_format_value(edge)}"}}'
                        f" {cumulative}"
                    )
                    if exemplar is not None:
                        trace_id, observed = exemplar
                        line += (
                            f' # {{trace_id="{trace_id}"}}'
                            f" {_format_value(observed)}"
                        )
                    lines.append(line)
                lines.append(
                    f'{name}_bucket{{le="+Inf"}} {stream.count}'
                )
                lines.append(
                    f"{name}_sum {_format_value(stream.sum)}"
                )
                lines.append(f"{name}_count {stream.count}")
            else:
                state = self._histograms[name]
                cumulative = 0
                for edge, count in zip(
                    spec.buckets, state["counts"]
                ):
                    cumulative += count
                    lines.append(
                        f'{name}_bucket{{le="{_format_value(edge)}"}}'
                        f" {cumulative}"
                    )
                cumulative += state["counts"][-1]
                lines.append(
                    f'{name}_bucket{{le="+Inf"}} {cumulative}'
                )
                lines.append(
                    f"{name}_sum {_format_value(state['sum'])}"
                )
                lines.append(f"{name}_count {state['count']}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict[str, Any]:
        """JSON payload for ``--metrics-out`` (format-tagged)."""
        with self._lock:
            return self._to_dict_locked()

    def _to_dict_locked(self) -> dict[str, Any]:
        metrics: dict[str, Any] = {}
        for name in self.names():
            spec = self._catalog[name]
            if spec.kind == "counter":
                metrics[name] = {
                    "type": "counter",
                    "value": self._counters[name],
                }
            elif spec.kind == "gauge":
                metrics[name] = {
                    "type": "gauge",
                    "value": self._gauges[name],
                }
            elif spec.kind == "streamhist":
                metrics[name] = {
                    "type": "streamhist",
                    **self._streams[name].to_dict(),
                }
            else:
                state = self._histograms[name]
                metrics[name] = {
                    "type": "histogram",
                    "buckets": list(spec.buckets),
                    "counts": list(state["counts"]),
                    "sum": state["sum"],
                    "count": state["count"],
                }
        return {
            "format": METRICS_FORMAT,
            "version": METRICS_VERSION,
            "metrics": metrics,
        }

    def write_json(
        self, path: str | Path, extra: dict[str, Any] | None = None
    ) -> Path:
        """Persist :meth:`to_dict` (plus optional extra sections)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = self.to_dict()
        if extra:
            payload.update(extra)
        path.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n"
        )
        return path


def validate_metrics_payload(
    payload: Any, catalog: dict[str, MetricSpec] | None = None
) -> list[str]:
    """Check a ``--metrics-out`` payload: shape, and that every metric
    name is declared with the right kind. Returns violations."""
    catalog = CATALOG if catalog is None else catalog
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["metrics payload is not a JSON object"]
    if payload.get("format") != METRICS_FORMAT:
        errors.append(
            f"format must be {METRICS_FORMAT!r}, "
            f"got {payload.get('format')!r}"
        )
    if payload.get("version") != METRICS_VERSION:
        errors.append(
            f"unsupported metrics version {payload.get('version')!r}"
        )
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("missing 'metrics' object")
        return errors
    for name, row in sorted(metrics.items()):
        spec = catalog.get(name)
        if spec is None:
            errors.append(f"undeclared metric name {name!r}")
            continue
        if not isinstance(row, dict):
            errors.append(f"{name}: entry is not an object")
            continue
        if row.get("type") != spec.kind:
            errors.append(
                f"{name}: declared {spec.kind}, "
                f"file says {row.get('type')!r}"
            )
    return errors


def load_metrics_file(path: str | Path) -> dict[str, Any]:
    """Read a metrics JSON file; malformed files raise MetricsError."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise MetricsError(
            f"{path}: unreadable metrics file: {error}"
        ) from error
    return payload
