"""Performance telemetry: memory probes and the benchmark trajectory.

The paper's scalability story (Section 7.1: O(m) evidence
interpretation per EM iteration, extraction that scales to a Web
snapshot) is only checkable if performance is *observable across
runs*. This module provides the two primitives that make it so:

* **Memory probes** — cheap samplers for process peak RSS
  (``resource.getrusage``; no extra cost) and Python-heap peaks
  (``tracemalloc``; opt-in because tracing allocations slows the
  interpreter). :class:`MemoryProbe` brackets a region of work and
  reports both.
* **Benchmark records and the trajectory file** — every benchmark run
  produces one schema-validated record (wall time, throughput counts,
  peak RSS, tracemalloc peak, plus a ``meta`` block with the git
  version and timestamp), and an aggregator merges records into a
  repo-root ``BENCH_<gitsha>.json`` so the perf history of the repo is
  machine-readable. :mod:`repro.obs.baseline` turns two trajectory
  files into a regression verdict.

Wall-clock sources (timestamps, ``git describe``) are **passed in** by
the harness that owns the run — nothing here calls ``time.time()`` on
its own, so records are reproducible under test.
"""

from __future__ import annotations

import json
import math
import re
import sys
import tracemalloc
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..core.errors import ReproError

#: Version stamp for benchmark records and trajectory files.
BENCH_SCHEMA_VERSION = 1

BENCH_TRAJECTORY_FORMAT = "bench_trajectory"

#: The scalar metrics a benchmark record carries (and the only names
#: ``repro bench compare`` will gate on).
BENCH_METRICS = (
    "wall_seconds",
    "peak_rss_bytes",
    "tracemalloc_peak_bytes",
)


class PerfError(ReproError):
    """A malformed benchmark record, trajectory, or baseline file."""


# ---------------------------------------------------------------------------
# Memory probes
# ---------------------------------------------------------------------------

def rss_peak_bytes() -> int:
    """Process peak RSS in bytes (the kernel's high-watermark).

    Monotone over the process lifetime — useful as "how big did this
    run get", not as a per-region delta. Returns 0 on platforms
    without ``resource`` (Windows).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(peak)
    return int(peak) * 1024


def tracemalloc_active() -> bool:
    return tracemalloc.is_tracing()


def start_tracemalloc() -> None:
    """Start allocation tracing if not already on (idempotent)."""
    if not tracemalloc.is_tracing():
        tracemalloc.start()


@dataclass
class MemorySample:
    """What a :class:`MemoryProbe` saw over its bracket."""

    peak_rss_bytes: int
    #: Python-heap peak *above the bracket's starting level*; ``None``
    #: when tracemalloc was not tracing (the probe never starts it —
    #: that is the harness's opt-in decision).
    tracemalloc_peak_bytes: int | None
    #: Net Python-heap growth across the bracket (can be negative).
    tracemalloc_net_bytes: int | None


class MemoryProbe:
    """Bracket a region of work and report its memory profile.

    ``tracemalloc`` numbers are relative to the heap level at
    :meth:`start`; the global peak counter is *not* reset, so nested
    probes compose (an outer probe's peak includes its children, which
    is the truthful reading).
    """

    __slots__ = ("_traced_start",)

    def __init__(self) -> None:
        self._traced_start: int | None = None

    def start(self) -> "MemoryProbe":
        if tracemalloc.is_tracing():
            self._traced_start = tracemalloc.get_traced_memory()[0]
        else:
            self._traced_start = None
        return self

    def stop(self) -> MemorySample:
        peak = rss_peak_bytes()
        if self._traced_start is None or not tracemalloc.is_tracing():
            return MemorySample(peak, None, None)
        current, traced_peak = tracemalloc.get_traced_memory()
        return MemorySample(
            peak_rss_bytes=peak,
            tracemalloc_peak_bytes=max(
                0, traced_peak - self._traced_start
            ),
            tracemalloc_net_bytes=current - self._traced_start,
        )


def format_bytes(n: float | int | None) -> str:
    """Human-readable byte count for reports (``None`` → ``-``)."""
    if n is None:
        return "-"
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return (
                f"{value:.0f}{unit}"
                if unit == "B"
                else f"{value:.1f}{unit}"
            )
        value /= 1024.0
    return f"{value:.1f}GiB"  # pragma: no cover - unreachable


# ---------------------------------------------------------------------------
# Benchmark records
# ---------------------------------------------------------------------------

def build_bench_record(
    *,
    name: str,
    wall_seconds: float,
    memory: MemorySample,
    counts: dict[str, float] | None = None,
    values: dict[str, float] | None = None,
    git_version: str | None,
    timestamp: float,
) -> dict[str, Any]:
    """One benchmark's machine-readable result.

    ``counts`` are the benchmark's throughput units (documents,
    statements, combinations, …); each also yields a derived
    ``<unit>_per_second`` throughput row when wall time is positive.
    ``values`` are free-form scalar gauges the benchmark measured
    itself — latency quantiles, ratios — recorded as-is (no
    derivation).
    """
    counts = dict(counts or {})
    throughput = {
        f"{label}_per_second": value / wall_seconds
        for label, value in counts.items()
        if wall_seconds > 0
    }
    return {
        "name": name,
        "wall_seconds": float(wall_seconds),
        "peak_rss_bytes": int(memory.peak_rss_bytes),
        "tracemalloc_peak_bytes": (
            None
            if memory.tracemalloc_peak_bytes is None
            else int(memory.tracemalloc_peak_bytes)
        ),
        "counts": counts,
        "throughput": throughput,
        "values": {
            label: float(value)
            for label, value in (values or {}).items()
        },
        "meta": {
            "benchmark": name,
            "git_describe": git_version,
            "schema_version": BENCH_SCHEMA_VERSION,
            "recorded_unix": float(timestamp),
        },
    }


def validate_bench_record(record: Any) -> list[str]:
    """Schema-check one benchmark record; returns violations."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return ["record is not an object"]
    name = record.get("name", "?")
    for key in ("name", "counts", "throughput", "meta"):
        if key not in record:
            errors.append(f"{name}: missing field {key!r}")
    for metric in BENCH_METRICS:
        if metric not in record:
            errors.append(f"{name}: missing metric {metric!r}")
            continue
        value = record[metric]
        if value is None:
            if metric == "tracemalloc_peak_bytes":
                continue  # legitimately absent without tracemalloc
            errors.append(f"{name}: {metric} must not be null")
            continue
        if not isinstance(value, (int, float)) or isinstance(
            value, bool
        ):
            errors.append(f"{name}: {metric} is not a number")
        elif not math.isfinite(value) or value < 0:
            errors.append(
                f"{name}: {metric} must be finite and >= 0, "
                f"got {value!r}"
            )
    extra = [
        key
        for key in record
        if key
        not in (
            "name",
            "counts",
            "throughput",
            "values",
            "meta",
            *BENCH_METRICS,
        )
    ]
    for key in extra:
        errors.append(f"{name}: unknown metric name {key!r}")
    # "values" is optional (records predating it have none), but when
    # present it must be a flat map of finite numbers.
    values = record.get("values")
    if values is not None:
        if not isinstance(values, dict):
            errors.append(f"{name}: values is not an object")
        else:
            for label, value in values.items():
                if (
                    not isinstance(value, (int, float))
                    or isinstance(value, bool)
                    or not math.isfinite(value)
                ):
                    errors.append(
                        f"{name}: values[{label!r}] is not a "
                        "finite number"
                    )
    meta = record.get("meta")
    if isinstance(meta, dict):
        for key in ("benchmark", "schema_version", "recorded_unix"):
            if key not in meta:
                errors.append(f"{name}: meta missing {key!r}")
        if meta.get("schema_version") not in (
            None,
            BENCH_SCHEMA_VERSION,
        ):
            errors.append(
                f"{name}: unsupported schema_version "
                f"{meta.get('schema_version')!r}"
            )
    elif meta is not None:
        errors.append(f"{name}: meta is not an object")
    return errors


# ---------------------------------------------------------------------------
# Trajectory files (repo-root BENCH_<gitsha>.json)
# ---------------------------------------------------------------------------

def trajectory_filename(git_version: str | None) -> str:
    """``BENCH_<gitsha>.json`` — the sha sanitised for a filename."""
    sha = (git_version or "unknown").replace("/", "-")
    sha = re.sub(r"[^A-Za-z0-9._-]", "-", sha)
    return f"BENCH_{sha}.json"


def build_trajectory(
    records: list[dict[str, Any]], git_version: str | None
) -> dict[str, Any]:
    return {
        "format": BENCH_TRAJECTORY_FORMAT,
        "version": BENCH_SCHEMA_VERSION,
        "git_describe": git_version,
        "entries": {
            record["name"]: record for record in records
        },
    }


def validate_trajectory(payload: Any) -> list[str]:
    """Schema-check a whole trajectory file; returns violations."""
    if not isinstance(payload, dict):
        return ["trajectory payload is not a JSON object"]
    errors: list[str] = []
    if payload.get("format") != BENCH_TRAJECTORY_FORMAT:
        errors.append(
            f"format must be {BENCH_TRAJECTORY_FORMAT!r}, "
            f"got {payload.get('format')!r}"
        )
    if payload.get("version") != BENCH_SCHEMA_VERSION:
        errors.append(
            f"unsupported trajectory version "
            f"{payload.get('version')!r}"
        )
    entries = payload.get("entries")
    if not isinstance(entries, dict):
        errors.append("missing 'entries' object")
        return errors
    for name, record in sorted(entries.items()):
        errors.extend(validate_bench_record(record))
        if isinstance(record, dict) and record.get("name") != name:
            errors.append(
                f"entry key {name!r} disagrees with record name "
                f"{record.get('name')!r}"
            )
    return errors


def load_trajectory(path: str | Path) -> dict[str, Any]:
    """Read and validate a trajectory file (raises :class:`PerfError`)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise PerfError(
            f"{path}: unreadable trajectory: {error}"
        ) from error
    problems = validate_trajectory(payload)
    if problems:
        raise PerfError(
            f"{path}: invalid trajectory: "
            + "; ".join(problems[:5])
            + ("; ..." if len(problems) > 5 else "")
        )
    return payload


def merge_into_trajectory(
    path: str | Path,
    records: list[dict[str, Any]],
    git_version: str | None,
) -> Path:
    """Fold records into the trajectory at ``path`` (created if absent).

    Records for benchmarks already present are replaced; others are
    kept, so partial bench runs accumulate into one file per git
    version. Every record is validated before anything is written.
    """
    for record in records:
        problems = validate_bench_record(record)
        if problems:
            raise PerfError(
                "refusing to write invalid benchmark record: "
                + "; ".join(problems)
            )
    path = Path(path)
    if path.exists():
        payload = load_trajectory(path)
    else:
        payload = build_trajectory([], git_version)
    for record in records:
        payload["entries"][record["name"]] = record
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
    return path
