"""``repro top`` — a live terminal console over a running server.

Polls ``GET /metrics`` (Prometheus text exposition, exemplars
included) and ``GET /healthz`` (JSON) and renders one frame per
interval: QPS and error rate from counter deltas, p50/p95/p99 from
the server's rolling latency window, cache hit rate, admission
pressure, health and SLO state, and burn-rate sparklines over the
frames seen so far. Stdlib only — the same ``urllib`` the tests use.

The module splits into three testable layers:

* :func:`parse_exposition` — a small Prometheus text parser (handles
  the ``# {trace_id="..."} value`` exemplar suffix);
* :class:`ServeSampler` / :func:`render_frame` — pure sampling and
  rendering over two samples (no terminal, no sleeps);
* :func:`run_top` — the loop: clear screen, render, sleep. With
  ``--once`` it takes two samples ~0.5 s apart and prints a single
  frame, which is also what CI runs against the ephemeral server.

:func:`validate_serve_observability` is the CI golden schema: it
checks a ``/metrics`` exposition and a ``/healthz`` payload for every
field this console (and the ISSUE's acceptance criteria) relies on.
"""

from __future__ import annotations

import json
import re
import sys
import time
import urllib.request
from dataclasses import dataclass, field
from typing import Any

from ..evaluation.ascii_plots import sparkline

#: Seconds between the two samples of a --once frame: long enough for
#: a counter delta to mean something, short enough for CI.
ONCE_SPACING = 0.5

#: Burn-rate history kept for the sparklines (frames, not seconds).
HISTORY_FRAMES = 60

#: One exposition sample line:
#:   name{labels} value [# {exemplar-labels} exemplar-value]
_SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s#]+)"
    r"(?:\s+#\s+\{(?P<ex_labels>[^}]*)\}\s+(?P<ex_value>\S+))?\s*$"
)

_LABEL_RE = re.compile(r'(\w+)="([^"]*)"')


def _parse_labels(raw: str | None) -> dict[str, str]:
    if not raw:
        return {}
    return dict(_LABEL_RE.findall(raw))


def parse_exposition(text: str) -> dict[str, Any]:
    """Parse a Prometheus text exposition into
    ``{series_name: [(labels, value, exemplar | None), ...]}``.

    ``series_name`` is the full sample name (``foo_bucket`` stays
    ``foo_bucket``). Exemplars come back as
    ``(labels_dict, value)`` tuples. ``# HELP``/``# TYPE`` comment
    lines are collected under the ``"#types"`` key as
    ``{metric_name: type}``.
    """
    series: dict[str, Any] = {"#types": {}}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                series["#types"][parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(
                f"line {lineno}: cannot parse exposition sample: "
                f"{line!r}"
            )
        exemplar = None
        if match.group("ex_value") is not None:
            exemplar = (
                _parse_labels(match.group("ex_labels")),
                float(match.group("ex_value")),
            )
        series.setdefault(match.group("name"), []).append(
            (
                _parse_labels(match.group("labels")),
                float(match.group("value")),
                exemplar,
            )
        )
    return series


def scalar(series: dict[str, Any], name: str, default: float = 0.0) -> float:
    """The value of an unlabelled sample (counters, gauges)."""
    rows = series.get(name)
    if not rows:
        return default
    return rows[0][1]


# ---------------------------------------------------------------------------
# Sampling
# ---------------------------------------------------------------------------

@dataclass
class Sample:
    """One synchronized pull of /metrics + /healthz."""

    at: float
    series: dict[str, Any]
    health: dict[str, Any]


class ServeSampler:
    """Fetches and parses the two observability endpoints."""

    def __init__(self, base_url: str, timeout: float = 5.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _fetch(self, path: str) -> bytes:
        with urllib.request.urlopen(
            self.base_url + path, timeout=self.timeout
        ) as response:
            return response.read()

    def sample(self) -> Sample:
        series = parse_exposition(self._fetch("/metrics").decode())
        health = json.loads(self._fetch("/healthz"))
        return Sample(
            at=time.monotonic(), series=series, health=health
        )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def _rate(
    prev: Sample, curr: Sample, name: str
) -> float:
    elapsed = max(curr.at - prev.at, 1e-9)
    delta = scalar(curr.series, name) - scalar(prev.series, name)
    return max(delta, 0.0) / elapsed


def _fmt_seconds(value: Any) -> str:
    if value is None:
        return "    -"
    if value < 0.001:
        return f"{value * 1e6:4.0f}us"
    if value < 1.0:
        return f"{value * 1e3:4.1f}ms"
    return f"{value:4.2f}s"


def _fmt_burn(value: float) -> str:
    return f"{value:6.2f}"


@dataclass
class BurnHistory:
    """Rolling burn-rate series behind the sparklines."""

    values: dict[str, list[float]] = field(default_factory=dict)

    def push(self, health: dict[str, Any]) -> None:
        slo = health.get("slo", {})
        for name in ("availability", "latency"):
            for window in ("fast", "slow"):
                rates = slo.get(name, {}).get("burn_rates", {})
                key = f"{name}.{window}"
                history = self.values.setdefault(key, [])
                history.append(float(rates.get(window, 0.0)))
                del history[:-HISTORY_FRAMES]

    def spark(self, key: str) -> str:
        history = self.values.get(key, [])
        return sparkline(history) if history else ""


def _stream_quantile(
    series: dict[str, Any], name: str, q: float
) -> float | None:
    """Approximate a quantile from a histogram's cumulative
    ``<name>_bucket`` samples (upper bound of the first bucket whose
    cumulative count covers the target rank)."""
    buckets = series.get(f"{name}_bucket")
    if not buckets:
        return None
    rows = []
    for labels, value, _ in buckets:
        bound = labels.get("le", "")
        if bound == "+Inf":
            continue
        try:
            rows.append((float(bound), value))
        except ValueError:
            continue
    rows.sort()
    total = scalar(series, f"{name}_count")
    if not rows or total <= 0:
        return None
    rank = q * total
    for bound, cumulative in rows:
        if cumulative >= rank:
            return bound
    return rows[-1][0]


def render_ingest_panel(prev: Sample, curr: Sample) -> list[str]:
    """The ``ingest`` panel lines, or ``[]`` when the server has no
    ingest subsystem attached (the repro_ingest_* series absent)."""
    if "repro_ingest_documents_total" not in curr.series:
        return []
    docs = scalar(curr.series, "repro_ingest_documents_total")
    docs_rate = _rate(prev, curr, "repro_ingest_documents_total")
    dirty = scalar(curr.series, "repro_ingest_dirty_combinations")
    offset = scalar(curr.series, "repro_ingest_journal_offset")
    freshness_p50 = _stream_quantile(
        curr.series, "repro_ingest_freshness_seconds", 0.5
    )
    return [
        (
            f"  ingest: {int(docs)} docs "
            f"({docs_rate:5.1f}/s)   "
            f"journal offset {int(offset)}   "
            f"dirty combos {int(dirty)}   "
            f"freshness p50 {_fmt_seconds(freshness_p50)}"
        ),
    ]


def render_frame(
    prev: Sample, curr: Sample, history: BurnHistory
) -> str:
    """One console frame from two samples (pure; no I/O)."""
    health = curr.health
    qps = _rate(prev, curr, "repro_serve_requests_total")
    eps = _rate(prev, curr, "repro_serve_errors_total")
    hit_rate_num = _rate(
        prev, curr, "repro_serve_cache_hits_total"
    )
    miss_rate = _rate(
        prev, curr, "repro_serve_cache_misses_total"
    )
    lookups = hit_rate_num + miss_rate
    hit_pct = 100.0 * hit_rate_num / lookups if lookups else 0.0
    latency = health.get("latency", {})
    slo = health.get("slo", {})
    admission = health.get("admission", {})
    lines = [
        (
            f"repro top — {health.get('status', '?'):<9} "
            f"gen {health.get('generation', '?')} "
            f"({health.get('opinions', '?')} opinions)   "
            f"slo: {slo.get('state', '?')}"
        ),
        (
            f"  qps {qps:8.1f}   errors/s {eps:6.2f}   "
            f"cache hit {hit_pct:5.1f}%   "
            f"inflight {admission.get('inflight', 0)}"
        ),
        (
            f"  latency ({int(latency.get('window_seconds', 0))}s "
            f"window, n={latency.get('count', 0)}):  "
            f"p50 {_fmt_seconds(latency.get('p50'))}   "
            f"p95 {_fmt_seconds(latency.get('p95'))}   "
            f"p99 {_fmt_seconds(latency.get('p99'))}"
        ),
    ]
    for name in ("availability", "latency"):
        entry = slo.get(name, {})
        rates = entry.get("burn_rates", {})
        lines.append(
            f"  {name:<13} burn "
            f"fast {_fmt_burn(rates.get('fast', 0.0))} "
            f"{history.spark(f'{name}.fast'):<12} "
            f"slow {_fmt_burn(rates.get('slow', 0.0))} "
            f"{history.spark(f'{name}.slow'):<12} "
            f"[{entry.get('state', '?')}]"
        )
    lines.extend(render_ingest_panel(prev, curr))
    degraded = health.get("degraded_reason")
    if degraded:
        lines.append(f"  degraded: {degraded}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The loop
# ---------------------------------------------------------------------------

def run_top(
    url: str,
    *,
    interval: float = 2.0,
    once: bool = False,
    out: Any = None,
) -> int:
    """Render the console until interrupted (or once).

    ``--once`` takes two samples :data:`ONCE_SPACING` seconds apart so
    the frame's rates are real deltas, prints one frame with no
    screen-clearing escape codes, and exits 0 — that is also the CI
    smoke path.
    """
    out = out if out is not None else sys.stdout
    sampler = ServeSampler(url)
    history = BurnHistory()
    prev = sampler.sample()
    if once:
        time.sleep(ONCE_SPACING)
        curr = sampler.sample()
        history.push(curr.health)
        print(render_frame(prev, curr, history), file=out)
        return 0
    while True:
        time.sleep(interval)
        curr = sampler.sample()
        history.push(curr.health)
        # ANSI clear + home keeps the frame in place like top(1).
        print(
            "\x1b[2J\x1b[H" + render_frame(prev, curr, history),
            file=out,
            flush=True,
        )
        prev = curr


# ---------------------------------------------------------------------------
# CI golden schema
# ---------------------------------------------------------------------------

def validate_serve_observability(
    health: dict[str, Any], exposition: str
) -> list[str]:
    """Check the two observability surfaces against the fields this
    console and the CI serve lane rely on. Returns violations."""
    problems: list[str] = []
    try:
        series = parse_exposition(exposition)
    except ValueError as error:
        return [f"/metrics: {error}"]

    def need_series(name: str) -> None:
        if name not in series:
            problems.append(f"/metrics: missing series {name}")

    for name in (
        "repro_serve_requests_total",
        "repro_serve_request_seconds_bucket",
        "repro_serve_request_seconds_sum",
        "repro_serve_request_seconds_count",
        "repro_serve_availability_burn_fast",
        "repro_serve_availability_burn_slow",
        "repro_serve_latency_burn_fast",
        "repro_serve_latency_burn_slow",
        "repro_serve_slo_state",
    ):
        need_series(name)
    types = series.get("#types", {})
    if types.get("repro_serve_request_seconds") != "histogram":
        problems.append(
            "/metrics: repro_serve_request_seconds must expose as "
            "TYPE histogram"
        )
    buckets = series.get("repro_serve_request_seconds_bucket", [])
    if buckets and not any(
        exemplar is not None and "trace_id" in exemplar[0]
        for _, _, exemplar in buckets
    ):
        problems.append(
            "/metrics: repro_serve_request_seconds_bucket has no "
            "trace_id exemplar"
        )

    slo = health.get("slo")
    if not isinstance(slo, dict):
        problems.append("/healthz: missing 'slo' object")
    else:
        if slo.get("state") not in ("ok", "warn", "page"):
            problems.append(
                f"/healthz: bad slo.state {slo.get('state')!r}"
            )
        for name in ("availability", "latency"):
            entry = slo.get(name)
            if not isinstance(entry, dict):
                problems.append(f"/healthz: missing slo.{name}")
                continue
            rates = entry.get("burn_rates")
            if not isinstance(rates, dict) or not {
                "fast", "slow"
            } <= set(rates):
                problems.append(
                    f"/healthz: slo.{name}.burn_rates needs "
                    "fast and slow windows"
                )
            if not isinstance(entry.get("objective"), float):
                problems.append(
                    f"/healthz: slo.{name}.objective missing"
                )
    latency = health.get("latency")
    if not isinstance(latency, dict):
        problems.append("/healthz: missing 'latency' object")
    else:
        for key in ("window_seconds", "count", "p50", "p95", "p99"):
            if key not in latency:
                problems.append(f"/healthz: latency.{key} missing")
    return problems
