"""Generation drift: a structured diff between two opinion tables.

A hot reload replaces every answer the server gives; this module makes
that replacement observable. :func:`compare_tables` diffs two opinion
snapshots — the generation being retired and the one taking over — and
produces a :class:`DriftReport`:

* **flips** — common (entity, property-type) pairs whose dominant
  polarity changed, with a bounded sample of examples;
* a **posterior-delta histogram** (|Δ posterior| over common pairs,
  log-bucketed via :class:`~repro.obs.histogram.StreamingHistogram`);
* **pair churn** — pairs present in only one snapshot;
* **entity churn** — entities present in only one snapshot;
* a **per-property summary** keyed by the serialized combination key.

The serving layer emits a report on every ``/admin/reload`` and
rollback (gauges in ``/metrics``, a drift line in ``/healthz``, a
structured stderr line); ``repro diff A B`` runs the same comparison
on two artefact files offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.result import OpinionTable
from ..core.types import PropertyTypeKey
from .histogram import StreamingHistogram

DRIFT_FORMAT = "generation_drift"
DRIFT_VERSION = 1

#: Flip examples kept on a report (the gauges carry the totals).
MAX_FLIP_EXAMPLES = 10


def _key_str(key: PropertyTypeKey) -> str:
    # Matches the storage layer's combination key ("cute|animal") so
    # drift reports join against serialized artefacts.
    return f"{key.property.text}|{key.entity_type}"


@dataclass(slots=True)
class PropertyDrift:
    """Drift rollup for one property-type combination."""

    common: int = 0
    flips: int = 0
    added: int = 0
    removed: int = 0
    delta_sum: float = 0.0

    @property
    def mean_abs_delta(self) -> float:
        if not self.common:
            return 0.0
        return self.delta_sum / self.common

    def to_dict(self) -> dict[str, Any]:
        return {
            "common": self.common,
            "flips": self.flips,
            "added": self.added,
            "removed": self.removed,
            "mean_abs_delta": round(self.mean_abs_delta, 6),
        }


@dataclass(slots=True)
class DriftReport:
    """Everything one snapshot swap changed."""

    pairs_before: int
    pairs_after: int
    common: int
    added: int
    removed: int
    flips: int
    entity_churn: int
    delta_max: float
    delta_histogram: StreamingHistogram
    flip_examples: list[dict[str, Any]] = field(default_factory=list)
    per_property: dict[str, PropertyDrift] = field(
        default_factory=dict
    )

    @property
    def flip_fraction(self) -> float:
        """Flipped share of the answers both generations had."""
        if not self.common:
            return 0.0
        return self.flips / self.common

    def summary(self) -> dict[str, Any]:
        """The compact dict ``/healthz`` and log lines carry."""
        return {
            "pairs_before": self.pairs_before,
            "pairs_after": self.pairs_after,
            "common": self.common,
            "added": self.added,
            "removed": self.removed,
            "flips": self.flips,
            "flip_fraction": round(self.flip_fraction, 6),
            "entity_churn": self.entity_churn,
            "delta_max": round(self.delta_max, 6),
        }

    def to_dict(self) -> dict[str, Any]:
        """The full structured report (``repro diff --format json``)."""
        return {
            "format": DRIFT_FORMAT,
            "version": DRIFT_VERSION,
            **self.summary(),
            "flip_examples": list(self.flip_examples),
            "per_property": {
                key: drift.to_dict()
                for key, drift in sorted(self.per_property.items())
            },
            "delta_histogram": self.delta_histogram.to_dict(),
        }

    def render(self) -> str:
        """Human-readable report for the ``repro diff`` CLI."""
        lines = [
            "generation drift",
            f"  pairs: {self.pairs_before} -> {self.pairs_after} "
            f"({self.common} common, +{self.added} / -{self.removed})",
            f"  flips: {self.flips} "
            f"({self.flip_fraction:.1%} of common answers)",
            f"  entity churn: {self.entity_churn}",
            f"  max |delta posterior|: {self.delta_max:.4f}",
        ]
        for example in self.flip_examples:
            lines.append(
                f"  flip: {example['entity']} · {example['key']}  "
                f"{example['before']:.3f} -> {example['after']:.3f}"
            )
        changed = [
            (key, drift)
            for key, drift in sorted(self.per_property.items())
            if drift.flips or drift.added or drift.removed
        ]
        for key, drift in changed:
            lines.append(
                f"  {key}: {drift.flips} flips, +{drift.added} / "
                f"-{drift.removed}, mean |delta| "
                f"{drift.mean_abs_delta:.4f}"
            )
        return "\n".join(lines)


def compare_tables(
    before: OpinionTable,
    after: OpinionTable,
    max_examples: int = MAX_FLIP_EXAMPLES,
) -> DriftReport:
    """Diff two opinion tables; deterministic for given inputs.

    Iteration follows the *after* table's sorted pair order, so flip
    examples and per-property rollups are stable run to run.
    """
    before_pairs = {
        (opinion.key, opinion.entity_id): opinion
        for opinion in before
    }
    after_pairs = {
        (opinion.key, opinion.entity_id): opinion for opinion in after
    }
    histogram = StreamingHistogram()
    per_property: dict[str, PropertyDrift] = {}

    def rollup(key: PropertyTypeKey) -> PropertyDrift:
        text = _key_str(key)
        drift = per_property.get(text)
        if drift is None:
            drift = PropertyDrift()
            per_property[text] = drift
        return drift

    common = flips = 0
    delta_max = 0.0
    flip_examples: list[dict[str, Any]] = []
    ordered = sorted(
        after_pairs,
        key=lambda pair: (_key_str(pair[0]), pair[1]),
    )
    for pair in ordered:
        old = before_pairs.get(pair)
        new = after_pairs[pair]
        drift = rollup(pair[0])
        if old is None:
            drift.added += 1
            continue
        common += 1
        drift.common += 1
        delta = abs(new.probability - old.probability)
        drift.delta_sum += delta
        histogram.observe(delta)
        if delta > delta_max:
            delta_max = delta
        if new.polarity is not old.polarity:
            flips += 1
            drift.flips += 1
            if len(flip_examples) < max_examples:
                flip_examples.append(
                    {
                        "entity": pair[1],
                        "key": _key_str(pair[0]),
                        "before": round(old.probability, 6),
                        "after": round(new.probability, 6),
                        "before_polarity": str(old.polarity),
                        "after_polarity": str(new.polarity),
                    }
                )
    removed = 0
    for pair in sorted(
        before_pairs,
        key=lambda pair: (_key_str(pair[0]), pair[1]),
    ):
        if pair not in after_pairs:
            removed += 1
            rollup(pair[0]).removed += 1
    before_entities = {pair[1] for pair in before_pairs}
    after_entities = {pair[1] for pair in after_pairs}
    return DriftReport(
        pairs_before=len(before_pairs),
        pairs_after=len(after_pairs),
        common=common,
        added=len(after_pairs) - common,
        removed=removed,
        flips=flips,
        entity_churn=len(
            before_entities.symmetric_difference(after_entities)
        ),
        delta_max=delta_max,
        delta_histogram=histogram,
        flip_examples=flip_examples,
        per_property=per_property,
    )
