"""Span-based tracing for the pipeline (run → stage → shard → document).

The paper reports per-stage wall times for its 5000-node run
(Section 7.1); a trace generalizes that report: every unit of work is
a *span* with a name, a kind, structured attributes, monotonic-clock
duration, and a parent — so a run can be reconstructed as a tree and
rendered as a timeline (``repro stats``).

Design constraints:

* **Process-pool safe.** Worker processes cannot append to the parent's
  tracer, so a worker builds its own :class:`Tracer`, exports its spans
  as plain dicts (picklable), ships them back with the shard result,
  and the parent :meth:`Tracer.adopt`\\ s them — assigning fresh span
  ids and re-parenting the worker's root spans under the parent span of
  the caller's choosing.
* **Near-zero cost when disabled.** ``Tracer(enabled=False)`` hands out
  a shared null span through :data:`NULL_SPAN`; instrumented code pays
  one attribute check and an empty context manager.
* **Deterministic schema.** Spans serialize to JSONL with a leading
  header record (:data:`TRACE_SCHEMA_VERSION`), validated by
  :func:`validate_trace`.
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from ..core.errors import ReproError
from .perf import MemoryProbe, start_tracemalloc

#: Version stamp written into the JSONL header record.
TRACE_SCHEMA_VERSION = 1

#: Span kinds the schema admits (``validate_trace`` rejects others).
SPAN_KINDS = (
    "run",
    "stage",
    "shard",
    "document",
    "combination",
    "em_iteration",
    "section",
    "span",
)

#: Keys every span record must carry.
SPAN_FIELDS = (
    "span_id",
    "parent_id",
    "name",
    "kind",
    "start_unix",
    "duration",
    "attrs",
    "status",
)


class TraceError(ReproError):
    """A trace file is malformed or violates the span schema."""


class SpanHandle:
    """Mutable view of one in-flight span; lets the body attach attrs."""

    __slots__ = ("_record",)

    def __init__(self, record: dict[str, Any]) -> None:
        self._record = record

    @property
    def span_id(self) -> int:
        return self._record["span_id"]

    def set(self, key: str, value: Any) -> None:
        self._record["attrs"][key] = value


class _NullSpan:
    """Shared no-op span handed out by disabled tracers."""

    __slots__ = ()
    span_id = -1

    def set(self, key: str, value: Any) -> None:
        pass


#: The singleton null span; also usable by modules that duck-type the
#: tracer and need a stand-in when no tracer is configured.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects nested spans; one instance per process (or per shard).

    Spans are appended to an internal list when they *close* (children
    before parents); :meth:`write_jsonl` sorts by wall-clock start so
    the file reads chronologically.
    """

    def __init__(
        self,
        enabled: bool = True,
        profile_memory: bool = False,
        max_spans: int | None = None,
    ) -> None:
        self.enabled = enabled
        #: With ``profile_memory`` every span additionally carries
        #: ``rss_peak_bytes`` / ``tracemalloc_peak_bytes`` /
        #: ``tracemalloc_net_bytes`` attrs (``repro stats`` renders
        #: them as a memory column). Opt-in: tracemalloc tracing slows
        #: allocation-heavy code, so it is never on by default.
        self.profile_memory = profile_memory and enabled
        if self.profile_memory:
            start_tracemalloc()
        #: Retention cap for long-running processes (the serving
        #: path adopts one span per sampled request forever): when
        #: set, only the most recent ``max_spans`` closed spans are
        #: kept. ``None`` (the default) keeps everything — batch
        #: pipeline runs want the complete tree.
        if max_spans is not None and max_spans < 1:
            raise ValueError(
                f"max_spans must be >= 1, got {max_spans}"
            )
        self.max_spans = max_spans
        self._spans: list[dict[str, Any]] = []
        self._stack: list[int] = []
        self._next_id = 0

    def _enforce_cap(self) -> None:
        # Trim in blocks (10% hysteresis) so a full buffer does not
        # pay an O(n) front-delete on every append.
        cap = self.max_spans
        if cap is not None and len(self._spans) > cap * 1.1:
            del self._spans[: len(self._spans) - cap]

    def __len__(self) -> int:
        return len(self._spans)

    @contextmanager
    def span(
        self, name: str, kind: str = "span", **attrs: Any
    ) -> Iterator[SpanHandle | _NullSpan]:
        """Open a span; nests under the innermost open span.

        A body that raises marks the span ``status="error"`` with the
        exception type in ``error`` and re-raises.
        """
        if not self.enabled:
            yield NULL_SPAN
            return
        span_id = self._next_id
        self._next_id += 1
        record: dict[str, Any] = {
            "span_id": span_id,
            "parent_id": self._stack[-1] if self._stack else None,
            "name": name,
            "kind": kind,
            "start_unix": time.time(),
            "duration": 0.0,
            "attrs": dict(attrs),
            "status": "ok",
        }
        self._stack.append(span_id)
        probe = (
            MemoryProbe().start() if self.profile_memory else None
        )
        started = time.perf_counter()
        try:
            yield SpanHandle(record)
        except BaseException as error:
            record["status"] = "error"
            record["error"] = type(error).__name__
            raise
        finally:
            record["duration"] = time.perf_counter() - started
            if probe is not None:
                sample = probe.stop()
                record["attrs"]["rss_peak_bytes"] = (
                    sample.peak_rss_bytes
                )
                if sample.tracemalloc_peak_bytes is not None:
                    record["attrs"]["tracemalloc_peak_bytes"] = (
                        sample.tracemalloc_peak_bytes
                    )
                    record["attrs"]["tracemalloc_net_bytes"] = (
                        sample.tracemalloc_net_bytes
                    )
            self._stack.pop()
            self._spans.append(record)
            self._enforce_cap()

    # ------------------------------------------------------------------
    # Cross-process plumbing
    # ------------------------------------------------------------------
    def export_spans(self) -> list[dict[str, Any]]:
        """Completed spans as plain dicts (picklable, ids process-local)."""
        return [dict(span) for span in self._spans]

    def adopt(
        self,
        spans: list[dict[str, Any]],
        parent_id: int | None = None,
    ) -> None:
        """Graft spans exported by another tracer into this one.

        Every span gets a fresh id from this tracer's sequence; spans
        whose parent is not in the batch (the worker's roots) are
        re-parented under ``parent_id``. This is how worker-process
        spans rejoin the run tree instead of being silently lost.
        """
        if not spans:
            return
        mapping: dict[int, int] = {}
        for record in spans:
            mapping[record["span_id"]] = self._next_id
            self._next_id += 1
        for record in spans:
            adopted = dict(record)
            adopted["attrs"] = dict(record.get("attrs", {}))
            adopted["span_id"] = mapping[record["span_id"]]
            old_parent = record.get("parent_id")
            adopted["parent_id"] = mapping.get(old_parent, parent_id)
            self._spans.append(adopted)
        self._enforce_cap()

    def last_span_id(
        self, name: str, kind: str | None = None
    ) -> int | None:
        """Id of the most recently closed span with this name (and kind)."""
        for record in reversed(self._spans):
            if record["name"] == name and (
                kind is None or record["kind"] == kind
            ):
                return record["span_id"]
        return None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def write_jsonl(self, path: str | Path) -> Path:
        """Persist the trace: one header line, then one span per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "trace_schema": TRACE_SCHEMA_VERSION,
            "n_spans": len(self._spans),
        }
        lines = [json.dumps(header, sort_keys=True)]
        for record in sorted(
            self._spans, key=lambda r: (r["start_unix"], r["span_id"])
        ):
            lines.append(json.dumps(record, sort_keys=True))
        path.write_text("\n".join(lines) + "\n")
        return path


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Load a JSONL trace, returning its span records (header dropped)."""
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        raise TraceError(f"{path}: unreadable trace: {error}") from error
    if not lines:
        raise TraceError(f"{path}: empty trace file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        raise TraceError(f"{path}: malformed header: {error}") from error
    if (
        not isinstance(header, dict)
        or header.get("trace_schema") != TRACE_SCHEMA_VERSION
    ):
        raise TraceError(
            f"{path}: missing or unsupported trace_schema header"
        )
    spans = []
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            spans.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise TraceError(
                f"{path}:{number}: malformed span: {error}"
            ) from error
    return spans


def validate_spans(spans: list[dict[str, Any]]) -> list[str]:
    """Schema-check span records; returns human-readable violations."""
    errors: list[str] = []
    seen: set[int] = set()
    for index, record in enumerate(spans):
        where = f"span[{index}]"
        if not isinstance(record, dict):
            errors.append(f"{where}: not an object")
            continue
        missing = [key for key in SPAN_FIELDS if key not in record]
        if missing:
            errors.append(f"{where}: missing fields {missing}")
            continue
        if record["kind"] not in SPAN_KINDS:
            errors.append(
                f"{where}: unknown kind {record['kind']!r}"
            )
        if (
            not isinstance(record["duration"], (int, float))
            or isinstance(record["duration"], bool)
            or not math.isfinite(record["duration"])
            or record["duration"] < 0
        ):
            errors.append(
                f"{where}: negative, NaN, or non-numeric duration"
            )
        if record["status"] not in ("ok", "error"):
            errors.append(
                f"{where}: status must be ok|error, "
                f"got {record['status']!r}"
            )
        if record["span_id"] in seen:
            errors.append(
                f"{where}: duplicate span_id {record['span_id']}"
            )
        seen.add(record["span_id"])
    ids = {
        record["span_id"]
        for record in spans
        if isinstance(record, dict) and "span_id" in record
    }
    for index, record in enumerate(spans):
        if not isinstance(record, dict):
            continue
        parent = record.get("parent_id")
        if parent is not None and parent not in ids:
            errors.append(
                f"span[{index}]: dangling parent_id {parent}"
            )
    return errors


def validate_trace(path: str | Path) -> list[str]:
    """Read and schema-check a trace file (raises on unreadable files)."""
    return validate_spans(read_trace(path))
