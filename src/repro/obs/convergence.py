"""EM convergence telemetry: per-combination fit trajectories.

The paper fits one user-behaviour model per property-type combination
(380,000 of them in the full run); debugging interpretation quality
means looking at *how* each fit converged, not just the final
parameters. A :class:`ConvergenceRecord` captures one combination's
per-iteration log-likelihood and the ``pA`` / ``np+S`` / ``np−S``
trajectories, plus a verdict:

* ``converged`` — the log-likelihood delta fell below tolerance;
* ``max-iterations`` — EM ran out of iterations without converging;
* ``degraded-fallback`` — the fit went numerically degenerate and fell
  back to per-entity majority vote (see PR 1's resilience layer).

Records are plain dataclasses over primitives, JSON-round-trippable so
they persist alongside checkpoints and inside ``--metrics-out`` files.
Rendering (sparklines) lives in :mod:`repro.obs.stats`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

CONVERGENCE_FORMAT = "em_convergence"
CONVERGENCE_VERSION = 1

#: Filename used when records are persisted next to shard checkpoints.
CONVERGENCE_BASENAME = "em-convergence.json"


@dataclass(frozen=True, slots=True)
class ConvergenceRecord:
    """One combination's EM fit, flattened for telemetry."""

    key: str
    verdict: str  # converged | max-iterations | degraded-fallback
    iterations: int
    converged: bool
    degraded: bool
    n_entities: int
    n_statements: int
    final_log_likelihood: float
    log_likelihoods: tuple[float, ...]
    agreement_path: tuple[float, ...]
    rate_positive_path: tuple[float, ...]
    rate_negative_path: tuple[float, ...]

    def to_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        for field in (
            "log_likelihoods",
            "agreement_path",
            "rate_positive_path",
            "rate_negative_path",
        ):
            payload[field] = list(payload[field])
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ConvergenceRecord":
        """Forward-compatible read: ``key`` is required; every other
        field defaults when absent and unknown keys are ignored, so
        records written by newer (or older) versions still load."""
        if "key" not in payload:
            raise KeyError("convergence record missing 'key'")
        return cls(
            key=str(payload["key"]),
            verdict=str(payload.get("verdict", "unknown")),
            iterations=int(payload.get("iterations", 0)),
            converged=bool(payload.get("converged", False)),
            degraded=bool(payload.get("degraded", False)),
            n_entities=int(payload.get("n_entities", 0)),
            n_statements=int(payload.get("n_statements", 0)),
            final_log_likelihood=float(
                payload.get("final_log_likelihood", float("nan"))
            ),
            log_likelihoods=tuple(
                payload.get("log_likelihoods", ())
            ),
            agreement_path=tuple(payload.get("agreement_path", ())),
            rate_positive_path=tuple(
                payload.get("rate_positive_path", ())
            ),
            rate_negative_path=tuple(
                payload.get("rate_negative_path", ())
            ),
        )


def record_from_fit(fit: Any) -> ConvergenceRecord:
    """Build a record from a ``FittedCombination`` (duck-typed: needs
    ``key``, ``trace``, ``n_entities``, ``n_statements``).

    The parameter trajectories are taken from the trace's
    ``parameters_path`` — populated when the learner ran with
    ``record_path=True``; otherwise they are empty and only the
    log-likelihood series is available.
    """
    trace = fit.trace
    path = trace.parameters_path
    final_ll = (
        trace.log_likelihoods[-1]
        if trace.log_likelihoods
        else float("nan")
    )
    return ConvergenceRecord(
        key=str(fit.key),
        verdict=trace.verdict,
        iterations=trace.iterations,
        converged=trace.converged,
        degraded=trace.degraded,
        n_entities=fit.n_entities,
        n_statements=fit.n_statements,
        final_log_likelihood=final_ll,
        log_likelihoods=tuple(trace.log_likelihoods),
        agreement_path=tuple(p.agreement for p in path),
        rate_positive_path=tuple(p.rate_positive for p in path),
        rate_negative_path=tuple(p.rate_negative for p in path),
    )


def records_from_result(result: Any) -> list[ConvergenceRecord]:
    """Records for every fit in a ``SurveyorResult``, key-sorted."""
    return [
        record_from_fit(result.fits[key])
        for key in sorted(result.fits, key=str)
    ]


def records_to_payload(
    records: list[ConvergenceRecord],
) -> list[dict[str, Any]]:
    return [record.to_dict() for record in records]


def save_convergence(
    records: list[ConvergenceRecord], path: str | Path
) -> Path:
    """Persist records (e.g. next to the run's shard checkpoints)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": CONVERGENCE_FORMAT,
        "version": CONVERGENCE_VERSION,
        "combinations": records_to_payload(records),
    }
    path.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
    return path


def load_convergence(path: str | Path) -> list[ConvergenceRecord]:
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != CONVERGENCE_FORMAT:
        raise ValueError(
            f"{path}: not an EM convergence artefact "
            f"(format={payload.get('format')!r})"
        )
    return [
        ConvergenceRecord.from_dict(row)
        for row in payload["combinations"]
    ]
