"""Performance baselines and the regression gate (``repro bench``).

A trajectory file (:mod:`repro.obs.perf`) says what one run cost; a
*baseline* freezes those costs so later runs can be gated against
them. Three operations:

* :func:`record_baseline` — distil a trajectory file into a baseline
  (per-benchmark scalar metrics only, no throughput derivations);
* :func:`compare` — new trajectory vs. baseline with per-metric noise
  tolerances (wall ±15%, RSS ±10%, tracemalloc ±25% by default);
  regressions are *slower/bigger beyond tolerance* — getting faster
  never fails the gate;
* :func:`trend` — ASCII sparkline of each metric across every
  ``BENCH_*.json`` in a directory, oldest run first.

Tiny absolute values are noise, not signal: metrics whose baseline
falls below a floor (1 ms wall, 1 MiB memory) are reported but never
gated, so a 0.3 ms benchmark cannot flap CI.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .perf import (
    BENCH_METRICS,
    BENCH_SCHEMA_VERSION,
    PerfError,
    format_bytes,
    load_trajectory,
)

BASELINE_FORMAT = "bench_baseline"

#: Relative slack per metric before a growth counts as a regression.
DEFAULT_TOLERANCES: dict[str, float] = {
    "wall_seconds": 0.15,
    "peak_rss_bytes": 0.10,
    "tracemalloc_peak_bytes": 0.25,
}

#: Baselines below these absolute floors are too small to gate.
NOISE_FLOORS: dict[str, float] = {
    "wall_seconds": 0.001,
    "peak_rss_bytes": float(1 << 20),
    "tracemalloc_peak_bytes": float(1 << 20),
}


def _format_metric(metric: str, value: float | None) -> str:
    if value is None:
        return "-"
    if metric == "wall_seconds":
        return f"{value * 1000:.1f}ms"
    return format_bytes(value)


# ---------------------------------------------------------------------------
# Baseline files
# ---------------------------------------------------------------------------

def record_baseline(trajectory: dict[str, Any]) -> dict[str, Any]:
    """Freeze a trajectory's scalar metrics into a baseline payload."""
    entries: dict[str, Any] = {}
    for name, record in sorted(trajectory["entries"].items()):
        entries[name] = {
            metric: record.get(metric) for metric in BENCH_METRICS
        }
    return {
        "format": BASELINE_FORMAT,
        "version": BENCH_SCHEMA_VERSION,
        "git_describe": trajectory.get("git_describe"),
        "entries": entries,
    }


def validate_baseline(payload: Any) -> list[str]:
    """Schema-check a baseline payload; returns violations."""
    if not isinstance(payload, dict):
        return ["baseline payload is not a JSON object"]
    errors: list[str] = []
    if payload.get("format") != BASELINE_FORMAT:
        errors.append(
            f"format must be {BASELINE_FORMAT!r}, "
            f"got {payload.get('format')!r}"
        )
    if payload.get("version") != BENCH_SCHEMA_VERSION:
        errors.append(
            f"unsupported baseline version {payload.get('version')!r}"
        )
    entries = payload.get("entries")
    if not isinstance(entries, dict):
        errors.append("missing 'entries' object")
        return errors
    for name, row in sorted(entries.items()):
        if not isinstance(row, dict):
            errors.append(f"{name}: entry is not an object")
            continue
        for metric, value in sorted(row.items()):
            if metric not in BENCH_METRICS:
                errors.append(
                    f"{name}: unknown metric name {metric!r}"
                )
                continue
            if value is None:
                if metric != "tracemalloc_peak_bytes":
                    errors.append(
                        f"{name}: {metric} must not be null"
                    )
                continue
            if not isinstance(value, (int, float)) or isinstance(
                value, bool
            ):
                errors.append(f"{name}: {metric} is not a number")
            elif not math.isfinite(value) or value < 0:
                errors.append(
                    f"{name}: {metric} must be finite and >= 0, "
                    f"got {value!r}"
                )
        for metric in ("wall_seconds", "peak_rss_bytes"):
            if metric not in row:
                errors.append(f"{name}: missing metric {metric!r}")
    return errors


def load_baseline(path: str | Path) -> dict[str, Any]:
    """Read and validate a baseline file (raises :class:`PerfError`)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise PerfError(
            f"{path}: unreadable baseline: {error}"
        ) from error
    problems = validate_baseline(payload)
    if problems:
        raise PerfError(
            f"{path}: invalid baseline: "
            + "; ".join(problems[:5])
            + ("; ..." if len(problems) > 5 else "")
        )
    return payload


def write_baseline(
    path: str | Path, payload: dict[str, Any]
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
    return path


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class MetricVerdict:
    """One benchmark × metric comparison row."""

    benchmark: str
    metric: str
    baseline: float | None
    current: float | None
    #: ok | regression | improved | skipped (below floor or absent)
    status: str

    @property
    def ratio(self) -> float | None:
        if not self.baseline or self.current is None:
            return None
        return self.current / self.baseline

    def row(self) -> str:
        ratio = self.ratio
        return (
            f"{self.benchmark:<32} {self.metric:<24}"
            f" {_format_metric(self.metric, self.baseline):>10}"
            f" -> {_format_metric(self.metric, self.current):>10}"
            f"  {'' if ratio is None else f'{ratio:5.2f}x'}"
            f"  {self.status.upper() if self.status == 'regression' else self.status}"
        )


@dataclass
class ComparisonReport:
    """Everything ``repro bench compare`` decided, renderable."""

    verdicts: list[MetricVerdict] = field(default_factory=list)
    #: Benchmarks in the baseline with no fresh measurement.
    unmeasured: list[str] = field(default_factory=list)
    #: Benchmarks measured but absent from the baseline.
    unbaselined: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricVerdict]:
        return [
            v for v in self.verdicts if v.status == "regression"
        ]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = ["benchmark regression gate:"]
        lines.extend("  " + v.row() for v in self.verdicts)
        if self.unmeasured:
            lines.append(
                "  (not measured this run: "
                + ", ".join(sorted(self.unmeasured))
                + ")"
            )
        if self.unbaselined:
            lines.append(
                "  (no baseline yet: "
                + ", ".join(sorted(self.unbaselined))
                + ")"
            )
        lines.append(
            f"verdict: "
            + (
                "PASS"
                if self.passed
                else f"FAIL ({len(self.regressions)} regression"
                + ("s" if len(self.regressions) != 1 else "")
                + ")"
            )
        )
        return "\n".join(lines)


def compare(
    baseline: dict[str, Any],
    trajectory: dict[str, Any],
    tolerances: dict[str, float] | None = None,
) -> ComparisonReport:
    """Gate a fresh trajectory against a frozen baseline.

    Only benchmarks present on *both* sides are gated (a quick-mode
    run measuring a subset must not fail for what it skipped); the
    report still names what was skipped on either side.
    """
    tolerances = {**DEFAULT_TOLERANCES, **(tolerances or {})}
    report = ComparisonReport()
    base_entries = baseline["entries"]
    new_entries = trajectory["entries"]
    report.unmeasured = [
        name for name in base_entries if name not in new_entries
    ]
    report.unbaselined = [
        name for name in new_entries if name not in base_entries
    ]
    for name in sorted(set(base_entries) & set(new_entries)):
        base_row = base_entries[name]
        new_row = new_entries[name]
        for metric in BENCH_METRICS:
            base_value = base_row.get(metric)
            new_value = new_row.get(metric)
            if base_value is None or new_value is None:
                report.verdicts.append(
                    MetricVerdict(
                        name, metric, base_value, new_value,
                        "skipped",
                    )
                )
                continue
            if base_value < NOISE_FLOORS.get(metric, 0.0):
                report.verdicts.append(
                    MetricVerdict(
                        name, metric, base_value, new_value,
                        "skipped",
                    )
                )
                continue
            budget = 1.0 + tolerances.get(
                metric, DEFAULT_TOLERANCES["wall_seconds"]
            )
            ratio = new_value / base_value
            if ratio > budget:
                status = "regression"
            elif ratio < 1.0:
                status = "improved"
            else:
                status = "ok"
            report.verdicts.append(
                MetricVerdict(
                    name, metric, base_value, new_value, status
                )
            )
    return report


# ---------------------------------------------------------------------------
# Trend
# ---------------------------------------------------------------------------

def discover_trajectories(directory: str | Path) -> list[Path]:
    """Every ``BENCH_*.json`` under ``directory`` (non-recursive)."""
    return sorted(Path(directory).glob("BENCH_*.json"))


def _recorded_at(payload: dict[str, Any]) -> float:
    stamps = [
        record.get("meta", {}).get("recorded_unix", 0.0)
        for record in payload["entries"].values()
    ]
    return min(stamps) if stamps else 0.0


def _format_gauge(value: float) -> str:
    """Free-form gauge values have no declared unit: compact float."""
    return f"{value:.4g}"


def trend(
    paths: list[str | Path],
    metrics: tuple[str, ...] = BENCH_METRICS,
) -> str:
    """Sparkline each benchmark × metric across the trajectory files.

    Files are ordered by their earliest record timestamp, so the
    rightmost point of every sparkline is the most recent run.
    Besides the standard cost metrics, each record's free-form
    ``values`` gauges (e.g. ``provenance_cpu_ratio``, ``qps``) get a
    sparkline of their own.
    """
    from ..evaluation.ascii_plots import sparkline

    loaded: list[dict[str, Any]] = []
    for path in paths:
        loaded.append(load_trajectory(path))
    if not loaded:
        return "(no trajectory files)"
    loaded.sort(key=_recorded_at)
    names = sorted(
        {name for payload in loaded for name in payload["entries"]}
    )
    lines = [
        f"benchmark trend over {len(loaded)} run"
        + ("s" if len(loaded) != 1 else "")
        + ":"
    ]
    width = max(len(name) for name in names) if names else 0
    for name in names:
        for metric in metrics:
            series = [
                payload["entries"][name].get(metric)
                for payload in loaded
                if name in payload["entries"]
            ]
            values = [v for v in series if v is not None]
            if not values:
                continue
            lines.append(
                f"  {name:<{width}}  {metric:<24}"
                f" {_format_metric(metric, values[0]):>10}"
                f" -> {_format_metric(metric, values[-1]):>10}"
                f"  {sparkline(values)}"
            )
        gauge_labels = sorted(
            {
                label
                for payload in loaded
                if name in payload["entries"]
                for label in (
                    payload["entries"][name].get("values") or {}
                )
            }
        )
        for label in gauge_labels:
            series = [
                (payload["entries"][name].get("values") or {}).get(
                    label
                )
                for payload in loaded
                if name in payload["entries"]
            ]
            values = [v for v in series if v is not None]
            if not values:
                continue
            lines.append(
                f"  {name:<{width}}  {label:<24}"
                f" {_format_gauge(values[0]):>10}"
                f" -> {_format_gauge(values[-1]):>10}"
                f"  {sparkline(values)}"
            )
    return "\n".join(lines)
