"""Knowledge-base substrate: typed entities, store, and seed datasets."""

from .entity import Entity, entity_id
from .importer import dump_tsv, load_tsv, parse_line
from .knowledge_base import KnowledgeBase
from .seeds import (
    EVALUATION_CELEBRITIES,
    EVALUATION_CITIES,
    EVALUATION_PROFESSIONS,
    EVALUATION_PROPERTIES,
    EVALUATION_SPORTS,
    FIGURE_10_ANIMALS,
    british_mountains,
    california_cities,
    countries,
    evaluation_entities,
    evaluation_kb,
    full_kb,
    swiss_lakes,
)

__all__ = [
    "EVALUATION_CELEBRITIES",
    "EVALUATION_CITIES",
    "EVALUATION_PROFESSIONS",
    "EVALUATION_PROPERTIES",
    "EVALUATION_SPORTS",
    "FIGURE_10_ANIMALS",
    "Entity",
    "KnowledgeBase",
    "british_mountains",
    "california_cities",
    "countries",
    "dump_tsv",
    "entity_id",
    "evaluation_entities",
    "evaluation_kb",
    "full_kb",
    "load_tsv",
    "parse_line",
    "swiss_lakes",
]
