"""Tabular knowledge-base import/export.

The paper's knowledge base is "an extension of Freebase"; downstream
users will have their own entity dumps. This module reads and writes
a simple five-column TSV:

    type <TAB> name <TAB> aliases <TAB> attributes <TAB> other_types

* ``aliases``: ``|``-separated surface forms (may be empty);
* ``attributes``: ``;``-separated ``key=value`` pairs with float
  values (may be empty);
* ``other_types``: ``|``-separated additional type memberships (may
  be empty; the column itself is optional).

Lines starting with ``#`` and blank lines are skipped. Errors carry
the offending line number.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path

from .entity import Entity
from .knowledge_base import KnowledgeBase


class ImportError_(ValueError):
    """A malformed TSV line (name avoids shadowing the builtin)."""


def parse_line(line: str, line_number: int = 0) -> Entity:
    """Parse one TSV line into an :class:`Entity`."""
    columns = line.rstrip("\n").split("\t")
    if len(columns) < 2:
        raise ImportError_(
            f"line {line_number}: expected at least type and name, "
            f"got {len(columns)} column(s)"
        )
    entity_type = columns[0].strip()
    name = columns[1].strip()
    if not entity_type or not name:
        raise ImportError_(
            f"line {line_number}: type and name must be non-empty"
        )
    aliases = _split_list(columns[2] if len(columns) > 2 else "")
    attributes = _parse_attributes(
        columns[3] if len(columns) > 3 else "", line_number
    )
    other_types = _split_list(columns[4] if len(columns) > 4 else "")
    return Entity.create(
        name,
        entity_type,
        aliases=tuple(aliases),
        other_types=tuple(other_types),
        **attributes,
    )


def load_tsv(path: str | Path) -> KnowledgeBase:
    """Load a knowledge base from a TSV file."""
    kb = KnowledgeBase()
    with Path(path).open() as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            kb.add(parse_line(line, line_number))
    return kb


def dump_tsv(kb: Iterable[Entity], path: str | Path) -> Path:
    """Write entities to a TSV file (inverse of :func:`load_tsv`)."""
    path = Path(path)
    lines = ["#type\tname\taliases\tattributes\tother_types"]
    for entity in kb:
        attributes = ";".join(
            f"{key}={value:g}"
            for key, value in sorted(entity.attributes.items())
        )
        lines.append(
            "\t".join(
                (
                    entity.entity_type,
                    entity.name,
                    "|".join(entity.aliases),
                    attributes,
                    "|".join(entity.other_types),
                )
            )
        )
    path.write_text("\n".join(lines) + "\n")
    return path


def _split_list(column: str) -> list[str]:
    return [part.strip() for part in column.split("|") if part.strip()]


def _parse_attributes(
    column: str, line_number: int
) -> dict[str, float]:
    attributes: dict[str, float] = {}
    for pair in column.split(";"):
        pair = pair.strip()
        if not pair:
            continue
        key, separator, value = pair.partition("=")
        if not separator:
            raise ImportError_(
                f"line {line_number}: attribute {pair!r} lacks '='"
            )
        try:
            attributes[key.strip()] = float(value)
        except ValueError:
            raise ImportError_(
                f"line {line_number}: attribute {key!r} has "
                f"non-numeric value {value!r}"
            ) from None
    return attributes
