"""In-memory typed knowledge base.

Provides the operations the pipeline needs:

* enumerate all entities of a most-notable type (Surveyor pads the
  evidence of never-mentioned entities with zero counts);
* resolve surface forms to candidate entities for the linker,
  including the deliberately ambiguous aliases the disambiguation test
  of Section 2 exercises;
* join objective attributes for the correlation studies.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

from .entity import Entity


class KnowledgeBase:
    """Entity store indexed by ID, type, and surface form."""

    def __init__(self, entities: Iterable[Entity] = ()) -> None:
        self._by_id: dict[str, Entity] = {}
        self._by_type: dict[str, list[Entity]] = defaultdict(list)
        self._by_surface: dict[str, list[Entity]] = defaultdict(list)
        for entity in entities:
            self.add(entity)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, entity: Entity) -> None:
        if entity.id in self._by_id:
            raise ValueError(f"duplicate entity id {entity.id!r}")
        self._by_id[entity.id] = entity
        self._by_type[entity.entity_type].append(entity)
        for form in entity.surface_forms:
            self._by_surface[form.lower()].append(entity)

    def add_all(self, entities: Iterable[Entity]) -> None:
        for entity in entities:
            self.add(entity)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, entity_id: str) -> Entity:
        try:
            return self._by_id[entity_id]
        except KeyError:
            raise KeyError(f"unknown entity id {entity_id!r}") from None

    def maybe_get(self, entity_id: str) -> Entity | None:
        return self._by_id.get(entity_id)

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._by_id

    def entities_of_type(self, entity_type: str) -> list[Entity]:
        """All entities whose most notable type matches."""
        return list(self._by_type.get(entity_type.lower(), ()))

    def entity_ids_of_type(self, entity_type: str) -> list[str]:
        """ID view of :meth:`entities_of_type` (the Surveyor protocol)."""
        return [e.id for e in self.entities_of_type(entity_type)]

    def types(self) -> list[str]:
        return sorted(self._by_type)

    def candidates(self, surface_form: str) -> list[Entity]:
        """Entities matching a surface form, across all types.

        More than one candidate means the mention is ambiguous and the
        linker must disambiguate using sentence context.
        """
        return list(self._by_surface.get(surface_form.lower(), ()))

    def surface_forms(self) -> Iterator[str]:
        """All known surface forms (for the linker's scanner)."""
        return iter(self._by_surface)

    # ------------------------------------------------------------------
    # Container protocol / stats
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Entity]:
        return iter(self._by_id.values())

    def stats(self) -> dict[str, int]:
        """Basic counts for the Section 7.1 scale report."""
        return {
            "entities": len(self._by_id),
            "types": len(self._by_type),
            "surface_forms": len(self._by_surface),
        }

    def merged_with(self, other: "KnowledgeBase") -> "KnowledgeBase":
        """Union of two KBs (IDs must not collide)."""
        merged = KnowledgeBase(self)
        merged.add_all(other)
        return merged
