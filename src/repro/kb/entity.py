"""Entity and type records of the knowledge base.

The paper's knowledge base (a Freebase extension) stores entities with
their *most notable type* plus objective properties. We keep the same
shape: an :class:`Entity` has a stable ID, a canonical name, a set of
surface aliases used by the entity linker, one most notable type, and a
bag of objective attributes (population, area, ...) used by the
empirical studies of Section 2 and Appendix A.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def entity_id(entity_type: str, name: str) -> str:
    """Build the canonical entity ID ``/<type>/<slug>``.

    Mirrors Freebase MIDs in spirit: IDs are opaque, stable, and
    type-scoped, so two entities sharing a name in different types do
    not collide (``/city/buffalo`` vs ``/animal/buffalo``).
    """
    slug = name.strip().lower().replace(" ", "_")
    return f"/{entity_type.strip().lower()}/{slug}"


@dataclass(frozen=True, slots=True)
class Entity:
    """One knowledge-base entity.

    ``entity_type`` is the *most notable* type — the one Surveyor
    groups by (Section 3: "the knowledge base may actually associate
    multiple types with an entity but we use only the most notable
    type"). ``other_types`` carries any further type memberships; they
    participate in disambiguation but never in evidence grouping.

    ``aliases`` are additional surface forms resolving to this entity;
    the canonical name is always an implicit alias. ``attributes``
    carry objective properties (e.g. ``population``) consulted by the
    correlation studies, never by the mining algorithm itself.
    """

    id: str
    name: str
    entity_type: str
    aliases: tuple[str, ...] = ()
    attributes: dict[str, float] = field(default_factory=dict)
    other_types: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.id or not self.name or not self.entity_type:
            raise ValueError("entity requires id, name, and type")
        object.__setattr__(self, "entity_type", self.entity_type.lower())
        object.__setattr__(
            self,
            "other_types",
            tuple(
                t.lower()
                for t in self.other_types
                if t.lower() != self.entity_type.lower()
            ),
        )

    @classmethod
    def create(
        cls,
        name: str,
        entity_type: str,
        aliases: tuple[str, ...] = (),
        other_types: tuple[str, ...] = (),
        **attributes: float,
    ) -> "Entity":
        """Construct an entity with a derived canonical ID."""
        return cls(
            id=entity_id(entity_type, name),
            name=name,
            entity_type=entity_type,
            aliases=aliases,
            attributes=dict(attributes),
            other_types=other_types,
        )

    @property
    def all_types(self) -> tuple[str, ...]:
        """Every type the entity belongs to, most notable first."""
        return (self.entity_type, *self.other_types)

    @property
    def surface_forms(self) -> tuple[str, ...]:
        """All forms the linker may match, canonical name first."""
        return (self.name, *self.aliases)

    def attribute(self, key: str, default: float | None = None) -> float:
        """Objective attribute lookup; raises ``KeyError`` if absent and
        no default was given."""
        if key in self.attributes:
            return self.attributes[key]
        if default is None:
            raise KeyError(
                f"entity {self.id} has no attribute {key!r}"
            )
        return default
