"""Seed datasets for the knowledge base.

The paper works against a Freebase extension plus three public HTML
tables (Appendix A). Offline, we reconstruct equivalents:

* the five evaluation types of Table 2 (animals, celebrities, cities,
  professions, sports) with the exact animal list of Figure 10;
* 461 Californian cities with populations (Section 2's empirical
  study), a curated head of real cities extended with a deterministic
  procedurally-generated tail of small towns — matching the paper's
  observation that the sample is dominated by small cities;
* countries with GDP per capita, Swiss lakes with areas, and British
  mountains with relative heights (Appendix A's three scenarios).

All generation is deterministic so tests and benchmarks are stable.
"""

from __future__ import annotations

import random

from .entity import Entity
from .knowledge_base import KnowledgeBase

# ---------------------------------------------------------------------------
# Table 2 / Figure 10 evaluation entities
# ---------------------------------------------------------------------------

#: The 20 animals of Figure 10, in the paper's order.
FIGURE_10_ANIMALS: tuple[str, ...] = (
    "pony", "spider", "koala", "rat", "scorpion", "crow", "kitten",
    "monkey", "octopus", "beaver", "goose", "tiger", "moose", "frog",
    "grizzly bear", "alligator", "puppy", "camel", "white shark", "lion",
)

EVALUATION_CELEBRITIES: tuple[str, ...] = (
    "Ada Lively", "Bruno Marsh", "Carla Voss", "Dexter Quill",
    "Elena Brook", "Felix Crane", "Gloria Stett", "Hector Vale",
    "Iris Fontaine", "Jasper Reed", "Kira Solano", "Liam Archer",
    "Mona Castell", "Nico Ferrant", "Opal Hayes", "Pierce Walden",
    "Quinn Abano", "Rosa Delmar", "Silas Norcross", "Tessa Winslow",
)

EVALUATION_CITIES: tuple[str, ...] = (
    "New York", "Tokyo", "Reykjavik", "Mumbai", "Zurich", "Cairo",
    "London", "Bruges", "Mexico City", "Singapore", "Lagos", "Vienna",
    "Sao Paulo", "Ljubljana", "Bangkok", "Geneva", "Istanbul",
    "Wellington", "Shanghai", "Tallinn",
)

EVALUATION_PROFESSIONS: tuple[str, ...] = (
    "firefighter", "librarian", "astronaut", "accountant", "stuntman",
    "nurse", "fisherman", "teacher", "test pilot", "plumber",
    "falconer", "surgeon", "miner", "clockmaker", "police officer",
    "farmer", "glassblower", "electrician", "soldier", "beekeeper",
)

EVALUATION_SPORTS: tuple[str, ...] = (
    "soccer", "chess boxing", "base jumping", "golf", "ice hockey",
    "curling", "rugby", "badminton", "motocross", "swimming",
    "free solo climbing", "table tennis", "boxing", "croquet",
    "basketball", "lawn bowls", "skydiving", "tennis", "bullfighting",
    "marathon running",
)

#: Table 2: the five properties evaluated per type.
EVALUATION_PROPERTIES: dict[str, tuple[str, ...]] = {
    "animal": ("dangerous", "cute", "big", "friendly", "deadly"),
    "celebrity": ("cool", "crazy", "pretty", "quiet", "young"),
    "city": ("big", "calm", "cheap", "hectic", "multicultural"),
    "profession": ("dangerous", "exciting", "rare", "solid", "vital"),
    "sport": ("addictive", "boring", "dangerous", "fast", "popular"),
}

# ---------------------------------------------------------------------------
# Californian cities (Section 2) — curated head
# ---------------------------------------------------------------------------

#: Real Californian cities with approximate 2010s populations. Names
#: marked ambiguous collide with entities of other types, feeding the
#: disambiguation test of Section 2.
_CALIFORNIA_HEAD: tuple[tuple[str, int], ...] = (
    ("Los Angeles", 3_900_000), ("San Diego", 1_380_000),
    ("San Jose", 1_000_000), ("San Francisco", 870_000),
    ("Fresno", 520_000), ("Sacramento", 500_000),
    ("Long Beach", 465_000), ("Oakland", 420_000),
    ("Bakersfield", 380_000), ("Anaheim", 350_000),
    ("Santa Ana", 330_000), ("Riverside", 325_000),
    ("Stockton", 310_000), ("Irvine", 280_000),
    ("Chula Vista", 270_000), ("Fremont", 230_000),
    ("Santa Clarita", 210_000), ("San Bernardino", 215_000),
    ("Modesto", 215_000), ("Fontana", 208_000),
    ("Moreno Valley", 205_000), ("Oxnard", 207_000),
    ("Huntington Beach", 200_000), ("Glendale", 196_000),
    ("Ontario", 175_000), ("Elk Grove", 170_000),
    ("Santa Rosa", 178_000), ("Rancho Cucamonga", 177_000),
    ("Oceanside", 175_000), ("Garden Grove", 172_000),
    ("Lancaster", 160_000), ("Palmdale", 157_000),
    ("Salinas", 155_000), ("Hayward", 158_000),
    ("Pomona", 151_000), ("Escondido", 151_000),
    ("Sunnyvale", 153_000), ("Torrance", 147_000),
    ("Pasadena", 141_000), ("Orange", 139_000),
    ("Fullerton", 140_000), ("Thousand Oaks", 128_000),
    ("Visalia", 130_000), ("Simi Valley", 126_000),
    ("Concord", 125_000), ("Roseville", 135_000),
    ("Santa Clara", 127_000), ("Vallejo", 121_000),
    ("Berkeley", 120_000), ("El Monte", 115_000),
    ("Downey", 113_000), ("Costa Mesa", 112_000),
    ("Inglewood", 111_000), ("Carlsbad", 113_000),
    ("San Buenaventura", 109_000), ("Fairfield", 112_000),
    ("West Covina", 107_000), ("Murrieta", 110_000),
    ("Richmond", 107_000), ("Norwalk", 106_000),
    ("Antioch", 110_000), ("Temecula", 109_000),
    ("Burbank", 104_000), ("Daly City", 106_000),
    ("Rialto", 102_000), ("Santa Maria", 104_000),
    ("El Cajon", 102_000), ("San Mateo", 103_000),
    ("Clovis", 102_000), ("Compton", 97_000),
    ("Jurupa Valley", 98_000), ("Vista", 96_000),
    ("South Gate", 95_000), ("Mission Viejo", 94_000),
    ("Vacaville", 94_000), ("Carson", 92_000),
    ("Hesperia", 92_000), ("Santa Monica", 92_000),
    ("Westminster", 91_000), ("Redding", 91_000),
    ("Santa Barbara", 90_000), ("Chico", 89_000),
    ("Newport Beach", 86_000), ("San Leandro", 86_000),
    ("San Marcos", 87_000), ("Whittier", 86_000),
    ("Hawthorne", 85_000), ("Citrus Heights", 84_000),
    ("Tracy", 84_000), ("Alhambra", 84_000),
    ("Livermore", 83_000), ("Buena Park", 82_000),
    ("Menifee", 83_000), ("Hemet", 81_000),
    ("Lakewood", 80_000), ("Merced", 80_000),
    ("Chino", 80_000), ("Indio", 79_000),
    ("Redwood City", 78_000), ("Lake Forest", 78_000),
    ("Napa", 78_000), ("Tustin", 78_000),
    ("Bellflower", 77_000), ("Mountain View", 76_000),
    ("Chino Hills", 76_000), ("Baldwin Park", 76_000),
    ("Alameda", 75_000), ("Upland", 75_000),
    ("San Ramon", 74_000), ("Folsom", 73_000),
    ("Pleasanton", 73_000), ("Union City", 71_000),
    ("Perris", 71_000), ("Manteca", 71_000),
    ("Lynwood", 70_000), ("Apple Valley", 70_000),
    ("Redlands", 69_000), ("Turlock", 69_000),
    ("Milpitas", 68_000), ("Redondo Beach", 67_000),
    ("Rancho Cordova", 67_000), ("Yorba Linda", 66_000),
    ("Palo Alto", 65_000), ("Davis", 65_000),
    ("Camarillo", 65_000), ("Walnut Creek", 65_000),
    ("Pittsburg", 64_000), ("South San Francisco", 64_000),
    ("Yuba City", 65_000), ("San Clemente", 64_000),
    ("Laguna Niguel", 63_000), ("Pico Rivera", 63_000),
    ("Montebello", 62_000), ("Lodi", 62_000),
    ("Madera", 62_000), ("Monterey Park", 61_000),
    ("La Habra", 60_000), ("Santa Cruz", 60_000),
    ("Encinitas", 60_000), ("Tulare", 59_000),
    ("Gardena", 59_000), ("National City", 59_000),
    ("Cupertino", 58_000), ("Huntington Park", 58_000),
    ("Petaluma", 58_000), ("San Rafael", 58_000),
    ("La Mesa", 58_000), ("Rocklin", 57_000),
    ("Arcadia", 56_000), ("Diamond Bar", 56_000),
    ("Woodland", 55_000), ("Fountain Valley", 55_000),
    ("Porterville", 54_000), ("Paramount", 54_000),
    ("Hanford", 54_000), ("Rosemead", 54_000),
    ("Eastvale", 54_000), ("Santee", 54_000),
    ("Highland", 53_000), ("Delano", 52_000),
    ("Colton", 52_000), ("Novato", 52_000),
    ("Lake Elsinore", 52_000), ("Brentwood", 52_000),
    ("Yucaipa", 51_000), ("Cathedral City", 51_000),
    ("Watsonville", 51_000), ("Placentia", 51_000),
    ("Glendora", 50_000), ("Gilroy", 49_000),
    ("Palm Desert", 48_000), ("Cerritos", 49_000),
    ("West Sacramento", 49_000), ("Aliso Viejo", 48_000),
    ("Poway", 48_000), ("La Mirada", 48_000),
    ("Rancho Santa Margarita", 48_000), ("Cypress", 48_000),
    ("Dublin", 46_000), ("Covina", 48_000),
    ("Azusa", 46_000), ("Palm Springs", 45_000),
    ("San Luis Obispo", 45_000), ("Ceres", 45_000),
    ("San Jacinto", 44_000), ("Lincoln", 43_000),
    ("Newark", 43_000), ("Lompoc", 43_000),
    ("El Centro", 43_000), ("Danville", 42_000),
    ("Bell Gardens", 42_000), ("Coachella", 41_000),
    ("Rancho Palos Verdes", 42_000), ("San Bruno", 41_000),
    ("Campbell", 40_000), ("Culver City", 39_000),
    ("Stanton", 38_000), ("La Puente", 40_000),
    ("Oakley", 36_000), ("Morgan Hill", 38_000),
    ("Martinez", 36_000), ("Monrovia", 36_000),
    ("Pleasant Hill", 33_000), ("Manhattan Beach", 35_000),
    ("Beverly Hills", 34_000), ("Monterey", 28_000),
    ("Foster City", 31_000), ("Seaside", 33_000),
    ("Brea", 40_000), ("Calexico", 38_000),
    ("Hollister", 35_000), ("Claremont", 35_000),
    ("Temple City", 36_000), ("Atwater", 28_000),
    ("Menlo Park", 32_000), ("Burlingame", 29_000),
    ("Los Gatos", 30_000), ("Saratoga", 30_000),
    ("Half Moon Bay", 11_000), ("Sausalito", 7_000),
    ("Carmel", 3_700), ("Solvang", 5_200),
    ("Ferndale", 1_300), ("Trinidad", 360),
    ("Mendocino", 900), ("Calistoga", 5_100),
)

#: Vocabulary for the deterministic small-town tail.
_TOWN_PREFIXES = (
    "Alder", "Bays", "Cedar", "Dry", "Eagle", "Fall", "Gold", "Haw",
    "Iron", "Juniper", "Knoll", "Loma", "Mesa", "North", "Oak", "Pine",
    "Quartz", "River", "Sage", "Twin", "Upper", "Vista", "West", "Yucca",
)
_TOWN_SUFFIXES = (
    "brook", "crest", "dale", "field", " flats", " grove", " hills",
    " junction", "mont", " point", "ridge", " springs", "ton", "view",
    "ville", " wells",
)


def california_cities(count: int = 461, seed: int = 2015) -> list[Entity]:
    """The Section 2 study sample: ``count`` Californian cities.

    The curated head carries real cities and populations; the tail is a
    deterministic synthesis of small towns with log-uniform populations
    between 100 and 30,000 — matching the paper's heavily small-skewed
    sample. A handful of tail towns are given ambiguous aliases.
    """
    if count < len(_CALIFORNIA_HEAD):
        raise ValueError(
            f"count must be >= {len(_CALIFORNIA_HEAD)} (the curated head)"
        )
    rng = random.Random(seed)
    entities = [
        Entity.create(name, "city", population=float(pop), state=1.0)
        for name, pop in _CALIFORNIA_HEAD
    ]
    names_seen = {e.name for e in entities}
    combos = [
        prefix + suffix
        for prefix in _TOWN_PREFIXES
        for suffix in _TOWN_SUFFIXES
    ]
    rng.shuffle(combos)
    for name in combos:
        if len(entities) >= count:
            break
        if name in names_seen:
            continue
        names_seen.add(name)
        log_pop = rng.uniform(2.0, 4.5)  # 100 .. ~31k inhabitants
        entities.append(
            Entity.create(
                name, "city", population=float(round(10**log_pop)), state=1.0
            )
        )
    if len(entities) < count:
        raise ValueError("town vocabulary exhausted; lower the count")
    return entities


# ---------------------------------------------------------------------------
# Appendix A scenarios
# ---------------------------------------------------------------------------

_COUNTRIES: tuple[tuple[str, int], ...] = (
    ("Luxembourg", 111_000), ("Norway", 100_000), ("Qatar", 94_000),
    ("Switzerland", 81_000), ("Australia", 65_000), ("Denmark", 59_000),
    ("Sweden", 58_000), ("Singapore", 55_000), ("United States", 53_000),
    ("Canada", 52_000), ("Austria", 50_000), ("Netherlands", 48_000),
    ("Ireland", 47_000), ("Finland", 47_000), ("Iceland", 45_000),
    ("Belgium", 45_000), ("Germany", 45_000), ("France", 42_000),
    ("New Zealand", 41_000), ("United Kingdom", 39_000),
    ("Japan", 38_000), ("Italy", 34_000), ("Israel", 36_000),
    ("Spain", 29_000), ("South Korea", 26_000), ("Slovenia", 23_000),
    ("Portugal", 21_000), ("Greece", 21_000), ("Czech Republic", 19_000),
    ("Estonia", 19_000), ("Slovakia", 18_000), ("Uruguay", 16_000),
    ("Chile", 15_000), ("Poland", 13_000), ("Hungary", 13_000),
    ("Croatia", 13_000), ("Russia", 14_000), ("Brazil", 11_000),
    ("Turkey", 10_000), ("Mexico", 10_000), ("Malaysia", 10_000),
    ("Argentina", 10_000), ("Romania", 9_000), ("Bulgaria", 7_500),
    ("China", 6_800), ("South Africa", 6_600), ("Thailand", 5_800),
    ("Serbia", 6_000), ("Peru", 6_500), ("Colombia", 7_800),
    ("Ecuador", 6_000), ("Albania", 4_500), ("Indonesia", 3_500),
    ("Ukraine", 3_900), ("Morocco", 3_100), ("Philippines", 2_800),
    ("Egypt", 3_200), ("Vietnam", 1_900), ("India", 1_500),
    ("Nigeria", 3_000), ("Pakistan", 1_300), ("Kenya", 1_200),
    ("Bangladesh", 1_000), ("Cambodia", 1_000), ("Nepal", 700),
    ("Ethiopia", 500), ("Mozambique", 600), ("Madagascar", 460),
    ("Malawi", 270), ("Burundi", 260),
)

_SWISS_LAKES: tuple[tuple[str, float], ...] = (
    ("Lake Geneva", 580.0), ("Lake Constance", 536.0),
    ("Lake Neuchatel", 218.0), ("Lake Maggiore", 212.0),
    ("Lake Lucerne", 114.0), ("Lake Zurich", 88.0),
    ("Lake Lugano", 49.0), ("Lake Thun", 48.0),
    ("Lake Biel", 39.0), ("Lake Zug", 38.0),
    ("Lake Brienz", 30.0), ("Lake Walen", 24.0),
    ("Lake Murten", 23.0), ("Lake Sempach", 14.0),
    ("Lake Hallwil", 10.0), ("Lake Greifen", 8.5),
    ("Lake Sarnen", 7.4), ("Lake Aegeri", 7.3),
    ("Lake Baldegg", 5.2), ("Lake Pfaeffikon", 3.3),
    ("Lake Lauerz", 3.0), ("Lake Sils", 4.1),
    ("Lake Silvaplana", 2.7), ("Lake Klontal", 3.3),
    ("Lake Wohlen", 3.65), ("Lake Lungern", 2.0),
    ("Lake Oeschinen", 1.1), ("Lake St. Moritz", 0.78),
    ("Lake Cauma", 0.1), ("Lake Seealp", 0.13),
    ("Lake Blausee", 0.007), ("Lake Arnen", 0.47),
    ("Lake Tanay", 0.33), ("Lake Daubensee", 0.6),
)

_BRITISH_MOUNTAINS: tuple[tuple[str, int], ...] = (
    ("Ben Nevis", 1345), ("Snowdon", 1038), ("Ben Macdui", 950),
    ("Scafell Pike", 912), ("Carrauntoohil", 1039), ("Slieve Donard", 822),
    ("Ben Lomond", 974), ("Helvellyn", 712), ("Tryfan", 917),
    ("Cadair Idris", 893), ("Goat Fell", 874), ("Pen y Fan", 886),
    ("Skiddaw", 931), ("Ben Hope", 927), ("Suilven", 731),
    ("Ben More", 966), ("Schiehallion", 1083), ("Cairn Gorm", 1245),
    ("The Cheviot", 815), ("Cross Fell", 893), ("Mam Tor", 517),
    ("Kinder Scout", 636), ("Pen-y-ghent", 694), ("Whernside", 736),
    ("Ingleborough", 723), ("Worcestershire Beacon", 425),
    ("Leith Hill", 294), ("Box Hill", 224), ("Cleeve Hill", 330),
    ("Dunkery Beacon", 519), ("High Willhays", 621),
    ("Black Mountain", 802), ("Moel Famau", 554), ("Arenig Fawr", 854),
)


def countries() -> list[Entity]:
    """Countries with approximate GDP per capita (USD, IMF-2013-like)."""
    return [
        Entity.create(name, "country", gdp_per_capita=float(gdp))
        for name, gdp in _COUNTRIES
    ]


def swiss_lakes() -> list[Entity]:
    """Swiss lakes with surface areas in square kilometers."""
    return [
        Entity.create(name, "lake", area_km2=float(area))
        for name, area in _SWISS_LAKES
    ]


def british_mountains() -> list[Entity]:
    """British-Isles mountains with relative heights in meters."""
    return [
        Entity.create(name, "mountain", relative_height_m=float(height))
        for name, height in _BRITISH_MOUNTAINS
    ]


# ---------------------------------------------------------------------------
# Evaluation KB (Table 2)
# ---------------------------------------------------------------------------

def evaluation_entities() -> list[Entity]:
    """The 5 x 20 entities of Table 2.

    The Figure 10 animal ``white shark`` gets the alias ``great white
    shark``; evaluation cities carry populations so the corpus
    generator can correlate mention frequency with size.
    """
    city_populations = {
        "New York": 8_400_000, "Tokyo": 13_900_000, "Reykjavik": 130_000,
        "Mumbai": 12_400_000, "Zurich": 430_000, "Cairo": 9_500_000,
        "London": 8_900_000, "Bruges": 118_000, "Mexico City": 8_800_000,
        "Singapore": 5_600_000, "Lagos": 14_800_000, "Vienna": 1_900_000,
        "Sao Paulo": 12_300_000, "Ljubljana": 295_000,
        "Bangkok": 8_300_000, "Geneva": 200_000, "Istanbul": 15_500_000,
        "Wellington": 215_000, "Shanghai": 24_900_000, "Tallinn": 440_000,
    }
    entities: list[Entity] = []
    for name in FIGURE_10_ANIMALS:
        aliases = ("great white shark",) if name == "white shark" else ()
        entities.append(Entity.create(name, "animal", aliases=aliases))
    for name in EVALUATION_CELEBRITIES:
        entities.append(Entity.create(name, "celebrity"))
    for name in EVALUATION_CITIES:
        entities.append(
            Entity.create(
                name, "city", population=float(city_populations[name])
            )
        )
    for name in EVALUATION_PROFESSIONS:
        entities.append(Entity.create(name, "profession"))
    for name in EVALUATION_SPORTS:
        entities.append(Entity.create(name, "sport"))
    return entities


def evaluation_kb() -> KnowledgeBase:
    """KB holding exactly the Table 2 evaluation entities."""
    return KnowledgeBase(evaluation_entities())


def full_kb(california_count: int = 461, seed: int = 2015) -> KnowledgeBase:
    """KB with every seed dataset loaded (types do not collide)."""
    kb = KnowledgeBase()
    kb.add_all(evaluation_entities())
    evaluation_names = {e.name for e in evaluation_entities()}
    for entity in california_cities(california_count, seed):
        if entity.name not in evaluation_names:
            kb.add(entity)
    kb.add_all(countries())
    kb.add_all(swiss_lakes())
    kb.add_all(british_mountains())
    return kb
