"""Surveyor — mining subjective properties on the Web.

A faithful, laptop-scale reproduction of Trummer et al., *Mining
Subjective Properties on the Web* (SIGMOD 2015). The package mines the
dominant opinion about whether a subjective property (``cute``,
``very big``) applies to a typed knowledge-base entity, from positive
and negative statements extracted from text, using an unsupervised
probabilistic model of author behaviour fit per property-type
combination via EM.

Quickstart::

    from repro import (
        CorpusGenerator, Surveyor, SurveyorPipeline, evaluation_kb,
    )

See ``examples/quickstart.py`` for a runnable end-to-end walkthrough.
"""

from .baselines import (
    MajorityVote,
    ScaledMajorityVote,
    SurveyorInterpreter,
    WebChildLike,
    standard_interpreters,
)
from .analysis import find_controversial
from .core import (
    EMLearner,
    QueryEngine,
    SubjectiveQuery,
    fit_link,
    SubjectiveObjectiveLink,
    EvidenceCounts,
    ModelParameters,
    Opinion,
    OpinionTable,
    Polarity,
    PropertyTypeKey,
    SubjectiveProperty,
    Surveyor,
    SurveyorResult,
    UserBehaviorModel,
)
from .corpus import (
    CorpusGenerator,
    NoiseProfile,
    Scenario,
    TrueParameters,
    WebCorpus,
    covariate_scenario,
    curated_scenario,
)
from .crowd import SurveyRunner, curated_cases
from .evaluation import EvaluationHarness, evaluate_table
from .extraction import EvidenceCounter, EvidenceExtractor
from .kb import Entity, KnowledgeBase, evaluation_kb, full_kb, load_tsv
from .nlp import Annotator
from .pipeline import SurveyorPipeline
from .serve import OpinionIndex, OpinionService, QueryCache
from .storage import load, save

__version__ = "1.0.0"

__all__ = [
    "Annotator",
    "CorpusGenerator",
    "EMLearner",
    "Entity",
    "EvaluationHarness",
    "EvidenceCounter",
    "EvidenceCounts",
    "EvidenceExtractor",
    "KnowledgeBase",
    "MajorityVote",
    "ModelParameters",
    "NoiseProfile",
    "Opinion",
    "OpinionIndex",
    "OpinionService",
    "OpinionTable",
    "QueryCache",
    "Polarity",
    "PropertyTypeKey",
    "QueryEngine",
    "SubjectiveQuery",
    "ScaledMajorityVote",
    "Scenario",
    "SubjectiveProperty",
    "SurveyRunner",
    "Surveyor",
    "SurveyorInterpreter",
    "SurveyorPipeline",
    "SubjectiveObjectiveLink",
    "SurveyorResult",
    "TrueParameters",
    "UserBehaviorModel",
    "WebChildLike",
    "WebCorpus",
    "covariate_scenario",
    "curated_cases",
    "curated_scenario",
    "evaluate_table",
    "evaluation_kb",
    "find_controversial",
    "fit_link",
    "load",
    "load_tsv",
    "save",
    "full_kb",
    "standard_interpreters",
    "__version__",
]
