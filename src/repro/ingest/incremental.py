"""Incremental extraction, dirty-set EM refits, and publication.

:class:`IngestPipeline` turns journal appends into a freshly servable
opinion table without re-running the batch pipeline:

1. **Extract the delta.** Only documents above the applied watermark
   are annotated (through the same fast path the batch mapper uses)
   and counted into a *delta* evidence counter plus a delta provenance
   ledger.
2. **Fold.** The delta merges into the persisted running totals;
   evidence counts are additive and order-independent, so the merged
   counter equals what a one-shot batch over all journaled documents
   would produce.
3. **Dirty-set refit.** Only (property, type) combinations the delta
   touched re-run EM; every clean combination reuses its cached fit
   and recomputes opinions from the cached parameters. Because
   ``EMLearner.fit`` is deterministic over the evidence multiset and
   JSON float round-trips are ``repr``-exact, both paths are
   bit-identical to a full batch run — the differential parity test in
   ``tests/test_ingest.py`` proves it on every harness scenario.
4. **Publish.** The rebuilt table + provenance sidecar + run manifest
   are written with the same atomic writers the batch CLI uses; a
   server then pushes them through its validated hot-reload swap.

Warm starts (``warm_start=True``) seed a dirty combination's EM from
its cached parameters. After a small append the cached point is near
the new optimum, so EM converges in a handful of iterations — the
speed the freshness budget is built on — but the stop point of a
Δll-tolerance loop depends on its starting point, so warm-started
posteriors can differ from a cold batch fit in the last few ulps. The
default is off: exact bit-parity unless the operator trades it away.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from ..core.em import EMLearner
from ..core.result import OpinionTable
from ..core.surveyor import (
    DEFAULT_OCCURRENCE_THRESHOLD,
    FittedCombination,
    Surveyor,
    SurveyorResult,
    _majority_opinion,
)
from ..core.types import PropertyTypeKey
from ..corpus.document import Document
from ..extraction.extractor import EvidenceExtractor
from ..extraction.provenance import (
    ProvenanceIndex,
    ProvenanceLedger,
    provenance_default,
)
from ..extraction.statement import EvidenceCounter
from ..kb.knowledge_base import KnowledgeBase
from ..nlp.annotate import Annotator
from ..nlp.prefilter import DEFAULT_MEMO_SIZE, fast_path_default
from ..obs.convergence import records_from_result
from ..obs.manifest import (
    build_manifest,
    manifest_path_for,
    write_manifest,
)
from ..storage import provenance_path_for, save
from .journal import CorpusJournal
from .state import IngestState, load_state, save_state


@dataclass(frozen=True, slots=True)
class IngestReport:
    """Outcome of one :meth:`IngestPipeline.advance`."""

    documents: int
    statements: int
    journal_offset: int
    generation: int
    dirty: tuple[PropertyTypeKey, ...]
    refitted: int
    reused: int
    refit_seconds: float
    result: SurveyorResult
    provenance: ProvenanceIndex | None = None

    @property
    def table(self) -> OpinionTable:
        return self.result.opinions


@dataclass
class IngestPipeline:
    """Journal-backed incremental miner.

    Parameters
    ----------
    kb:
        Knowledge base — entity catalog for Surveyor and the linker's
        alias source for annotation.
    journal:
        The append-only document log; running state persists as
        ``state.json`` alongside its segments.
    occurrence_threshold:
        Same ``rho`` as the batch pipeline.
    learner:
        EM configuration shared by every (cold) refit.
    fast_path / provenance:
        ``None`` defers to the ``REPRO_FAST_PATH`` /
        ``REPRO_PROVENANCE`` environment defaults, exactly as
        ``SurveyorPipeline`` does.
    warm_start:
        Seed dirty refits from cached parameters (see module
        docstring for the bit-parity trade-off).
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; advances
        then feed the ``repro_ingest_*`` series.
    """

    kb: KnowledgeBase
    journal: CorpusJournal
    occurrence_threshold: int = DEFAULT_OCCURRENCE_THRESHOLD
    learner: EMLearner = field(default_factory=EMLearner)
    fast_path: bool | None = None
    provenance: bool | None = None
    warm_start: bool = False
    registry: Any | None = field(default=None, repr=False)
    annotation_memo_size: int = DEFAULT_MEMO_SIZE
    state: IngestState = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.fast_path is None:
            self.fast_path = fast_path_default()
        if self.provenance is None:
            self.provenance = provenance_default()
        self.state = load_state(self.journal.directory)
        if self.provenance and self.state.ledger is None:
            self.state.ledger = ProvenanceLedger()
        # One annotator for the pipeline's lifetime: the prefilter
        # automaton compiles once and the sentence memo stays warm
        # across advances, so a small append pays delta-sized cost.
        self._annotator = Annotator(
            self.kb,
            fast_path=self.fast_path,
            memo_size=self.annotation_memo_size,
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def append(self, documents: list[Document]) -> list[int]:
        """Durably journal a batch (no extraction yet)."""
        return self.journal.append(documents)

    def ingest(self, documents: list[Document]) -> IngestReport:
        """Journal a batch and advance through it: one durable step
        from raw documents to a refitted opinion table."""
        self.append(documents)
        return self.advance()

    def advance(self) -> IngestReport:
        """Extract, fold, and refit everything the journal holds above
        the applied watermark; persists the updated state."""
        records = list(
            self.journal.replay(after=self.state.applied_offset)
        )
        delta = EvidenceCounter()
        delta_ledger = (
            ProvenanceLedger() if self.provenance else None
        )
        if records:
            annotator = self._annotator
            extractor = EvidenceExtractor(provenance=delta_ledger)
            for record in records:
                annotated = annotator.annotate(
                    record.document.doc_id, record.document.text
                )
                delta.add_all(extractor.extract_document(annotated))
            self.state.evidence.merge(delta)
            self.state.stats.merge(extractor.stats)
            if self.state.ledger is not None and delta_ledger is not None:
                self.state.ledger.merge(delta_ledger)
        if self.state.ledger is not None:
            # Exact totals always come from the counter; the ledger's
            # own tallies are sampling-path approximations.
            self.state.ledger.seed_totals(self.state.evidence)

        dirty = tuple(sorted(delta.keys(), key=str))
        started = time.perf_counter()
        result, refitted, reused = self._refit(frozenset(dirty))
        refit_seconds = time.perf_counter() - started

        if records:
            self.state.applied_offset = records[-1].offset
            self.state.generation += 1
        save_state(self.state, self.journal.directory)

        index = None
        if self.state.ledger is not None:
            index = ProvenanceIndex.from_run(
                self.state.ledger, result, records_from_result(result)
            )
        report = IngestReport(
            documents=len(records),
            statements=delta.n_statements,
            journal_offset=self.state.applied_offset,
            generation=self.state.generation,
            dirty=dirty,
            refitted=refitted,
            reused=reused,
            refit_seconds=refit_seconds,
            result=result,
            provenance=index,
        )
        self._observe(report)
        return report

    # ------------------------------------------------------------------
    # Dirty-set refitter
    # ------------------------------------------------------------------
    def _refit(
        self, dirty: frozenset[PropertyTypeKey]
    ) -> tuple[SurveyorResult, int, int]:
        """Rebuild the full opinion table, running EM only where the
        evidence changed.

        Mirrors ``Surveyor.run`` exactly — same key order, same
        threshold skip, same degraded fallback, same opinion emission
        — so a table assembled from cached + refitted combinations is
        byte-identical to a one-shot batch over the same evidence.
        """
        surveyor = Surveyor(
            catalog=self.kb,
            occurrence_threshold=self.occurrence_threshold,
            learner=self.learner,
        )
        evidence = self.state.evidence.as_evidence()
        table = OpinionTable()
        fits: dict[PropertyTypeKey, FittedCombination] = {}
        skipped: list[PropertyTypeKey] = []
        degraded: list[PropertyTypeKey] = []
        refitted = 0
        reused = 0
        for key in sorted(evidence, key=str):
            per_entity = evidence[key]
            n_statements = sum(c.total for c in per_entity.values())
            if n_statements < self.occurrence_threshold:
                skipped.append(key)
                self.state.fits.pop(key, None)
                continue
            cached = self.state.fits.get(key)
            if cached is None or key in dirty:
                fit = self._fit_one(surveyor, key, per_entity, cached)
                refitted += 1
            else:
                fit = cached
                reused += 1
            fits[key] = fit
            self.state.fits[key] = fit
            if fit.trace.degraded:
                degraded.append(key)
                table.mark_degraded(key)
                for entity_id, counts in surveyor._full_evidence(
                    key, per_entity
                ):
                    opinion = _majority_opinion(entity_id, key, counts)
                    if opinion.decided or surveyor.emit_undecided:
                        table.add(opinion)
                continue
            model = fit.model()
            for entity_id, counts in surveyor._full_evidence(
                key, per_entity
            ):
                opinion = model.opinion(entity_id, key, counts)
                if opinion.decided or surveyor.emit_undecided:
                    table.add(opinion)
        result = SurveyorResult(
            opinions=table,
            fits=fits,
            skipped=tuple(skipped),
            degraded=tuple(degraded),
        )
        return result, refitted, reused

    def _fit_one(
        self,
        surveyor: Surveyor,
        key: PropertyTypeKey,
        per_entity: dict,
        cached: FittedCombination | None,
    ) -> FittedCombination:
        if (
            self.warm_start
            and cached is not None
            and not cached.trace.degraded
        ):
            warm = replace(
                surveyor,
                learner=replace(
                    self.learner, initial_parameters=cached.parameters
                ),
            )
            return warm.fit_combination(key, per_entity)
        return surveyor.fit_combination(key, per_entity)

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def publish(
        self,
        report: IngestReport,
        out: str | Path,
        *,
        started_unix: float | None = None,
        duration_seconds: float | None = None,
    ) -> Path:
        """Write the table, its provenance sidecar, and a run manifest
        (all atomically) so a server can hot-reload them."""
        out = Path(out)
        save(report.table, out)
        outputs = {"opinions": str(out)}
        if report.provenance is not None:
            sidecar = provenance_path_for(out)
            save(report.provenance, sidecar)
            outputs["provenance"] = str(sidecar)
        manifest = build_manifest(
            command="ingest",
            config={
                "journal": str(self.journal.directory),
                "journal_offset": report.journal_offset,
                "generation": report.generation,
                "incremental": True,
                "occurrence_threshold": self.occurrence_threshold,
                "fast_path": bool(self.fast_path),
                "provenance": bool(self.provenance),
                "warm_start": bool(self.warm_start),
            },
            started_unix=(
                time.time() if started_unix is None else started_unix
            ),
            duration_seconds=(
                report.refit_seconds
                if duration_seconds is None
                else duration_seconds
            ),
            outputs=outputs,
        )
        write_manifest(manifest_path_for(out), manifest)
        return out

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _observe(self, report: IngestReport) -> None:
        registry = self.registry
        if registry is None:
            return
        registry.inc("repro_ingest_batches_total")
        if report.documents:
            registry.inc(
                "repro_ingest_documents_total", report.documents
            )
        if report.statements:
            registry.inc(
                "repro_ingest_statements_total", report.statements
            )
        registry.set_gauge(
            "repro_ingest_dirty_combinations", len(report.dirty)
        )
        registry.set_gauge(
            "repro_ingest_journal_offset", report.journal_offset
        )
        registry.observe(
            "repro_ingest_refit_seconds", report.refit_seconds
        )
